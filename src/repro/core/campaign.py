"""Multi-round adaptive campaigns (paper §1: workflows that "adapt system
and instrument settings in real-time during multiple rounds of
experiments").

A :class:`Campaign` repeatedly runs the CV workflow against one ICE,
letting a *strategy* look at everything measured so far and either
propose the next round's settings or stop. Three strategies ship:

- :func:`scan_rate_strategy` — sweep a list of scan rates (feeding the
  Randles-Sevcik analysis);
- :func:`window_centering_strategy` — start with a guessed potential
  window, then re-centre it on the measured E1/2 each round until the
  window converges: a minimal but genuinely closed-loop experiment;
- :func:`kinetics_targeting_strategy` — steer the scan rate until the
  peak separation lands in Nicholson's informative window, then measure
  k0 from it.
"""

from __future__ import annotations

import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.analysis.metrics import CVMetrics
from repro.durability import CheckpointStore, Journal
from repro.errors import WorkflowError
from repro.ml.normality import NormalityClassifier, NormalityReport
from repro.facility.ice import ElectrochemistryICE
from repro.resilience import RetryPolicy
from repro.obs.health import HealthEngine
from repro.obs.health import require_healthy as _gate_healthy
from repro.obs.profiler import SpanProfiler
from repro.obs.trace import child_span, use_span
from repro.core.cv_workflow import (
    CVWorkflowResult,
    CVWorkflowSettings,
    run_cv_workflow,
)
from repro.core.provenance import capture_provenance, write_provenance


@dataclass
class CampaignRound:
    """One completed round.

    ``retry_of`` is the index of the abnormal round this one re-ran
    (None for first attempts) — see :class:`Campaign` retry semantics.
    ``resumed`` marks rounds restored from a durability checkpoint by
    :meth:`Campaign.resume` rather than executed in this process.
    """

    index: int
    settings: CVWorkflowSettings
    result: CVWorkflowResult
    retry_of: int | None = None
    resumed: bool = False


def _settings_to_json(settings: CVWorkflowSettings) -> dict[str, Any]:
    """JSON-safe dict for journaling (exception types are dropped)."""
    doc = asdict(settings)
    for key in ("client_retry_policy", "task_policy"):
        policy = doc.get(key)
        if policy is not None:
            # retry_on holds exception *types*; rebuilt policies fall
            # back to the default transient set
            policy.pop("retry_on", None)
    return doc


def _settings_from_json(doc: dict[str, Any]) -> CVWorkflowSettings:
    """Inverse of :func:`_settings_to_json`."""
    doc = dict(doc)
    for key in ("client_retry_policy", "task_policy"):
        if doc.get(key) is not None:
            doc[key] = RetryPolicy(**doc[key])
    return CVWorkflowSettings(**doc)


class _ResumedWorkflowShim:
    """Stands in for a WorkflowResult on rounds restored from checkpoint.

    Carries just enough surface (``tasks``, ``succeeded``) for campaign
    bookkeeping and :func:`capture_provenance`; the real task graph died
    with the process that ran the round.
    """

    def __init__(self) -> None:
        self.tasks: dict[str, Any] = {}
        self.succeeded = True


def _round_from_checkpoint(payload: dict[str, Any]) -> CampaignRound:
    """Rebuild a completed round from its durability checkpoint."""
    metrics = payload.get("metrics")
    normality = payload.get("normality")
    result = CVWorkflowResult(
        workflow=_ResumedWorkflowShim(),
        metrics=CVMetrics(**metrics) if metrics else None,
        normality=NormalityReport(**normality) if normality else None,
        measurement_file=payload.get("measurement_file"),
    )
    return CampaignRound(
        index=int(payload["index"]),
        settings=_settings_from_json(payload["settings"]),
        result=result,
        retry_of=payload.get("retry_of"),
        resumed=True,
    )


#: A strategy inspects history and returns the next settings, or None to stop.
Strategy = Callable[[list[CampaignRound]], CVWorkflowSettings | None]


@dataclass
class Campaign:
    """Closed-loop experiment runner.

    Args:
        ice: the running ecosystem.
        strategy: proposes each round's settings (None = stop).
        classifier: optional ML screen; abnormal rounds either stop the
            campaign or are retried once with a refilled cell, depending
            on ``abort_on_abnormal``.
        max_rounds: hard bound regardless of strategy.
        require_healthy: evaluate the health rules before the first
            round and refuse to start (:class:`~repro.errors.HealthGateError`)
            when the ecosystem is ``unhealthy``. Uses ``health_engine``,
            or builds one over the ICE's metrics registry.
        health_engine: the :class:`~repro.obs.health.HealthEngine` the
            gate consults (share the session's to judge its window).
        flight_recorder: client-half flight recorder; abnormal rounds
            dump a black box, and each round's workflow dumps on
            safe-state teardown.
        flight_dir: dump directory (default
            ``<measurement_dir>/flight-recorder``).
        profile: attach one
            :class:`~repro.obs.profiler.SpanProfiler` to the ICE's
            tracer for the whole campaign; the cumulative
            ``repro-profile-1`` document lands on ``profile_doc`` (and
            each round's result carries the snapshot taken at its end).
        journal_dir: enable durable execution. Every round transition
            is appended to a crash-consistent write-ahead journal
            (``<journal_dir>/campaign.jsonl``) and each completed
            round's payload lands in a checkpoint store, so a campaign
            killed mid-round can be continued with :meth:`resume` —
            completed rounds are restored from disk and the torn round
            is re-issued under its journaled idempotency-key prefix,
            replaying from the daemon's dedup journal instead of
            re-executing instrument actions.
    """

    ice: ElectrochemistryICE
    strategy: Strategy
    classifier: NormalityClassifier | None = None
    max_rounds: int = 10
    abort_on_abnormal: bool = True
    require_healthy: bool = False
    health_engine: Any = None
    flight_recorder: Any = None
    flight_dir: str | Path | None = None
    profile: bool = False
    profile_doc: dict[str, Any] | None = None
    journal_dir: str | Path | None = None
    #: skipped-vs-rerun accounting from the last :meth:`resume` call.
    resume_report: dict[str, Any] | None = None
    rounds: list[CampaignRound] = field(default_factory=list)
    _journal: Journal | None = field(default=None, init=False, repr=False)
    _checkpoints: CheckpointStore | None = field(
        default=None, init=False, repr=False
    )

    def run(self) -> list[CampaignRound]:
        """Run until the strategy stops, a round fails, or max_rounds.

        Abnormal rounds: with ``abort_on_abnormal=True`` the campaign
        stops at the first abnormal measurement. With it False, the
        abnormal round is retried once with a refilled cell (fresh
        liquid often clears a fouled electrode or a bubble); the retry
        is recorded as its own round with ``retry_of`` set, and the
        campaign continues only if the retry comes back normal.
        """
        if self.max_rounds < 1:
            raise WorkflowError("max_rounds must be >= 1")
        if self.require_healthy:
            if self.health_engine is None and self.ice.metrics is not None:
                self.health_engine = HealthEngine(self.ice.metrics)
            _gate_healthy(self.health_engine, what="campaign")
        self.rounds.clear()
        self._open_journal(fresh=True)
        profiler, owns_profiler = self._attach_profiler()
        try:
            self._journal_append(
                "campaign-started",
                campaign_id=uuid.uuid4().hex,
                max_rounds=self.max_rounds,
                abort_on_abnormal=self.abort_on_abnormal,
                strategy_spec=getattr(self.strategy, "spec", None),
            )
            self._run_rounds()
            self._journal_finished()
        finally:
            if profiler is not None:
                self.profile_doc = profiler.profile()
                if owns_profiler:
                    profiler.detach()
            self._close_journal()
        return self.rounds

    def _journal_finished(self) -> None:
        """Mark the campaign done — unless a round died, in which case the
        journal must stay resumable (the failed round is re-issued)."""
        if all(r.result.succeeded for r in self.rounds):
            self._journal_append("campaign-finished", rounds=len(self.rounds))

    def resume(self) -> list[CampaignRound]:
        """Continue a journaled campaign after a crash.

        Replays ``<journal_dir>/campaign.jsonl`` (tolerating a torn
        tail — a record half-written at the instant of death), restores
        every completed round from its checkpoint, re-runs the single
        in-flight (or failed) round under its journaled idempotency-key
        prefix so calls the dead process already made replay from the
        daemon's dedup journal rather than re-executing, then hands
        control back to the strategy loop for the remaining rounds.

        Populates :attr:`resume_report` with the skipped-vs-rerun
        accounting and returns the full round list.
        """
        if self.journal_dir is None:
            raise WorkflowError("resume() requires journal_dir")
        if self.max_rounds < 1:
            raise WorkflowError("max_rounds must be >= 1")
        path = Path(self.journal_dir) / "campaign.jsonl"
        if not path.exists():
            raise WorkflowError(f"no campaign journal at {path}")
        replay = Journal.replay_file(path)
        started: dict[int, dict[str, Any]] = {}
        completed: dict[int, str] = {}
        finished = False
        for rec in replay.records:
            if rec.kind in ("round-started", "round-resumed"):
                started[int(rec.data["index"])] = rec.data
            elif rec.kind == "round-completed":
                completed[int(rec.data["index"])] = str(rec.data["checkpoint"])
            elif rec.kind == "campaign-finished":
                finished = True
        if self.require_healthy:
            if self.health_engine is None and self.ice.metrics is not None:
                self.health_engine = HealthEngine(self.ice.metrics)
            _gate_healthy(self.health_engine, what="campaign")
        metrics = self.ice.metrics
        if metrics is not None:
            metrics.counter(
                "recovery.resumes_total", "campaign resume attempts"
            ).inc()
            if replay.torn_tail:
                metrics.counter(
                    "durability.torn_tails_total",
                    "journal tails torn by a crash",
                ).inc()
        self.rounds.clear()
        self.resume_report = None
        skipped: list[int] = []
        rerun: list[int] = []
        self._open_journal(fresh=False)
        profiler, owns_profiler = self._attach_profiler()
        try:
            for index in sorted(started):
                if index in completed:
                    store = self._checkpoints
                    payload = (
                        store.load(completed[index])
                        if store is not None
                        else None
                    )
                    if payload is None:
                        raise WorkflowError(
                            f"checkpoint {completed[index]!r} missing for "
                            f"completed round {index}"
                        )
                    self.rounds.append(_round_from_checkpoint(payload))
                    skipped.append(index)
                    continue
                # the torn round: re-issue under the journaled prefix
                data = started[index]
                record = self._run_round(
                    _settings_from_json(data["settings"]),
                    retry_of=data.get("retry_of"),
                    idem_prefix=data.get("idem_prefix"),
                    resumed_start=True,
                )
                rerun.append(index)
                if not record.result.succeeded:
                    break
                if self._abnormal(record) and self.abort_on_abnormal:
                    self.dump_flight("abnormal-round")
                    break
            else:
                if not finished:
                    self._run_rounds()
            self._journal_finished()
        finally:
            if profiler is not None:
                self.profile_doc = profiler.profile()
                if owns_profiler:
                    profiler.detach()
            self._close_journal()
        if metrics is not None:
            if skipped:
                metrics.counter(
                    "recovery.rounds_skipped_total",
                    "rounds restored from checkpoint on resume",
                ).inc(len(skipped))
            if rerun:
                metrics.counter(
                    "recovery.rounds_rerun_total",
                    "rounds re-issued on resume",
                ).inc(len(rerun))
        self.resume_report = {
            "journal": str(path),
            "torn_tail": replay.torn_tail,
            "already_finished": finished,
            "skipped_rounds": skipped,
            "rerun_rounds": rerun,
            "total_rounds": len(self.rounds),
        }
        return self.rounds

    # -- durability plumbing ------------------------------------------------
    def _open_journal(self, fresh: bool) -> None:
        if self.journal_dir is None:
            return
        directory = Path(self.journal_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "campaign.jsonl"
        if fresh and path.exists():
            path.unlink()
        self._journal = Journal(path)
        self._checkpoints = CheckpointStore(directory / "checkpoints")

    def _close_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
        self._journal = None
        self._checkpoints = None

    def _journal_append(self, kind: str, **data: Any) -> None:
        if self._journal is None:
            return
        self._journal.append(kind, **data)
        if self.ice.metrics is not None:
            self.ice.metrics.counter(
                "durability.journal_appends_total",
                "campaign journal records written",
            ).inc(kind=kind)

    def _attach_profiler(self) -> tuple[Any, bool]:
        """One shared profiler across all rounds when ``profile=True``.

        Reuses a profiler someone already attached to the ICE tracer
        (leaving ownership with them); otherwise attaches its own and
        detaches it after the campaign. Without an ICE tracer, rounds
        still profile individually via their private workflow tracers.
        """
        if not self.profile:
            return None, False
        tracer = self.ice.tracer
        if tracer is None:
            return None, False
        if tracer.profiler is not None:
            return tracer.profiler, False
        profiler = SpanProfiler(clock=tracer.clock)
        return profiler, profiler.attach(tracer)

    def _run_rounds(self) -> None:
        while len(self.rounds) < self.max_rounds:
            # the strategy sees effective history: a retry supersedes the
            # abnormal round it re-ran, so sweep strategies keyed on
            # round count are not thrown off by retries
            proposed = self.strategy(self.effective_rounds)
            if proposed is None:
                break
            # rounds after the first reuse the liquid already in the cell
            settings = (
                replace(proposed, fill_volume_ml=0.0) if self.rounds else proposed
            )
            record = self._run_round(settings)
            if not record.result.succeeded:
                break
            if self._abnormal(record):
                self.dump_flight("abnormal-round")
                if self.abort_on_abnormal:
                    break
                if len(self.rounds) >= self.max_rounds:
                    break
                retry = self._run_round(
                    replace(
                        settings,
                        fill_volume_ml=proposed.fill_volume_ml,
                        measurement_stem=f"{settings.measurement_stem}_retry",
                    ),
                    retry_of=record.index,
                )
                if not retry.result.succeeded or self._abnormal(retry):
                    if self._abnormal(retry):
                        self.dump_flight("abnormal-round")
                    break

    def dump_flight(self, trigger: str) -> Path | None:
        """Write a black box now (no-op without a flight recorder).

        The daemon half is pulled over the control channel best-effort;
        a partitioned channel still yields the client half.
        """
        if self.flight_recorder is None:
            return None
        remote: list[Any] = []
        try:
            proxy = self.ice.recorder_client()
            try:
                snapshot = proxy.Recorder_Dump()
                if isinstance(snapshot, dict):
                    remote.append(snapshot)
            finally:
                proxy.close()
        except Exception:  # noqa: BLE001 - the dump must still land
            pass
        target = (
            Path(self.flight_dir)
            if self.flight_dir is not None
            else self.ice.measurement_dir / "flight-recorder"
        )
        try:
            return self.flight_recorder.dump(
                target, trigger=trigger, remote_snapshots=remote
            )
        except Exception:  # noqa: BLE001 - never fail a campaign over a dump
            return None

    def _run_round(
        self,
        settings: CVWorkflowSettings,
        retry_of: int | None = None,
        idem_prefix: str | None = None,
        resumed_start: bool = False,
    ) -> CampaignRound:
        index = len(self.rounds)
        prefix = idem_prefix
        if self._journal is not None:
            # write-ahead: the start record (with the idempotency-key
            # prefix this round's client will stamp on every call) hits
            # disk before any instrument action, so a crash mid-round
            # leaves enough on disk to re-issue the round idempotently
            if prefix is None:
                prefix = uuid.uuid4().hex
            self._journal_append(
                "round-resumed" if resumed_start else "round-started",
                index=index,
                retry_of=retry_of,
                idem_prefix=prefix,
                settings=_settings_to_json(settings),
            )
        result = run_cv_workflow(
            self.ice,
            settings=settings,
            classifier=self.classifier,
            flight_recorder=self.flight_recorder,
            flight_dir=self.flight_dir,
            profile=self.profile,
            resume_from=prefix,
        )
        record = CampaignRound(
            index=index,
            settings=settings,
            result=result,
            retry_of=retry_of,
        )
        self.rounds.append(record)
        if self._journal is not None:
            if result.succeeded:
                name = f"round-{index:03d}"
                if self._checkpoints is not None:
                    self._checkpoints.save(name, self._round_payload(record))
                self._journal_append("round-completed", index=index, checkpoint=name)
            else:
                self._journal_append("round-failed", index=index)
        return record

    @staticmethod
    def _round_payload(record: CampaignRound) -> dict[str, Any]:
        result = record.result
        return {
            "index": record.index,
            "retry_of": record.retry_of,
            "settings": _settings_to_json(record.settings),
            "metrics": asdict(result.metrics) if result.metrics else None,
            "normality": (
                asdict(result.normality) if result.normality else None
            ),
            "measurement_file": result.measurement_file,
        }

    @staticmethod
    def _abnormal(record: CampaignRound) -> bool:
        report = record.result.normality
        return report is not None and not report.normal

    @property
    def effective_rounds(self) -> list[CampaignRound]:
        """Rounds minus any abnormal round superseded by its retry."""
        superseded = {
            r.retry_of for r in self.rounds if r.retry_of is not None
        }
        return [r for r in self.rounds if r.index not in superseded]

    @property
    def all_normal(self) -> bool:
        return all(
            r.result.normality is None or r.result.normality.normal
            for r in self.rounds
        )


@dataclass
class FleetCellResult:
    """Outcome of one cell's campaign inside a :class:`FleetCampaign`."""

    cell: str
    rounds: list[CampaignRound]
    error: Exception | None = None
    safe_stated: bool = False

    @property
    def succeeded(self) -> bool:
        """True when the campaign ran to completion without crashing."""
        return self.error is None


class FleetCampaign:
    """Independent campaigns against multiple ICE cells, concurrently.

    The paper runs one cell per workflow; fleets of ICEs (the follow-on
    "self-driving labs" scaling) run many. Each cell's campaign executes
    in its own worker thread against its own ICE, so one slow or broken
    cell never stalls the others:

    - **failure isolation** — an exception in one cell's campaign is
      captured in that cell's :class:`FleetCellResult`; every other cell
      runs to completion;
    - **safe state** — a crashed cell's workstation is sent
      ``Safe_State`` (syringe/peri pumps halted, cell drained) before
      its result is recorded, so no hardware is left pumping;
    - **merged provenance** — :meth:`merged_provenance` folds each
      cell's per-round provenance records into one fleet-level document.

    Args:
        campaigns: cell name -> ready-to-run :class:`Campaign` (each
            with its *own* ICE).
        max_workers: concurrency bound (default: one thread per cell).
        tracer: optional tracer; cells run under ``fleet.cell`` spans
            parented to one ``fleet.run`` root.
        metrics: optional registry; receives the ``fleet.cells_total``
            counter labelled by outcome.
        require_healthy: propagate the pre-flight health gate to every
            cell's campaign — a cell whose ecosystem is ``unhealthy``
            records :class:`~repro.errors.HealthGateError` as its result
            instead of running (the other cells are unaffected).
    """

    def __init__(
        self,
        campaigns: dict[str, Campaign],
        max_workers: int | None = None,
        tracer: Any = None,
        metrics: Any = None,
        require_healthy: bool = False,
    ):
        if not campaigns:
            raise WorkflowError("a fleet needs at least one campaign")
        self.campaigns = dict(campaigns)
        self.max_workers = max_workers
        self.tracer = tracer
        self.metrics = metrics
        self.require_healthy = require_healthy
        self.results: dict[str, FleetCellResult] = {}

    def run(self) -> dict[str, FleetCellResult]:
        """Run every cell's campaign; returns cell name -> result."""
        self.results.clear()
        if self.require_healthy:
            for campaign in self.campaigns.values():
                campaign.require_healthy = True
        root = (
            self.tracer.start_span(
                "fleet.run", attributes={"cells": len(self.campaigns)}
            )
            if self.tracer is not None
            else None
        )
        workers = self.max_workers or len(self.campaigns)
        try:
            with ThreadPoolExecutor(
                max_workers=max(1, workers), thread_name_prefix="fleet"
            ) as pool:
                futures = {
                    name: pool.submit(self._run_cell, name, campaign, root)
                    for name, campaign in self.campaigns.items()
                }
                for name, future in futures.items():
                    self.results[name] = future.result()
        finally:
            if root is not None:
                failed = [r.cell for r in self.results.values() if not r.succeeded]
                root.set_attribute("cells_failed", len(failed))
                root.end("ERROR" if failed else None)
        if self.metrics is not None:
            counter = self.metrics.counter(
                "fleet.cells_total", "fleet campaign cells by outcome"
            )
            for result in self.results.values():
                counter.inc(status="ok" if result.succeeded else "error")
        return self.results

    def _run_cell(
        self, name: str, campaign: Campaign, parent: Any
    ) -> FleetCellResult:
        with use_span(parent):
            with child_span("fleet.cell", cell=name) as span:
                try:
                    rounds = campaign.run()
                except Exception as exc:  # noqa: BLE001 - isolate the cell
                    if span is not None:
                        span.record_exception(exc)
                    safe = self._safe_state(campaign)
                    campaign.dump_flight("fleet-cell-failure")
                    return FleetCellResult(
                        cell=name,
                        rounds=list(campaign.rounds),
                        error=exc,
                        safe_stated=safe,
                    )
                return FleetCellResult(cell=name, rounds=rounds)

    @staticmethod
    def _safe_state(campaign: Campaign) -> bool:
        """Best-effort hardware quiesce after a cell's campaign crashed."""
        try:
            client = campaign.ice.client()
            try:
                client.call_Safe_State()
            finally:
                client.close()
            return True
        except Exception:  # noqa: BLE001 - teardown must never re-raise
            return False

    @property
    def succeeded(self) -> bool:
        return bool(self.results) and all(
            r.succeeded for r in self.results.values()
        )

    def merged_provenance(self) -> dict[str, Any]:
        """One fleet-level provenance document spanning every cell.

        Each completed round contributes its full
        :func:`capture_provenance` record (task states, timings,
        SHA-256'd measurement artifact); crashed cells record the error
        and whether safe state was reached.
        """
        cells: dict[str, Any] = {}
        for name, result in self.results.items():
            campaign = self.campaigns[name]
            round_records = []
            for round_ in result.rounds:
                artifacts: list[Path] = []
                measurement = round_.result.measurement_file
                if measurement:
                    local = campaign.ice.measurement_dir / measurement
                    if local.exists():
                        artifacts.append(local)
                record = capture_provenance(
                    round_.result.workflow,
                    workflow_name=f"cv-campaign[{name}]#{round_.index}",
                    settings=round_.settings,
                    artifacts=artifacts,
                )
                record["round"] = round_.index
                record["retry_of"] = round_.retry_of
                record["resumed"] = round_.resumed
                round_records.append(record)
            cells[name] = {
                "rounds": round_records,
                "error": str(result.error) if result.error else None,
                "safe_stated": result.safe_stated,
            }
        return {
            "schema": "repro-fleet-provenance-1",
            "cells": cells,
            "succeeded": self.succeeded,
        }

    def write_merged_provenance(
        self, directory: str | Path, stem: str = "fleet-provenance"
    ) -> Path:
        """Write :meth:`merged_provenance` as ``<stem>.json``."""
        return write_provenance(self.merged_provenance(), directory, stem)


def scan_rate_strategy(
    scan_rates_v_s: tuple[float, ...],
    base: CVWorkflowSettings | None = None,
) -> Strategy:
    """Sweep fixed scan rates, one round each."""
    base = base or CVWorkflowSettings()

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        if len(history) >= len(scan_rates_v_s):
            return None
        return replace(
            base,
            scan_rate_v_s=scan_rates_v_s[len(history)],
            measurement_stem=f"scanrate_{len(history):02d}",
        )

    # journaled so `repro-ice resume` can rebuild the strategy from disk
    propose.spec = {  # type: ignore[attr-defined]
        "kind": "scan-rate",
        "scan_rates_v_s": list(scan_rates_v_s),
        "base": _settings_to_json(base),
    }
    return propose


def strategy_from_spec(spec: dict[str, Any]) -> Strategy:
    """Rebuild a strategy from the ``strategy_spec`` a campaign journaled.

    Only strategies that attach a ``spec`` attribute (currently
    :func:`scan_rate_strategy`) can be rebuilt; campaigns run with
    bespoke closures must be resumed programmatically by constructing
    the same strategy again.
    """
    kind = spec.get("kind")
    if kind == "scan-rate":
        return scan_rate_strategy(
            tuple(spec["scan_rates_v_s"]),
            base=_settings_from_json(spec["base"]),
        )
    raise WorkflowError(f"cannot rebuild strategy from spec kind {kind!r}")


def campaign_journal_status(journal_dir: str | Path) -> dict[str, Any] | None:
    """Summarise a campaign journal for tooling (``repro-ice resume``).

    Returns None when no journal exists. Otherwise a dict with the
    per-round disposition a resume would apply: completed round indexes
    (restorable from checkpoint), the in-flight round (started but never
    completed — re-issued idempotently), whether the campaign already
    finished, the journaled strategy spec, and whether the journal tail
    was torn by the crash.
    """
    path = Path(journal_dir) / "campaign.jsonl"
    if not path.exists():
        return None
    replay = Journal.replay_file(path)
    started: set[int] = set()
    completed: set[int] = set()
    spec: dict[str, Any] | None = None
    max_rounds: int | None = None
    finished = False
    for rec in replay.records:
        if rec.kind == "campaign-started":
            spec = rec.data.get("strategy_spec")
            max_rounds = rec.data.get("max_rounds")
        elif rec.kind in ("round-started", "round-resumed"):
            started.add(int(rec.data["index"]))
        elif rec.kind == "round-completed":
            completed.add(int(rec.data["index"]))
        elif rec.kind == "campaign-finished":
            finished = True
    return {
        "journal": str(path),
        "completed_rounds": sorted(completed),
        "in_flight_rounds": sorted(started - completed),
        "finished": finished,
        "torn_tail": replay.torn_tail,
        "strategy_spec": spec,
        "max_rounds": max_rounds,
        "resumable": not finished and bool(started),
    }


def window_centering_strategy(
    base: CVWorkflowSettings | None = None,
    half_window_v: float = 0.25,
    tolerance_v: float = 0.01,
    max_adjustments: int = 5,
) -> Strategy:
    """Re-centre the sweep window on the measured E1/2 each round.

    Stops when the window centre moves by less than ``tolerance_v`` —
    i.e. the experiment has *found* the couple and framed it.
    """
    base = base or CVWorkflowSettings()

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        if len(history) >= max_adjustments:
            return None
        if not history:
            return replace(base, measurement_stem="window_00")
        last = history[-1]
        metrics = last.result.metrics
        if metrics is None:
            # no wave in window: widen and retry
            previous = last.settings
            centre = 0.5 * (previous.e_begin_v + previous.e_vertex_v)
            span = abs(previous.e_vertex_v - previous.e_begin_v) * 1.5
            return replace(
                previous,
                e_begin_v=centre - span / 2,
                e_vertex_v=centre + span / 2,
                measurement_stem=f"window_{len(history):02d}",
            )
        centre_now = 0.5 * (last.settings.e_begin_v + last.settings.e_vertex_v)
        target = metrics.e_half_v
        if abs(target - centre_now) < tolerance_v:
            return None  # converged
        return replace(
            last.settings,
            e_begin_v=target - half_window_v,
            e_vertex_v=target + half_window_v,
            measurement_stem=f"window_{len(history):02d}",
        )

    return propose


def kinetics_targeting_strategy(
    base: CVWorkflowSettings | None = None,
    target_separation_v: tuple[float, float] = (0.080, 0.160),
    max_rounds: int = 6,
    rate_bounds_v_s: tuple[float, float] = (0.01, 50.0),
) -> Strategy:
    """Steer the scan rate into the kinetically informative window.

    Nicholson's working curve is steep (insensitive) near the reversible
    limit and flat (noisy) deep in the irreversible tail; k0 is best
    measured where dEp sits in roughly 80-160 mV. This strategy measures
    dEp each round and multiplies the scan rate up (dEp too reversible)
    or down (too irreversible) until a round lands in the window — a
    small but genuine example of the "AI-driven" real-time steering the
    ICE exists for: the next instrument setting depends on analysis of
    the previous measurement.
    """
    base = base or CVWorkflowSettings()
    low, high = target_separation_v

    def propose(history: list[CampaignRound]) -> CVWorkflowSettings | None:
        from dataclasses import replace as _replace

        if len(history) >= max_rounds:
            return None
        if not history:
            return _replace(base, measurement_stem="kinetics_00")
        last = history[-1]
        metrics = last.result.metrics
        rate = last.settings.scan_rate_v_s
        if metrics is None:
            proposal = rate * 0.25  # no wave: ease off
        else:
            separation = metrics.peak_separation_v
            if low <= separation <= high:
                return None  # informative measurement achieved
            if separation < low:
                # too reversible: outrun the kinetics
                proposal = rate * 4.0
            else:
                proposal = rate * 0.5
        proposal = min(max(proposal, rate_bounds_v_s[0]), rate_bounds_v_s[1])
        if proposal == rate:
            return None  # pinned at a bound; cannot improve
        return _replace(
            base,
            scan_rate_v_s=proposal,
            measurement_stem=f"kinetics_{len(history):02d}",
        )

    return propose
