"""A dependency-aware task engine for science workflows.

Design goals, in the order the paper motivates them:

- **explicit task graph** — the five workflow tasks A-E have a linear
  dependency today, but campaigns fan out (fill once, measure at several
  scan rates), so the engine is a DAG runner, not a list walker;
- **shared context** — tasks communicate through a dict-like
  :class:`Context` (client handles, file names, traces);
- **retries** — transient cross-facility failures (a dropped control
  connection) are retried per task with a bounded budget;
- **transcript** — every state change lands in an
  :class:`~repro.logging_utils.EventLog`, which is what the figure
  benchmarks print;
- **optional parallelism** — independent ready tasks can run on a thread
  pool (``max_workers > 1``), since instrument waits are I/O-shaped.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.clock import Clock, WALL
from repro.errors import DependencyError, TaskFailedError, TaskTimeoutError
from repro.logging_utils import EventLog
from repro.obs.trace import current_span as _current_span, use_span as _use_span
from repro.resilience.policy import RetryPolicy


class TaskState(Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"  # upstream failure


class Context(dict):
    """Shared workflow state: a dict with attribute sugar."""

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        self[name] = value


@dataclass
class Task:
    """One unit of work.

    Attributes:
        name: unique identifier (e.g. ``"A_establish_communications"``).
        fn: callable taking the shared :class:`Context`.
        depends: names of tasks that must succeed first.
        retries: additional attempts on exception (fixed-delay mode;
            ignored when ``policy`` is set).
        retry_delay_s: pause between attempts (fixed-delay mode).
        policy: optional :class:`~repro.resilience.policy.RetryPolicy`
            governing attempts and backoff instead of the fixed-delay
            pair; non-retryable errors (per the policy) fail immediately.
        timeout_s: per-attempt deadline; a run past it fails that attempt
            with :class:`~repro.errors.TaskTimeoutError`. Measured on
            wall time — the attempt runs on a real watchdog thread.
        description: human-readable purpose.
    """

    name: str
    fn: Callable[[Context], Any]
    depends: tuple[str, ...] = ()
    retries: int = 0
    retry_delay_s: float = 0.0
    policy: RetryPolicy | None = None
    timeout_s: float | None = None
    description: str = ""

    @property
    def max_attempts(self) -> int:
        return self.policy.max_attempts if self.policy else self.retries + 1


@dataclass
class TaskResult:
    """Outcome of one task."""

    name: str
    state: TaskState
    result: Any = None
    error: BaseException | None = None
    attempts: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration_s(self) -> float:
        return max(0.0, self.finished_at - self.started_at)


@dataclass
class WorkflowResult:
    """Outcome of a whole run."""

    tasks: dict[str, TaskResult] = field(default_factory=dict)
    context: Context = field(default_factory=Context)

    @property
    def succeeded(self) -> bool:
        return all(
            r.state is TaskState.SUCCEEDED for r in self.tasks.values()
        )

    def failed_tasks(self) -> list[TaskResult]:
        return [r for r in self.tasks.values() if r.state is TaskState.FAILED]

    def raise_on_failure(self) -> None:
        """Re-raise the first task failure, if any."""
        for result in self.tasks.values():
            if result.state is TaskState.FAILED:
                raise TaskFailedError(
                    f"task {result.name!r} failed: {result.error}",
                    task_name=result.name,
                ) from result.error


class Workflow:
    """A named DAG of tasks.

    Args:
        name: workflow label for transcripts.
        event_log: shared log; a fresh one is created if omitted.
        max_workers: thread budget for independent ready tasks.
        clock: time source for retry pauses, so a workflow under a
            :class:`~repro.clock.VirtualClock` retries without real
            sleeping.
        tracer: optional :class:`repro.obs.Tracer`; a run produces a
            ``workflow.<name>`` root span with one ``task.<task>`` child
            per task, installed as current around each attempt so RPC
            and instrument spans nest beneath their task.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            per-task duration histograms and outcome counters.
    """

    def __init__(
        self,
        name: str,
        event_log: EventLog | None = None,
        max_workers: int = 1,
        clock: Clock | None = None,
        tracer: Any = None,
        metrics: Any = None,
    ):
        if max_workers < 1:
            raise DependencyError("max_workers must be >= 1")
        self.name = name
        self.log = event_log if event_log is not None else EventLog()
        self.max_workers = max_workers
        self.clock = clock or WALL
        self.tracer = tracer
        self.metrics = metrics
        self._tasks: dict[str, Task] = {}
        self._teardowns: list[tuple[str, Callable[[Context], Any]]] = []

    # -- construction -------------------------------------------------------
    def add_task(
        self,
        name: str,
        fn: Callable[[Context], Any],
        depends: tuple[str, ...] | list[str] = (),
        retries: int = 0,
        retry_delay_s: float = 0.0,
        policy: RetryPolicy | None = None,
        timeout_s: float | None = None,
        description: str = "",
    ) -> Task:
        """Register a task; duplicate names raise."""
        if name in self._tasks:
            raise DependencyError(f"duplicate task name: {name!r}")
        task = Task(
            name=name,
            fn=fn,
            depends=tuple(depends),
            retries=retries,
            retry_delay_s=retry_delay_s,
            policy=policy,
            timeout_s=timeout_s,
            description=description,
        )
        self._tasks[name] = task
        return task

    def add_teardown(
        self, fn: Callable[[Context], Any], name: str | None = None
    ) -> None:
        """Register a safe-state action for unhealthy runs.

        Teardowns run (in registration order) after any run that ends
        with a failed or skipped task — the moment the workflow can no
        longer vouch for the apparatus, pumps must stop, the purge gas
        must close and the potentiostat must park. Each teardown is
        best-effort: an exception is logged and the rest still run, since
        a dead control link must not stop the remaining safety actions.
        """
        self._teardowns.append((name or getattr(fn, "__name__", "teardown"), fn))

    def task(
        self, name: str, depends: tuple[str, ...] | list[str] = (), **kwargs
    ) -> Callable:
        """Decorator sugar over :meth:`add_task`."""

        def wrap(fn: Callable[[Context], Any]) -> Callable[[Context], Any]:
            self.add_task(name, fn, depends=depends, **kwargs)
            return fn

        return wrap

    @property
    def task_names(self) -> list[str]:
        return list(self._tasks)

    # -- validation -----------------------------------------------------------
    def _validate(self) -> None:
        for task in self._tasks.values():
            for dep in task.depends:
                if dep not in self._tasks:
                    raise DependencyError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
        # cycle detection: Kahn's algorithm must consume every node
        in_degree = {name: len(t.depends) for name, t in self._tasks.items()}
        queue = [name for name, degree in in_degree.items() if degree == 0]
        seen = 0
        dependents: dict[str, list[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.depends:
                dependents[dep].append(task.name)
        while queue:
            node = queue.pop()
            seen += 1
            for child in dependents[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if seen != len(self._tasks):
            raise DependencyError(f"workflow {self.name!r} contains a cycle")

    # -- execution ------------------------------------------------------------
    def run(
        self,
        context: Context | dict | None = None,
        abort_on_failure: bool = True,
    ) -> WorkflowResult:
        """Execute the DAG.

        Args:
            context: initial shared state.
            abort_on_failure: when True, downstream tasks of a failure are
                SKIPPED and the run ends early (the paper's workflow must
                not start the potentiostat when the cell fill failed).
        """
        self._validate()
        ctx = context if isinstance(context, Context) else Context(context or {})
        results = {
            name: TaskResult(name=name, state=TaskState.PENDING)
            for name in self._tasks
        }
        lock = threading.Lock()
        self.log.emit(self.name, "workflow", f"run started ({len(results)} tasks)")
        run_span = (
            self.tracer.start_as_current_span(
                f"workflow.{self.name}",
                attributes={"workflow.task_count": len(results)},
            )
            if self.tracer is not None
            else None
        )

        def ready_tasks() -> list[Task]:
            out = []
            for task in self._tasks.values():
                state = results[task.name].state
                if state is not TaskState.PENDING:
                    continue
                dep_states = [results[d].state for d in task.depends]
                if all(s is TaskState.SUCCEEDED for s in dep_states):
                    out.append(task)
                elif any(
                    s in (TaskState.FAILED, TaskState.SKIPPED) for s in dep_states
                ):
                    results[task.name].state = TaskState.SKIPPED
                    self.log.emit(
                        self.name, "task", f"{task.name} skipped (upstream failure)"
                    )
            return out

        def run_attempt(task: Task) -> Any:
            if task.timeout_s is None:
                return task.fn(ctx)
            # run on a watchdog thread so a hung attempt (e.g. a blocked
            # instrument call) can be abandoned; the thread is daemonic —
            # its eventual result is discarded, the deadline is the
            # contract
            box: dict[str, Any] = {}
            # contextvars do not flow into a fresh thread: hand the
            # watchdog the ambient span so instrument/RPC child spans
            # still nest under this task
            ambient_span = _current_span()

            def target() -> None:
                try:
                    with _use_span(ambient_span):
                        box["result"] = task.fn(ctx)
                except BaseException as exc:  # noqa: BLE001 - relayed below
                    box["error"] = exc

            worker = threading.Thread(
                target=target, name=f"{self.name}:{task.name}", daemon=True
            )
            worker.start()
            worker.join(task.timeout_s)
            if worker.is_alive():
                raise TaskTimeoutError(
                    f"task {task.name!r} exceeded its "
                    f"{task.timeout_s}s deadline"
                )
            if "error" in box:
                raise box["error"]
            return box.get("result")

        def finish_task(record: TaskResult, task: Task, span) -> None:
            """Publish one task's outcome to metrics and its span."""
            if self.metrics is not None:
                self.metrics.counter(
                    "workflow.tasks_total", "task outcomes by state"
                ).inc(workflow=self.name, task=task.name, state=record.state.value)
                self.metrics.histogram(
                    "workflow.task_duration_s", "wall time per task"
                ).observe(record.duration_s, workflow=self.name, task=task.name)
            if span is not None:
                span.set_attribute("task.attempts", record.attempts)
                span.set_attribute("task.state", record.state.value)
                if record.error is not None:
                    span.record_exception(record.error)
                span.end(
                    "OK" if record.state is TaskState.SUCCEEDED else "ERROR"
                )

        def execute(task: Task) -> None:
            record = results[task.name]
            record.state = TaskState.RUNNING
            record.started_at = time.monotonic()
            self.log.emit(self.name, "task", f"{task.name} started")
            # pool threads do not inherit the contextvar, so the task
            # span parents on the run span explicitly
            task_span = (
                self.tracer.start_span(f"task.{task.name}", parent=run_span)
                if self.tracer is not None
                else None
            )
            last_error: BaseException | None = None
            max_attempts = task.max_attempts
            for attempt in range(1, max_attempts + 1):
                record.attempts = attempt
                try:
                    with _use_span(task_span):
                        outcome = run_attempt(task)
                except Exception as exc:  # noqa: BLE001 - task boundary
                    last_error = exc
                    self.log.emit(
                        self.name,
                        "task",
                        f"{task.name} attempt {attempt} raised: {exc}",
                    )
                    if task_span is not None:
                        task_span.add_event(
                            "attempt-failed",
                            attempt=attempt,
                            error_type=type(exc).__name__,
                        )
                    # a timed-out attempt is always worth retrying (the
                    # outcome is unknown; idempotency keys make the redo
                    # safe), everything else defers to the policy
                    if (
                        task.policy is not None
                        and not isinstance(exc, TaskTimeoutError)
                        and not task.policy.is_retryable(exc)
                    ):
                        break
                    if attempt < max_attempts:
                        delay = (
                            task.policy.backoff_s(attempt + 1)
                            if task.policy is not None
                            else task.retry_delay_s
                        )
                        if delay > 0:
                            self.clock.sleep(delay)
                    continue
                with lock:
                    record.state = TaskState.SUCCEEDED
                    record.result = outcome
                    record.finished_at = time.monotonic()
                self.log.emit(
                    self.name,
                    "task",
                    f"{task.name} succeeded in {record.duration_s:.3f}s",
                )
                finish_task(record, task, task_span)
                return
            with lock:
                record.state = TaskState.FAILED
                record.error = last_error
                record.finished_at = time.monotonic()
            self.log.emit(self.name, "task", f"{task.name} FAILED: {last_error}")
            finish_task(record, task, task_span)

        if self.max_workers == 1:
            progressed = True
            while progressed:
                progressed = False
                for task in ready_tasks():
                    execute(task)
                    progressed = True
                    if (
                        abort_on_failure
                        and results[task.name].state is TaskState.FAILED
                    ):
                        break
                if abort_on_failure and any(
                    r.state is TaskState.FAILED for r in results.values()
                ):
                    # let ready_tasks() mark the rest skipped, then stop
                    ready_tasks()
                    break
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                in_flight: dict[Future, str] = {}
                scheduled: set[str] = set()
                while True:
                    failed = any(
                        r.state is TaskState.FAILED for r in results.values()
                    )
                    if not (abort_on_failure and failed):
                        for task in ready_tasks():
                            if task.name not in scheduled:
                                scheduled.add(task.name)
                                future = pool.submit(execute, task)
                                in_flight[future] = task.name
                    else:
                        ready_tasks()  # mark skips
                    if not in_flight:
                        if abort_on_failure and failed:
                            ready_tasks()  # final skip pass
                        break
                    done, _pending = wait(
                        list(in_flight), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        in_flight.pop(future)

        self.log.emit(
            self.name,
            "workflow",
            "run finished: "
            + ", ".join(f"{n}={r.state.value}" for n, r in results.items()),
        )
        unhealthy = any(
            r.state in (TaskState.FAILED, TaskState.SKIPPED)
            for r in results.values()
        )
        if unhealthy and self._teardowns:
            self._run_teardowns(ctx)
        if run_span is not None:
            run_span.set_attribute("workflow.unhealthy", unhealthy)
            run_span.end("ERROR" if unhealthy else "OK")
        return WorkflowResult(tasks=results, context=ctx)

    def _run_teardowns(self, ctx: Context) -> None:
        self.log.emit(
            self.name,
            "teardown",
            f"run unhealthy; executing {len(self._teardowns)} "
            "safe-state action(s)",
        )
        span = _current_span()
        for name, fn in self._teardowns:
            try:
                fn(ctx)
            except Exception as exc:  # noqa: BLE001 - never block safing
                self.log.emit(
                    self.name, "teardown", f"{name} raised: {exc}"
                )
                if span is not None:
                    span.add_event(
                        "teardown", action=name, ok=False,
                        error_type=type(exc).__name__,
                    )
            else:
                self.log.emit(self.name, "teardown", f"{name} done")
                if span is not None:
                    span.add_event("teardown", action=name, ok=True)
