"""Workflow provenance: a machine-readable record of what actually ran.

Cross-facility science needs an audit trail — which tasks ran where,
with what settings, producing which files, verified by which checksums.
``capture_provenance`` distils a finished workflow into a plain-dict
record (schema below) and ``write_provenance`` stores it as JSON next to
the measurements, so a dataset on the share is self-describing.

Schema (version 1)::

    {
      "schema": "repro-provenance-1",
      "workflow": "cv-workflow",
      "succeeded": true,
      "started_at"/"finished_at": monotonic bounds of the run,
      "tasks": [{name, state, attempts, duration_s, error}],
      "settings": {...},              # the dataclass that drove the run
      "artifacts": [{path, sha256, bytes}],
      "environment": {python, platform, repro_version}
    }
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import sys
from pathlib import Path
from typing import Any

from repro.core.workflow import WorkflowResult


def _settings_to_dict(settings: Any) -> dict[str, Any] | None:
    if settings is None:
        return None
    if dataclasses.is_dataclass(settings):
        return dataclasses.asdict(settings)
    if isinstance(settings, dict):
        return dict(settings)
    return {"repr": repr(settings)}


def _artifact_record(path: Path) -> dict[str, Any]:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return {
        "path": path.name,
        "sha256": digest.hexdigest(),
        "bytes": path.stat().st_size,
    }


def capture_provenance(
    result: WorkflowResult,
    workflow_name: str,
    settings: Any = None,
    artifacts: list[Path] | None = None,
) -> dict[str, Any]:
    """Build the provenance record for a finished run."""
    task_records = []
    start_times = []
    end_times = []
    for task in result.tasks.values():
        task_records.append(
            {
                "name": task.name,
                "state": task.state.value,
                "attempts": task.attempts,
                "duration_s": round(task.duration_s, 6),
                "error": str(task.error) if task.error else None,
            }
        )
        if task.started_at:
            start_times.append(task.started_at)
        if task.finished_at:
            end_times.append(task.finished_at)

    from repro import __version__

    return {
        "schema": "repro-provenance-1",
        "workflow": workflow_name,
        "succeeded": result.succeeded,
        "started_at": min(start_times) if start_times else None,
        "finished_at": max(end_times) if end_times else None,
        "tasks": task_records,
        "settings": _settings_to_dict(settings),
        "artifacts": [
            _artifact_record(path) for path in (artifacts or []) if path.exists()
        ],
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "repro_version": __version__,
        },
    }


def write_provenance(
    record: dict[str, Any], directory: str | Path, stem: str = "provenance"
) -> Path:
    """Write the record as ``<stem>.json`` in ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{stem}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True))
    return path


def verify_artifacts(record: dict[str, Any], directory: str | Path) -> dict[str, bool]:
    """Re-hash each artifact; returns name -> intact flag."""
    directory = Path(directory)
    outcome: dict[str, bool] = {}
    for artifact in record.get("artifacts", []):
        path = directory / artifact["path"]
        if not path.exists():
            outcome[artifact["path"]] = False
            continue
        outcome[artifact["path"]] = (
            _artifact_record(path)["sha256"] == artifact["sha256"]
        )
    return outcome
