"""The paper's electrochemical workflow, tasks A-E (paper §4.2).

    (A) establish Pyro communications across the ICE between the control
        agent at ACL and the DGX at K200;
    (B) remotely configure and connect to the J-Kem setup;
    (C) fill the electrochemical cell with the ferrocene solution;
    (D) run the CV technique on the SP200 and collect I-V measurements
        (8 sub-steps, Fig 6a), the file arriving over the data channel;
    (E) shut the cross-facility connections down.

Post-run, the trace is characterised (peaks, dEp, E1/2) and screened by
the ML normality method — the "real-time analysis" of §4.3.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.clock import WALL
from repro.errors import WorkflowError
from repro.logging_utils import EventLog
from repro.obs.trace import child_span
from repro.resilience import RetryPolicy
from repro.chemistry.voltammogram import Voltammogram
from repro.analysis.metrics import CVMetrics, characterize
from repro.analysis.peaks import find_peaks
from repro.ml.normality import NormalityClassifier, NormalityReport
from repro.facility.ice import ElectrochemistryICE
from repro.facility.workstation import PORT_CELL, PORT_COLLECTOR
from repro.core.workflow import Context, Workflow, WorkflowResult


@dataclass(frozen=True)
class CVWorkflowSettings:
    """Knobs of the demonstration workflow.

    Defaults reproduce the paper's run: 5 mL of 2 mM ferrocene pumped at
    5 mL/min from the fraction collector's BOTTOM vial into the cell,
    swept 0.2 -> 0.8 V at 100 mV/s.

    Resilience knobs:
        resilient_client: open the control channel through a
            :class:`~repro.resilience.ResilientProxy` — calls reconnect
            and retry across link flaps/resets, with idempotency keys so
            retried instrument commands never execute twice.
        client_retry_policy: override the resilient client's policy.
        task_policy: per-task retry policy (backoff-driven) applied to
            the instrument tasks B-D instead of their fixed defaults.
        task_timeout_s: per-attempt deadline for tasks B-D.
        safe_state_teardown: register safe-state teardowns (halt pumps,
            shut off purge gas, park the potentiostat, drop the mount)
            that fire when a run ends with a failed or skipped task.
    """

    fill_volume_ml: float = 5.0
    pump_rate_ml_min: float = 5.0
    vial_position: str = "BOTTOM"
    purge_sccm: float = 50.0
    e_begin_v: float = 0.2
    e_vertex_v: float = 0.8
    scan_rate_v_s: float = 0.1
    n_cycles: int = 1
    e_step_v: float = 0.001
    channel: int = 1
    measurement_stem: str | None = None
    acquisition_timeout_s: float = 300.0
    resilient_client: bool = False
    client_retry_policy: RetryPolicy | None = None
    task_policy: RetryPolicy | None = None
    task_timeout_s: float | None = None
    safe_state_teardown: bool = True


@dataclass
class CVWorkflowResult:
    """What the workflow hands back to the scientist."""

    workflow: WorkflowResult
    voltammogram: Voltammogram | None = None
    metrics: CVMetrics | None = None
    normality: NormalityReport | None = None
    measurement_file: str | None = None
    #: ``repro-profile-1`` document when the run was profiled
    #: (``profile=True``), None otherwise.
    profile: dict[str, Any] | None = None

    @property
    def succeeded(self) -> bool:
        return self.workflow.succeeded

    def summary(self) -> str:
        """One-paragraph human summary."""
        if not self.succeeded:
            failed = ", ".join(t.name for t in self.workflow.failed_tasks())
            return f"workflow FAILED at: {failed}"
        parts = []
        if self.voltammogram is not None:
            parts.append(f"{len(self.voltammogram)} I-V samples collected")
        if self.metrics is not None:
            parts.append(self.metrics.format_summary())
        if self.normality is not None:
            parts.append(str(self.normality))
        return "; ".join(parts) if parts else "workflow succeeded"


def build_cv_workflow(
    ice: ElectrochemistryICE,
    settings: CVWorkflowSettings | None = None,
    classifier: NormalityClassifier | None = None,
    event_log: EventLog | None = None,
    tracer: Any = None,
    metrics: Any = None,
    flight_recorder: Any = None,
    flight_dir: str | Path | None = None,
    resume_from: str | None = None,
) -> Workflow:
    """Assemble the five-task workflow against a running ICE.

    The returned workflow is re-runnable; handles opened by task A are
    closed by task E (or leak detection in tests will flag it).

    ``tracer``/``metrics`` default to whatever the ICE carries (see
    :meth:`~repro.facility.ice.ElectrochemistryICE.attach_observability`),
    so a session-wired ecosystem traces the workflow without extra knobs.

    When a ``flight_recorder`` (the client half) is supplied along with
    ``safe_state_teardown``, an extra teardown — registered last, after
    the control channel is already closed — pulls the daemon half over a
    fresh short-timeout proxy and writes the merged black box into
    ``flight_dir`` (default ``<measurement_dir>/flight-recorder``).

    ``resume_from`` pins the control client's idempotency-key prefix
    (implies a resilient client). A fresh run under a journaled campaign
    passes the prefix it just journaled; a *resumed* run passes the
    prefix recorded by its crashed predecessor, so every instrument call
    the predecessor completed replays from the daemon's dedup journal
    instead of executing again — the round continues from where the
    crash cut it.
    """
    settings = settings or CVWorkflowSettings()
    tracer = tracer if tracer is not None else ice.tracer
    metrics = metrics if metrics is not None else ice.metrics
    flow = Workflow(
        "cv-workflow",
        event_log=event_log if event_log is not None else ice.event_log,
        tracer=tracer,
        metrics=metrics,
    )
    # knobs shared by the instrument tasks B-D; A keeps its historical
    # fixed retry so connection-establishment failures stay cheap to spot
    instrument_opts = {
        "policy": settings.task_policy,
        "timeout_s": settings.task_timeout_s,
    }

    @flow.task(
        "A_establish_communications",
        retries=1,
        description="Pyro channel + data mount between ACL and K200",
    )
    def task_a(ctx: Context) -> str:
        ctx.client = ice.client(
            resilient=settings.resilient_client or resume_from is not None,
            retry_policy=settings.client_retry_policy,
            tracer=tracer,
            metrics=metrics,
            idem_prefix=resume_from,
        )
        ctx.client.ping()
        cache = Path(tempfile.mkdtemp(prefix="dgx-cache-"))
        ctx.cache_dir = cache
        ctx.mount = ice.mount(cache_dir=cache, tracer=tracer, metrics=metrics)
        ctx.mount.info()  # data-channel liveness probe
        return "control + data channels up"

    @flow.task(
        "B_configure_jkem",
        depends=("A_establish_communications",),
        description="configure/connect syringe pump + fraction collector",
        **instrument_opts,
    )
    def task_b(ctx: Context) -> str:
        client = ctx.client
        client.call_Connect_JKem_API()
        client.call_Status_JKem()
        client.call_Set_Rate_SyringePump(1, settings.pump_rate_ml_min)
        client.call_Set_Vial_FractionCollector(1, settings.vial_position)
        if settings.purge_sccm > 0:
            client.call_Set_Flow_MFC(1, settings.purge_sccm)
        return "J-Kem setup configured"

    @flow.task(
        "C_fill_cell",
        depends=("B_configure_jkem",),
        description="pump ferrocene solution into the electrochemical cell",
        **instrument_opts,
    )
    def task_c(ctx: Context) -> dict[str, Any]:
        client = ctx.client
        if settings.fill_volume_ml > 0:
            client.call_Set_Port_SyringePump(1, PORT_COLLECTOR)
            client.call_Withdraw_SyringePump(1, settings.fill_volume_ml)
            client.call_Set_Port_SyringePump(1, PORT_CELL)
            client.call_Dispense_SyringePump(1, settings.fill_volume_ml)
        status = client.call_Cell_Status()
        required = settings.fill_volume_ml if settings.fill_volume_ml > 0 else 1e-6
        if status["volume_ml"] + 1e-9 < required:
            raise WorkflowError(
                f"cell reports {status['volume_ml']} mL after dispensing "
                f"{settings.fill_volume_ml} mL"
            )
        return status

    @flow.task(
        "D_run_cv",
        depends=("C_fill_cell",),
        description="SP200 8-step pipeline + data-channel collection",
        **instrument_opts,
    )
    def task_d(ctx: Context) -> dict[str, Any]:
        client = ctx.client
        clock = tracer.clock if tracer is not None else WALL
        client.call_Initialize_SP200_API({"channel": settings.channel})      # (1)
        client.call_Connect_SP200()                                          # (2)
        client.call_Load_Firmware_SP200()                                    # (3)
        client.call_Initialize_CV_Tech_SP200(                                # (4)
            {
                "e_begin_v": settings.e_begin_v,
                "e_vertex_v": settings.e_vertex_v,
                "scan_rate_v_s": settings.scan_rate_v_s,
                "n_cycles": settings.n_cycles,
                "e_step_v": settings.e_step_v,
            }
        )
        client.call_Load_Technique_SP200()                                   # (5)
        issued_at = clock.now()
        client.call_Start_Channel_SP200()                                    # (6)
        result = client.call_Get_Tech_Path_Rslt(                             # (7)
            wait=True, save_as=settings.measurement_stem
        )                                                                     # (8) auto
        file_name = result["file"]
        if file_name is None:
            raise WorkflowError("potentiostat reported no measurement file")
        # the acquisition command has been issued; the measurement is
        # "arrived" once its file is readable over the *data* channel
        with child_span("datachannel.file_arrival", file=file_name) as span:
            trace = ctx.mount.read_voltammogram(file_name)
            arrival_s = clock.now() - issued_at
            if span is not None:
                span.set_attribute("latency_s", arrival_s)
        if metrics is not None:
            metrics.histogram(
                "datachannel.file_arrival_latency_s",
                "acquisition command issue -> file readable on the mount",
            ).observe(arrival_s)
        ctx.measurement_file = file_name
        ctx.voltammogram = trace
        return {"file": file_name, "n_samples": len(trace)}

    @flow.task(
        "E_shutdown",
        depends=("D_run_cv",),
        description="disconnect Pyro communication and unmount",
    )
    def task_e(ctx: Context) -> str:
        ctx.client.call_Exit_JKem_API()
        ctx.client.call_Disconnect_SP200()
        ctx.mount.unmount()
        ctx.client.close()
        return "cross-facility connections closed"

    # analysis runs on the "DGX" after the instrument tasks
    @flow.task(
        "analyze",
        depends=("D_run_cv",),
        description="peak analysis + ML normality check on the DGX",
    )
    def task_analyze(ctx: Context) -> dict[str, Any]:
        trace: Voltammogram = ctx.voltammogram
        pair = find_peaks(trace)
        ctx.metrics = characterize(trace, peaks=pair) if pair.complete else None
        if classifier is not None:
            ctx.normality = classifier.classify(trace)
        else:
            ctx.normality = None
        return {
            "has_peaks": pair.complete,
            "normality": ctx.normality.label if ctx.normality else "unchecked",
        }

    if settings.safe_state_teardown:
        # Registered as separate teardowns so the engine guards each
        # independently: a dead control channel must not stop the local
        # cleanup of the mount and cache.
        def safe_state_instruments(ctx: Context) -> None:
            client = ctx.get("client")
            if client is not None:
                outcome = client.call_Safe_State()
                flow.log.emit(
                    flow.name,
                    "teardown",
                    f"safe state: done={outcome['done']} "
                    f"errors={outcome['errors']}",
                )

        def unmount_data_channel(ctx: Context) -> None:
            mount = ctx.get("mount")
            if mount is not None:
                mount.unmount()

        def close_control_channel(ctx: Context) -> None:
            client = ctx.get("client")
            if client is not None:
                client.close()

        flow.add_teardown(safe_state_instruments)
        flow.add_teardown(unmount_data_channel)
        flow.add_teardown(close_control_channel)

        if flight_recorder is not None:

            def dump_flight_recording(ctx: Context) -> None:
                # runs after close_control_channel, so it opens its own
                # proxy; a partitioned channel yields a client-half-only
                # dump rather than no dump at all
                remote: list[Any] = []
                try:
                    proxy = ice.recorder_client()
                    try:
                        snapshot = proxy.Recorder_Dump()
                        if isinstance(snapshot, dict):
                            remote.append(snapshot)
                    finally:
                        proxy.close()
                except Exception:  # noqa: BLE001 - the dump must still land
                    pass
                target = (
                    Path(flight_dir)
                    if flight_dir is not None
                    else ice.measurement_dir / "flight-recorder"
                )
                path = flight_recorder.dump(
                    target, trigger="safe-state-teardown", remote_snapshots=remote
                )
                flow.log.emit(
                    flow.name,
                    "teardown",
                    f"flight recording dumped to {path}",
                    halves=1 + len(remote),
                )

            flow.add_teardown(dump_flight_recording)

    return flow


def run_cv_workflow(
    ice: ElectrochemistryICE,
    settings: CVWorkflowSettings | None = None,
    classifier: NormalityClassifier | None = None,
    tracer: Any = None,
    metrics: Any = None,
    flight_recorder: Any = None,
    flight_dir: str | Path | None = None,
    profile: bool = False,
    resume_from: str | None = None,
) -> CVWorkflowResult:
    """Build, run, and package the paper's workflow in one call.

    ``profile=True`` samples the run with a
    :class:`~repro.obs.profiler.SpanProfiler` and attaches the
    ``repro-profile-1`` document as ``result.profile``. When the tracer
    already carries a profiler (e.g. a campaign profiling several runs),
    that one is shared and left attached; otherwise a private profiler
    is attached for this run and detached afterwards.

    ``resume_from`` pins the control client's idempotency-key prefix for
    durable at-most-once across daemon restarts (see
    :func:`build_cv_workflow`).
    """
    flow = build_cv_workflow(
        ice,
        settings=settings,
        classifier=classifier,
        tracer=tracer,
        metrics=metrics,
        flight_recorder=flight_recorder,
        flight_dir=flight_dir,
        resume_from=resume_from,
    )
    profiler = None
    owns_profiler = False
    if profile:
        from repro.obs.profiler import SpanProfiler

        run_tracer = tracer if tracer is not None else ice.tracer
        if run_tracer is None:
            # profile=True without any tracer: trace the run privately so
            # there is something to sample
            from repro.obs.trace import Tracer

            run_tracer = Tracer("cv-workflow")
            flow.tracer = run_tracer
        profiler = run_tracer.profiler
        if profiler is None:
            profiler = SpanProfiler(clock=run_tracer.clock)
            owns_profiler = profiler.attach(run_tracer)
    try:
        outcome = flow.run()
    finally:
        if owns_profiler and profiler is not None:
            profiler.detach()
    ctx = outcome.context
    return CVWorkflowResult(
        workflow=outcome,
        voltammogram=ctx.get("voltammogram"),
        metrics=ctx.get("metrics"),
        normality=ctx.get("normality"),
        measurement_file=ctx.get("measurement_file"),
        profile=profiler.profile() if profiler is not None else None,
    )
