"""Command-line interface: the ecosystem from a shell.

Subcommands:

- ``repro-ice demo`` — stand the simulated ICE up, run the paper's
  workflow, print the analysis (the quickstart, scriptable);
- ``repro-ice serve`` — run the control agents over real TCP and print
  their URIs, then serve until interrupted: the two-machine mode (point
  a remote client at the printed URIs);
- ``repro-ice scan-rate`` — the Randles-Sevcik campaign, printing D;
- ``repro-ice analyze FILE.mpt`` — offline analysis of a measurement
  file (peaks, E1/2, dEp, optional Nicholson k0);
- ``repro-ice health`` — stand the ICE up, run one probe workflow, and
  print the per-subsystem health verdict table (exit code encodes the
  overall status: 0 healthy, 1 degraded, 2 unhealthy);
- ``repro-ice jobs`` — submit, inspect, cancel and poll campaign jobs
  on a multi-tenant facility gateway (``ACL_Gateway``) as one tenant;
- ``repro-ice top`` — the operator's per-tenant ops view: call/error
  rates merged from both facility halves (``Obs_Scrape``), gateway
  queue depth, SLO burn rates and firing alerts (``--json`` for the
  machine-readable view);
- ``repro-ice explain`` — critical-path blame table for one trace (or
  one gateway job, resolved through the journal's ``job-trace``
  records): which op was blocking the run, for how long, per facility;
- ``repro-ice watch`` — run the workflow while tailing the live
  telemetry feed (``session.stream()``): span completions, health
  flips and event-log lines as they happen, a ``top``-style view of
  the run; ``--profile`` appends the hot-operation profile.

Run as ``python -m repro.cli <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _report_session_telemetry(session, args: argparse.Namespace) -> None:
    """Metrics table, machine-readable metrics, health verdict, trace.

    Called from a ``finally``: a failed run is exactly when the operator
    needs the telemetry, so none of this is gated on success, and no
    single reporter failing may mask the run's own outcome.
    """
    import json
    from pathlib import Path

    if args.metrics:
        print(session.metrics.format_table())
    if args.metrics_json:
        path = Path(args.metrics_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(session.metrics.summarize(), indent=2, default=str)
        )
        print(f"metrics: -> {path}")
    try:
        report = session.health()
    except Exception as exc:  # noqa: BLE001
        print(f"health: evaluation failed ({exc})", file=sys.stderr)
    else:
        line = f"health: {report.status}"
        reasons = report.reasons()
        if reasons:
            line += " (" + "; ".join(reasons) + ")"
        print(line)
    if args.trace_jsonl:
        count = session.export_trace(args.trace_jsonl)
        print(f"trace: {count} spans -> {args.trace_jsonl}")


def _cmd_demo(args: argparse.Namespace) -> int:
    import repro
    from repro.core.cv_workflow import CVWorkflowSettings

    settings = CVWorkflowSettings(
        scan_rate_v_s=args.scan_rate,
        fill_volume_ml=args.volume,
        e_step_v=args.e_step,
    )
    with repro.connect(flight_dir=args.flight_dir) as session:
        print(f"control: {session.ice.control_uri}")
        print(f"data:    {session.ice.share_uri}")
        try:
            result = session.run_workflow(settings=settings)
            for name, task in result.workflow.tasks.items():
                print(f"  {name:<28} {task.state.value}")
            print(result.summary())
            if not result.succeeded:
                print(f"flight recorder dir: {session.flight_dir}")
            return 0 if result.succeeded else 1
        finally:
            _report_session_telemetry(session, args)


def _cmd_health(args: argparse.Namespace) -> int:
    """One-shot verdict: stand the ICE up, probe it, print the table."""
    import repro
    from repro.core.cv_workflow import CVWorkflowSettings

    with repro.connect(flight_dir=args.flight_dir) as session:
        if not args.no_probe:
            # a coarse but representative probe workflow: exercises RPC,
            # the data channel, and the workflow engine so every
            # subsystem has fresh telemetry inside the health window
            settings = CVWorkflowSettings(e_step_v=args.e_step)
            try:
                session.run_workflow(settings=settings)
            except Exception as exc:  # noqa: BLE001 - verdict still wanted
                print(f"probe workflow failed: {exc}", file=sys.stderr)
        report = session.health()
        print(report.format_table())
        if report.status == "healthy":
            return 0
        return 1 if report.status == "degraded" else 2


def _format_stream_event(event) -> str | None:
    """One display line per telemetry event; None for tallied kinds."""
    if event.kind == "metric":
        return None  # too chatty line-by-line; drained into a counter
    stamp = f"{event.timestamp:10.3f}"
    if event.kind == "span":
        duration = event.data.get("duration_s")
        extra = (
            f" {duration * 1e3:9.2f} ms"
            if isinstance(duration, (int, float))
            else ""
        )
        status = event.data.get("status", "")
        flag = "" if status in ("ok", "") else f"  [{status}]"
        return f"{stamp}  span    {event.service:<11} {event.name}{extra}{flag}"
    if event.kind == "health":
        return (
            f"{stamp}  health  {event.service:<11} "
            f"{event.data.get('previous', '?')} -> {event.data.get('status', '?')}"
        )
    if event.kind == "stream":
        detail = ""
        if "missed" in event.data:
            detail = f" missed={event.data['missed']}"
        return f"{stamp}  stream  {event.service:<11} {event.name}{detail}"
    if event.kind == "slo":
        tenant = event.data.get("tenant") or "-"
        return (
            f"{stamp}  slo     {event.service:<11} {event.name} "
            f"{event.data.get('objective', '?')}[{tenant}] "
            f"burn={event.data.get('burn_fast', 0.0):.1f}x/"
            f"{event.data.get('burn_slow', 0.0):.1f}x"
        )
    return f"{stamp}  {event.kind:<7} {event.service:<11} {event.name}"


def _print_profile(profile: dict, top: int = 10) -> None:
    operations = profile.get("operations", {})
    ranked = sorted(
        operations.items(), key=lambda kv: -kv[1].get("self_s", 0.0)
    )[:top]
    print(f"profile: {profile.get('samples_total', 0)} samples, "
          f"{profile.get('wall_s', 0.0):.3f} s wall")
    print(f"  {'operation':<32} {'count':>6} {'self_s':>9} {'total_s':>9}")
    for name, stats in ranked:
        print(
            f"  {name:<32} {stats.get('count', 0):>6} "
            f"{stats.get('self_s', 0.0):>9.3f} {stats.get('total_s', 0.0):>9.3f}"
        )


def _cmd_watch(args: argparse.Namespace) -> int:
    """Run the workflow with the live feed scrolling: ``top`` for the ICE."""
    import threading

    import repro
    from repro.core.cv_workflow import CVWorkflowSettings

    settings = CVWorkflowSettings(
        scan_rate_v_s=args.scan_rate, e_step_v=args.e_step
    )
    with repro.connect() as session:
        outcome: dict = {}

        def _run() -> None:
            try:
                outcome["result"] = session.run_workflow(
                    settings=settings, profile=args.profile
                )
            except Exception as exc:  # noqa: BLE001 - reported after the tail
                outcome["error"] = exc

        worker = threading.Thread(target=_run, name="watch-workflow")
        metric_updates = 0
        with session.stream() as stream:
            worker.start()
            try:
                while worker.is_alive():
                    worker.join(args.interval)
                    for event in stream.drain():
                        line = _format_stream_event(event)
                        if line is None:
                            metric_updates += 1
                        else:
                            print(line, flush=True)
            finally:
                worker.join()
                # final drain: events raced in while we were printing
                for event in stream.drain():
                    line = _format_stream_event(event)
                    if line is None:
                        metric_updates += 1
                    else:
                        print(line, flush=True)
            print(
                f"stream: {metric_updates} metric updates, "
                f"{stream.dropped} dropped"
            )
        if "error" in outcome:
            print(f"workflow failed: {outcome['error']}", file=sys.stderr)
            return 1
        result = outcome["result"]
        print(result.summary())
        if args.profile and result.profile is not None:
            _print_profile(result.profile)
        return 0 if result.succeeded else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.facility.ice import ElectrochemistryICE, ICEConfig

    secret = args.secret.encode() if args.secret else None
    config = ICEConfig(transport="tcp", control_secret=secret)
    ice = ElectrochemistryICE.build(config)
    print(f"workstation:       {ice.control_uri}")
    print(f"measurement share: {ice.share_uri}")
    print(f"characterization:  {ice.characterization_uri}")
    print("serving; Ctrl-C to stop", flush=True)
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        ice.shutdown()
    return 0


def _cmd_scan_rate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import (
        Campaign,
        CVWorkflowSettings,
        ElectrochemistryICE,
        scan_rate_strategy,
    )
    from repro.analysis import estimate_diffusion_coefficient
    from repro.chemistry.species import FERROCENE

    rates = tuple(args.rates)
    with ElectrochemistryICE.build() as ice:
        campaign = Campaign(
            ice,
            scan_rate_strategy(rates, base=CVWorkflowSettings(e_step_v=args.e_step)),
        )
        rounds = campaign.run()
        peaks = []
        for record in rounds:
            metrics = record.result.metrics
            if metrics is None:
                print(f"round {record.index}: no wave found", file=sys.stderr)
                return 1
            peaks.append(metrics.anodic_peak_a)
            print(
                f"v={record.settings.scan_rate_v_s:6.3f} V/s  "
                f"ip={metrics.anodic_peak_a:.3e} A  "
                f"dEp={metrics.peak_separation_v*1e3:5.1f} mV"
            )
        diffusion, r_squared = estimate_diffusion_coefficient(
            np.asarray(rates), np.asarray(peaks), 1, 0.0707, 2e-6
        )
        print(
            f"D = {diffusion:.2e} cm^2/s (R^2={r_squared:.4f}; "
            f"literature {FERROCENE.diffusion_cm2_s:.2e})"
        )
    return 0


def _scan_campaign_journals(root):
    """``(directory, status)`` for every campaign journal under ``root``.

    ``root`` may itself be a journal directory (contains
    ``campaign.jsonl``) or a parent holding one journal directory per
    campaign.
    """
    from pathlib import Path

    from repro.core.campaign import campaign_journal_status

    root = Path(root)
    status = campaign_journal_status(root)
    if status is not None:
        return [(root, status)]
    found = []
    if root.is_dir():
        for child in sorted(p for p in root.iterdir() if p.is_dir()):
            status = campaign_journal_status(child)
            if status is not None:
                found.append((child, status))
    return found


def _cmd_resume(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import Campaign, ElectrochemistryICE
    from repro.core.campaign import strategy_from_spec
    from repro.facility.ice import ICEConfig

    root = Path(args.journal_dir)
    if not root.exists():
        print(f"no such directory: {root}", file=sys.stderr)
        return 1
    found = _scan_campaign_journals(root)
    if not found:
        print(f"no campaign journals under {root}", file=sys.stderr)
        return 1

    print(f"{'campaign':<32} {'completed':>9} {'in-flight':>9} {'state':<12}")
    for directory, status in found:
        state = (
            "finished"
            if status["finished"]
            else ("resumable" if status["resumable"] else "empty")
        )
        if status["torn_tail"]:
            state += "+torn"
        print(
            f"{directory.name:<32} {len(status['completed_rounds']):>9} "
            f"{len(status['in_flight_rounds']):>9} {state:<12}"
        )
    if args.list:
        return 0

    resumable = [(d, s) for d, s in found if s["resumable"]]
    if args.name:
        resumable = [(d, s) for d, s in resumable if d.name == args.name]
    if not resumable:
        print("nothing resumable", file=sys.stderr)
        return 1
    target, status = resumable[0]
    spec = status.get("strategy_spec")
    if spec is None:
        print(
            f"{target.name}: no strategy spec journaled; resume it "
            "programmatically with the original strategy",
            file=sys.stderr,
        )
        return 1

    config = None
    if args.durability_dir:
        # point the fresh daemon at the crashed ICE's durable state so
        # re-issued calls replay from its dedup journal
        config = ICEConfig(durability_dir=Path(args.durability_dir))
    print(f"resuming {target.name} ...")
    with ElectrochemistryICE.build(config) as ice:
        campaign = Campaign(
            ice,
            strategy_from_spec(spec),
            journal_dir=target,
            max_rounds=status.get("max_rounds") or 10,
        )
        rounds = campaign.resume()
        report = campaign.resume_report or {}
        rerun = set(report.get("rerun_rounds", []))
        for record in rounds:
            if record.resumed:
                disposition = "skipped (restored from checkpoint)"
            elif record.index in rerun:
                disposition = "re-run (idempotent re-issue)"
            else:
                disposition = "new"
            print(f"round {record.index}: {disposition}")
        print(
            f"resume complete: {len(report.get('skipped_rounds', []))} skipped, "
            f"{len(rerun)} re-run, {len(rounds)} total"
            + (" (journal tail was torn)" if report.get("torn_tail") else "")
        )
    return 0


def _format_job_line(view: dict) -> str:
    line = f"job {view['job_id']}  {view['state']:<9} tenant={view['tenant']}"
    if view.get("cell"):
        line += f" cell={view['cell']}"
    if view.get("rounds"):
        line += f" rounds={view['rounds']}"
    if view.get("error"):
        line += f" error={view['error']}"
    if view.get("trace_id"):
        line += f" trace={view['trace_id']}"
    return line


def _cmd_top(args: argparse.Namespace) -> int:
    """Per-tenant ops view over both ICE halves (the operator's ``top``).

    Stands a fresh ICE up, drives tenant-attributed control traffic
    (every RPC made while a tenant is bound on the context is labelled
    automatically), optionally injects an error burst for one tenant,
    then renders the merged two-facility scrape with live SLO burn
    rates. Exit code 1 while any burn-rate alert is firing.
    """
    import repro
    from repro.rpc.context import reset_current_tenant, set_current_tenant

    with repro.connect() as session:
        for _ in range(args.rounds):
            for tenant in args.tenants:
                token = set_current_tenant(tenant)
                try:
                    for _ in range(args.calls):
                        session.client.call_Status_JKem()
                    if tenant == args.burst_tenant:
                        # a misbehaving tenant: unknown verbs come back
                        # as dispatch errors and burn its error budget
                        for _ in range(args.burst_calls):
                            try:
                                session.client.call_No_Such_Verb()
                            except Exception:  # noqa: BLE001 - burst is the point
                                pass
                finally:
                    reset_current_tenant(token)
        if args.json:
            import json

            agg = session.aggregator()
            agg.refresh()
            print(
                json.dumps(
                    {
                        "view": agg.view(),
                        "slo": session.slo_engine.evaluate(),
                    },
                    indent=2,
                    default=str,
                )
            )
        else:
            print(session.top())
        return 1 if session.slo_engine.active_alerts() else 0


def _resolve_trace_id(token: str, state_dir: str | None) -> str:
    """Map a gateway job id to its trace id via the journal's
    ``job-trace`` records (last one wins, matching replay); unknown
    tokens pass through as (possibly partial) trace ids."""
    if state_dir:
        from pathlib import Path

        from repro.durability.journal import Journal

        path = Path(state_dir) / "gateway.jsonl"
        if path.exists():
            latest = None
            for rec in Journal.replay_file(path).records:
                if (
                    rec.kind == "job-trace"
                    and rec.data.get("job_id") == token
                ):
                    latest = rec.data.get("trace_id")
            if latest:
                return latest
    return token


def _cmd_explain(args: argparse.Namespace) -> int:
    """Blame table for one trace: who was blocking, for how long.

    Reads spans from a JSONL export (``demo --trace-jsonl``,
    ``session.export_trace``) — both facility halves land in one file
    because an in-process ICE shares the session tracer. The id may be
    a unique trace-id prefix, or a gateway job id when ``--state-dir``
    points at the gateway's journal.
    """
    from repro.obs.analysis import critical_path, format_blame
    from repro.obs.exporters import read_jsonl_spans

    trace_id = _resolve_trace_id(args.id, args.state_dir)
    try:
        spans = read_jsonl_spans(args.trace_jsonl)
    except OSError as exc:
        print(f"cannot read {args.trace_jsonl}: {exc}", file=sys.stderr)
        return 1
    matches = [
        s for s in spans if str(s.get("trace_id", "")).startswith(trace_id)
    ]
    ids = {s.get("trace_id") for s in matches}
    if not matches:
        print(
            f"no spans for trace {trace_id} in {args.trace_jsonl}",
            file=sys.stderr,
        )
        return 1
    if len(ids) > 1:
        print(
            f"ambiguous trace prefix {trace_id!r}: matches {len(ids)} traces",
            file=sys.stderr,
        )
        return 2
    result = critical_path(matches)
    if result is None:
        print(f"trace {trace_id}: no ended root span", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(result, indent=2, default=str))
    else:
        print(format_blame(result, top=args.top))
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """Talk to a facility gateway (``ACL_Gateway``) as one tenant."""
    import json

    from repro.errors import GatewayError
    from repro.gateway.client import GatewayClient

    secret = args.secret.encode() if args.secret else None
    try:
        return _run_jobs_action(args, json, GatewayClient, secret)
    except GatewayError as exc:
        # rejections are expected outcomes, not crashes: surface the
        # stable code so scripts can branch on it
        print(f"gateway: [{exc.code}] {exc}", file=sys.stderr)
        return 1


def _run_jobs_action(args, json, GatewayClient, secret) -> int:
    with GatewayClient(
        args.uri, args.tenant, args.api_key, timeout=args.timeout, secret=secret
    ) as gateway:
        if args.action == "submit":
            spec = {
                "strategy": {
                    "kind": "scan-rate",
                    "scan_rates_v_s": list(args.rates),
                    "base": {"e_step_v": args.e_step},
                },
                "max_rounds": args.max_rounds,
            }
            view = gateway.submit(spec, priority=args.priority)
            print(_format_job_line(view))
            return 0
        if args.action == "status":
            if not args.job_id:
                print("status needs a JOB_ID", file=sys.stderr)
                return 2
            print(_format_job_line(gateway.status(args.job_id)))
            return 0
        if args.action == "cancel":
            if not args.job_id:
                print("cancel needs a JOB_ID", file=sys.stderr)
                return 2
            print(_format_job_line(gateway.cancel(args.job_id)))
            return 0
        # poll
        reply = gateway.poll(cursor=args.cursor, max_events=args.max_events)
        if args.json:
            print(json.dumps(reply, indent=2, default=str))
        else:
            for event in reply["events"]:
                print(
                    f"{event['seq']:>6}  {event['timestamp']:10.3f}  "
                    f"{event['name']:<13} {event['job_id']}"
                )
            print(f"cursor={reply['cursor']} gap={reply['gap']}")
        return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import characterize, estimate_k0_from_trace, find_peaks
    from repro.datachannel.formats import read_mpt

    trace = read_mpt(args.file)
    print(f"{args.file}: {len(trace)} samples, "
          f"technique {trace.metadata.get('technique', '?')}")
    pair = find_peaks(trace)
    if not pair.complete:
        print("no complete redox wave found")
        return 1
    metrics = characterize(trace, peaks=pair)
    print(metrics.format_summary())
    if args.diffusion:
        estimate = estimate_k0_from_trace(trace, diffusion_cm2_s=args.diffusion)
        bound = ">=" if estimate.reversible else "~"
        print(
            f"Nicholson: psi={estimate.psi:.3f}, k0 {bound} "
            f"{estimate.k0_cm_s:.3e} cm/s"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ice",
        description="Cross-facility electrochemistry ICE (SC-W 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's workflow on a fresh ICE")
    demo.add_argument("--scan-rate", type=float, default=0.1, metavar="V_S")
    demo.add_argument("--volume", type=float, default=5.0, metavar="ML")
    demo.add_argument("--e-step", type=float, default=0.001, metavar="V")
    demo.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="export the run's spans as JSONL",
    )
    demo.add_argument(
        "--metrics",
        action="store_true",
        help="print the session metrics table after the run (even on failure)",
    )
    demo.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="write the metrics summary as JSON (even on failure)",
    )
    demo.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="directory for flight-recorder black-box dumps",
    )
    demo.set_defaults(fn=_cmd_demo)

    health = sub.add_parser(
        "health",
        help="run a probe workflow and print the health verdict table",
    )
    health.add_argument("--e-step", type=float, default=0.01, metavar="V")
    health.add_argument(
        "--no-probe",
        action="store_true",
        help="evaluate the rules without running the probe workflow",
    )
    health.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="directory for flight-recorder black-box dumps",
    )
    health.set_defaults(fn=_cmd_health)

    watch = sub.add_parser(
        "watch",
        help="run the workflow while tailing the live telemetry feed",
    )
    watch.add_argument("--scan-rate", type=float, default=0.1, metavar="V_S")
    watch.add_argument("--e-step", type=float, default=0.005, metavar="V")
    watch.add_argument(
        "--interval",
        type=float,
        default=0.2,
        metavar="S",
        help="feed drain cadence in seconds",
    )
    watch.add_argument(
        "--profile",
        action="store_true",
        help="profile the run and print the hot-operation table",
    )
    watch.set_defaults(fn=_cmd_watch)

    serve = sub.add_parser("serve", help="serve the control agents over TCP")
    serve.add_argument("--secret", default=None, help="require HMAC auth")
    serve.set_defaults(fn=_cmd_serve)

    scan = sub.add_parser("scan-rate", help="Randles-Sevcik campaign")
    scan.add_argument(
        "rates", nargs="*", type=float, default=[0.05, 0.1, 0.2, 0.4]
    )
    scan.add_argument("--e-step", type=float, default=0.002, metavar="V")
    scan.set_defaults(fn=_cmd_scan_rate)

    resume = sub.add_parser(
        "resume", help="list and continue crash-interrupted campaigns"
    )
    resume.add_argument(
        "journal_dir",
        help="a campaign journal directory, or a parent holding several",
    )
    resume.add_argument(
        "--list", action="store_true", help="list resumable campaigns and exit"
    )
    resume.add_argument(
        "--name", default=None, help="which campaign directory to resume"
    )
    resume.add_argument(
        "--durability-dir",
        default=None,
        metavar="DIR",
        help="crashed ICE's durable state (dedup journal, lease epochs) "
        "so re-issued calls replay instead of re-executing",
    )
    resume.set_defaults(fn=_cmd_resume)

    jobs = sub.add_parser(
        "jobs", help="submit/inspect campaign jobs on a facility gateway"
    )
    jobs.add_argument(
        "action", choices=["submit", "status", "cancel", "poll"]
    )
    jobs.add_argument("job_id", nargs="?", default=None)
    jobs.add_argument(
        "--uri",
        required=True,
        metavar="PYRO_URI",
        help="the gateway's PYRO:ACL_Gateway@host:port URI",
    )
    jobs.add_argument("--tenant", required=True, help="tenant id")
    jobs.add_argument("--api-key", required=True, help="tenant API key")
    jobs.add_argument("--secret", default=None, help="channel HMAC secret")
    jobs.add_argument("--timeout", type=float, default=30.0, metavar="S")
    jobs.add_argument(
        "--rates",
        nargs="*",
        type=float,
        default=[0.05, 0.1, 0.2],
        metavar="V_S",
        help="scan rates for a submitted scan-rate campaign",
    )
    jobs.add_argument("--e-step", type=float, default=0.002, metavar="V")
    jobs.add_argument("--max-rounds", type=int, default=10)
    jobs.add_argument("--priority", type=int, default=0)
    jobs.add_argument("--cursor", type=int, default=0, help="poll cursor")
    jobs.add_argument("--max-events", type=int, default=256)
    jobs.add_argument(
        "--json", action="store_true", help="print the raw poll reply"
    )
    jobs.set_defaults(fn=_cmd_jobs)

    top = sub.add_parser(
        "top",
        help="per-tenant ops view: rates, queue depth, SLO burn, alerts",
    )
    top.add_argument(
        "--tenants",
        nargs="*",
        default=["lab-a", "lab-b"],
        help="tenant ids to drive demo traffic for",
    )
    top.add_argument(
        "--calls", type=int, default=20, help="healthy RPCs per tenant per round"
    )
    top.add_argument("--rounds", type=int, default=2, help="traffic rounds")
    top.add_argument(
        "--burst-tenant",
        default=None,
        help="tenant to hit with an error burst (fires its SLO alert)",
    )
    top.add_argument(
        "--burst-calls",
        type=int,
        default=15,
        help="failing RPCs in the burst",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable view (tenant rows + SLO statuses)",
    )
    top.set_defaults(fn=_cmd_top)

    explain = sub.add_parser(
        "explain",
        help="critical-path blame table for one trace (or gateway job)",
    )
    explain.add_argument(
        "id", help="trace id (unique prefix ok) or, with --state-dir, a job id"
    )
    explain.add_argument(
        "--trace-jsonl",
        required=True,
        metavar="PATH",
        help="JSONL span export to read (demo --trace-jsonl / export_trace)",
    )
    explain.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="gateway state dir: resolve a job id via journal job-trace records",
    )
    explain.add_argument(
        "--top", type=int, default=15, help="blame rows to print"
    )
    explain.add_argument(
        "--json", action="store_true", help="print the raw repro-traceidx-1 doc"
    )
    explain.set_defaults(fn=_cmd_explain)

    analyze = sub.add_parser("analyze", help="analyse an .mpt measurement file")
    analyze.add_argument("file")
    analyze.add_argument(
        "--diffusion",
        type=float,
        default=None,
        metavar="CM2_S",
        help="analyte D for Nicholson k0 estimation",
    )
    analyze.set_defaults(fn=_cmd_analyze)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
