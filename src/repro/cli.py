"""Command-line interface: the ecosystem from a shell.

Subcommands:

- ``repro-ice demo`` — stand the simulated ICE up, run the paper's
  workflow, print the analysis (the quickstart, scriptable);
- ``repro-ice serve`` — run the control agents over real TCP and print
  their URIs, then serve until interrupted: the two-machine mode (point
  a remote client at the printed URIs);
- ``repro-ice scan-rate`` — the Randles-Sevcik campaign, printing D;
- ``repro-ice analyze FILE.mpt`` — offline analysis of a measurement
  file (peaks, E1/2, dEp, optional Nicholson k0).

Run as ``python -m repro.cli <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    import repro
    from repro.core.cv_workflow import CVWorkflowSettings

    settings = CVWorkflowSettings(
        scan_rate_v_s=args.scan_rate,
        fill_volume_ml=args.volume,
        e_step_v=args.e_step,
    )
    with repro.connect() as session:
        print(f"control: {session.ice.control_uri}")
        print(f"data:    {session.ice.share_uri}")
        result = session.run_workflow(settings=settings)
        for name, task in result.workflow.tasks.items():
            print(f"  {name:<28} {task.state.value}")
        print(result.summary())
        if args.metrics:
            print(session.metrics.format_table())
        if args.trace_jsonl:
            count = session.export_trace(args.trace_jsonl)
            print(f"trace: {count} spans -> {args.trace_jsonl}")
        return 0 if result.succeeded else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.facility.ice import ElectrochemistryICE, ICEConfig

    secret = args.secret.encode() if args.secret else None
    config = ICEConfig(transport="tcp", control_secret=secret)
    ice = ElectrochemistryICE.build(config)
    print(f"workstation:       {ice.control_uri}")
    print(f"measurement share: {ice.share_uri}")
    print(f"characterization:  {ice.characterization_uri}")
    print("serving; Ctrl-C to stop", flush=True)
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        ice.shutdown()
    return 0


def _cmd_scan_rate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import (
        Campaign,
        CVWorkflowSettings,
        ElectrochemistryICE,
        scan_rate_strategy,
    )
    from repro.analysis import estimate_diffusion_coefficient
    from repro.chemistry.species import FERROCENE

    rates = tuple(args.rates)
    with ElectrochemistryICE.build() as ice:
        campaign = Campaign(
            ice,
            scan_rate_strategy(rates, base=CVWorkflowSettings(e_step_v=args.e_step)),
        )
        rounds = campaign.run()
        peaks = []
        for record in rounds:
            metrics = record.result.metrics
            if metrics is None:
                print(f"round {record.index}: no wave found", file=sys.stderr)
                return 1
            peaks.append(metrics.anodic_peak_a)
            print(
                f"v={record.settings.scan_rate_v_s:6.3f} V/s  "
                f"ip={metrics.anodic_peak_a:.3e} A  "
                f"dEp={metrics.peak_separation_v*1e3:5.1f} mV"
            )
        diffusion, r_squared = estimate_diffusion_coefficient(
            np.asarray(rates), np.asarray(peaks), 1, 0.0707, 2e-6
        )
        print(
            f"D = {diffusion:.2e} cm^2/s (R^2={r_squared:.4f}; "
            f"literature {FERROCENE.diffusion_cm2_s:.2e})"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import characterize, estimate_k0_from_trace, find_peaks
    from repro.datachannel.formats import read_mpt

    trace = read_mpt(args.file)
    print(f"{args.file}: {len(trace)} samples, "
          f"technique {trace.metadata.get('technique', '?')}")
    pair = find_peaks(trace)
    if not pair.complete:
        print("no complete redox wave found")
        return 1
    metrics = characterize(trace, peaks=pair)
    print(metrics.format_summary())
    if args.diffusion:
        estimate = estimate_k0_from_trace(trace, diffusion_cm2_s=args.diffusion)
        bound = ">=" if estimate.reversible else "~"
        print(
            f"Nicholson: psi={estimate.psi:.3f}, k0 {bound} "
            f"{estimate.k0_cm_s:.3e} cm/s"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ice",
        description="Cross-facility electrochemistry ICE (SC-W 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's workflow on a fresh ICE")
    demo.add_argument("--scan-rate", type=float, default=0.1, metavar="V_S")
    demo.add_argument("--volume", type=float, default=5.0, metavar="ML")
    demo.add_argument("--e-step", type=float, default=0.001, metavar="V")
    demo.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="export the run's spans as JSONL",
    )
    demo.add_argument(
        "--metrics",
        action="store_true",
        help="print the session metrics table after the run",
    )
    demo.set_defaults(fn=_cmd_demo)

    serve = sub.add_parser("serve", help="serve the control agents over TCP")
    serve.add_argument("--secret", default=None, help="require HMAC auth")
    serve.set_defaults(fn=_cmd_serve)

    scan = sub.add_parser("scan-rate", help="Randles-Sevcik campaign")
    scan.add_argument(
        "rates", nargs="*", type=float, default=[0.05, 0.1, 0.2, 0.4]
    )
    scan.add_argument("--e-step", type=float, default=0.002, metavar="V")
    scan.set_defaults(fn=_cmd_scan_rate)

    analyze = sub.add_parser("analyze", help="analyse an .mpt measurement file")
    analyze.add_argument("file")
    analyze.add_argument(
        "--diffusion",
        type=float,
        default=None,
        metavar="CM2_S",
        help="analyte D for Nicholson k0 estimation",
    )
    analyze.set_defaults(fn=_cmd_analyze)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
