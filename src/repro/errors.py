"""Exception hierarchy for the repro package.

Every layer of the stack raises a subclass of :class:`ReproError` so that
workflow code can catch one base type at task boundaries while tests can
assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# --------------------------------------------------------------------------
# RPC / control channel
# --------------------------------------------------------------------------
class RPCError(ReproError):
    """Base class for remote-object layer failures."""


class SerializationError(RPCError):
    """A value could not be converted to or from the wire format."""


class ProtocolError(RPCError):
    """A malformed or out-of-sequence frame was received."""


class ConnectionClosedError(RPCError):
    """The peer closed the connection mid-exchange."""


class CommunicationError(RPCError):
    """The transport could not reach the remote daemon."""


class CallTimeoutError(CommunicationError):
    """A call's transport deadline expired before the reply arrived.

    Subclass of :class:`CommunicationError` so existing handlers keep
    working, but distinct so retry classification can treat a timeout
    (outcome unknown, safe to retry with an idempotency key) differently
    from a hard protocol error.
    """


class NamingError(RPCError):
    """URI parse failures and name-server lookup misses."""


class RemoteInvocationError(RPCError):
    """The remote method raised; carries the remote traceback text.

    Attributes:
        remote_type: exception class name raised on the server.
        remote_traceback: formatted traceback captured server side.
    """

    def __init__(self, message: str, remote_type: str = "", remote_traceback: str = ""):
        super().__init__(message)
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback


class MethodNotExposedError(RPCError):
    """Client called a method the server object does not expose."""


class AuthenticationError(RPCError):
    """The HMAC challenge-response handshake failed or was missing."""


# --------------------------------------------------------------------------
# Network model
# --------------------------------------------------------------------------
class NetworkError(ReproError):
    """Base class for ICE network-model failures."""


class FirewallDeniedError(NetworkError):
    """A firewall rule rejected the connection attempt."""


class NoRouteError(NetworkError):
    """No path exists between the two hosts in the topology."""


class AddressInUseError(NetworkError):
    """A simulated port is already bound on the host."""


class LinkDownError(NetworkError):
    """The traversed link is administratively or fault-injected down."""


# --------------------------------------------------------------------------
# Serial / instrument layer
# --------------------------------------------------------------------------
class SerialIOError(ReproError):
    """Base class for simulated serial-port failures."""


class SerialTimeoutError(SerialIOError):
    """Read or write deadline expired."""


class PortNotOpenError(SerialIOError):
    """Operation attempted on a closed port."""


class InstrumentError(ReproError):
    """Base class for instrument failures."""


class InstrumentStateError(InstrumentError):
    """Command issued in a state that does not allow it."""


class InstrumentCommandError(InstrumentError):
    """The device rejected the command (bad args, unknown verb...)."""


class InstrumentFaultError(InstrumentError):
    """An injected or emergent hardware fault prevented the operation."""


class FirmwareError(InstrumentError):
    """Firmware image missing, corrupt, or incompatible."""


class TechniqueError(InstrumentError):
    """Electrochemical technique misconfigured or not loaded."""


class ChannelBusyError(InstrumentError):
    """Potentiostat channel already running an acquisition."""


# --------------------------------------------------------------------------
# Chemistry / cell
# --------------------------------------------------------------------------
class ChemistryError(ReproError):
    """Base class for cell and solution model failures."""


class CellOverflowError(ChemistryError):
    """Dispensing more liquid than the cell can hold."""


class CellUnderflowError(ChemistryError):
    """Withdrawing more liquid than the cell contains."""


class SimulationError(ChemistryError):
    """The finite-difference engine failed (instability, bad params)."""


# --------------------------------------------------------------------------
# Data channel
# --------------------------------------------------------------------------
class DataChannelError(ReproError):
    """Base class for file-share failures."""


class ShareNotMountedError(DataChannelError):
    """Mount operation required before file access."""


class RemoteFileNotFoundError(DataChannelError):
    """The requested path does not exist on the share."""


class AccessDeniedError(DataChannelError):
    """Share-level permission rejected the operation."""


class FileFormatError(DataChannelError):
    """Measurement file could not be parsed."""


# --------------------------------------------------------------------------
# ML
# --------------------------------------------------------------------------
class MLError(ReproError):
    """Base class for ML-layer failures."""


class NotFittedError(MLError):
    """Predict called before fit."""


class FeatureExtractionError(MLError):
    """I-V trace unsuitable for feature extraction."""


# --------------------------------------------------------------------------
# Resilience
# --------------------------------------------------------------------------
class ResilienceError(ReproError):
    """Base class for retry/circuit-breaker layer failures."""


class RetryExhaustedError(ResilienceError):
    """Every allowed attempt (or the deadline) was consumed.

    Attributes:
        attempts: how many attempts were made.
        last_error: the exception raised by the final attempt.
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: BaseException | None = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open; the call was not attempted."""


# --------------------------------------------------------------------------
# Workflow / orchestration
# --------------------------------------------------------------------------
class WorkflowError(ReproError):
    """Base class for orchestration failures."""


class TaskFailedError(WorkflowError):
    """A workflow task raised; carries the task name.

    Attributes:
        task_name: name of the failed task.
    """

    def __init__(self, message: str, task_name: str = ""):
        super().__init__(message)
        self.task_name = task_name


class DependencyError(WorkflowError):
    """Workflow graph is cyclic or references unknown tasks."""


class WorkflowAbortedError(WorkflowError):
    """Workflow stopped early by policy or operator request."""


class TaskTimeoutError(WorkflowError):
    """A task exceeded its per-task deadline."""
