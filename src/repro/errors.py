"""Exception hierarchy for the repro package.

Every layer of the stack raises a subclass of :class:`ReproError` so that
workflow code can catch one base type at task boundaries while tests can
assert on precise failure modes.

Each class carries a machine-readable ``code`` (stable, SCREAMING_SNAKE,
namespaced by layer: ``RPC_*``, ``NET_*``, ``INSTRUMENT_*``, ...). Codes
travel where classes cannot — ERROR frame bodies on the wire, span events,
metric labels — and the code ↔ class table in ``docs/PROTOCOLS.md`` is
generated from :func:`code_table`, so the two cannot drift.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package.

    Attributes:
        code: stable machine-readable identifier for this failure mode.
    """

    code: str = "REPRO_ERROR"


# --------------------------------------------------------------------------
# RPC / control channel
# --------------------------------------------------------------------------
class RPCError(ReproError):
    """Base class for remote-object layer failures."""

    code = "RPC_ERROR"


class SerializationError(RPCError):
    """A value could not be converted to or from the wire format."""

    code = "RPC_SERIALIZATION"


class ProtocolError(RPCError):
    """A malformed or out-of-sequence frame was received."""

    code = "RPC_PROTOCOL"


class FrameCorruptError(ProtocolError):
    """A binary bulk frame was torn or structurally invalid.

    Subclass of :class:`ProtocolError` so existing handlers keep
    working, but distinct so callers can tell "the binary envelope was
    damaged (torn blob table, declared lengths overrunning the payload,
    oversized frame)" from a generic out-of-sequence frame — the binary
    path carries raw instrument data and must fail with a stable,
    machine-readable code rather than desynchronising the stream.
    """

    code = "RPC_FRAME_CORRUPT"


class ConnectionClosedError(RPCError):
    """The peer closed the connection mid-exchange."""

    code = "RPC_CONNECTION_CLOSED"


class CommunicationError(RPCError):
    """The transport could not reach the remote daemon."""

    code = "RPC_COMMUNICATION"


class CallTimeoutError(CommunicationError):
    """A call's transport deadline expired before the reply arrived.

    Subclass of :class:`CommunicationError` so existing handlers keep
    working, but distinct so retry classification can treat a timeout
    (outcome unknown, safe to retry with an idempotency key) differently
    from a hard protocol error.
    """

    code = "RPC_TIMEOUT"


class NamingError(RPCError):
    """URI parse failures and name-server lookup misses."""

    code = "RPC_NAMING"


class RemoteInvocationError(RPCError):
    """The remote method raised; carries the remote traceback text.

    Attributes:
        remote_type: exception class name raised on the server.
        remote_traceback: formatted traceback captured server side.
        remote_code: the ``code`` of the server-side exception when it
            was a :class:`ReproError` (empty string otherwise).
    """

    code = "RPC_REMOTE_INVOCATION"

    def __init__(
        self,
        message: str,
        remote_type: str = "",
        remote_traceback: str = "",
        remote_code: str = "",
    ):
        super().__init__(message)
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback
        self.remote_code = remote_code


class MethodNotExposedError(RPCError):
    """Client called a method the server object does not expose."""

    code = "RPC_METHOD_NOT_EXPOSED"


class AuthenticationError(RPCError):
    """The HMAC challenge-response handshake failed or was missing."""

    code = "RPC_AUTH"


# --------------------------------------------------------------------------
# Network model
# --------------------------------------------------------------------------
class NetworkError(ReproError):
    """Base class for ICE network-model failures."""

    code = "NET_ERROR"


class FirewallDeniedError(NetworkError):
    """A firewall rule rejected the connection attempt."""

    code = "NET_FIREWALL_DENIED"


class NoRouteError(NetworkError):
    """No path exists between the two hosts in the topology."""

    code = "NET_NO_ROUTE"


class AddressInUseError(NetworkError):
    """A simulated port is already bound on the host."""

    code = "NET_ADDRESS_IN_USE"


class LinkDownError(NetworkError):
    """The traversed link is administratively or fault-injected down."""

    code = "NET_LINK_DOWN"


# --------------------------------------------------------------------------
# Serial / instrument layer
# --------------------------------------------------------------------------
class SerialIOError(ReproError):
    """Base class for simulated serial-port failures."""

    code = "SERIAL_IO"


class SerialTimeoutError(SerialIOError):
    """Read or write deadline expired."""

    code = "SERIAL_TIMEOUT"


class PortNotOpenError(SerialIOError):
    """Operation attempted on a closed port."""

    code = "SERIAL_PORT_NOT_OPEN"


class InstrumentError(ReproError):
    """Base class for instrument failures."""

    code = "INSTRUMENT_ERROR"


class InstrumentStateError(InstrumentError):
    """Command issued in a state that does not allow it."""

    code = "INSTRUMENT_STATE"


class InstrumentCommandError(InstrumentError):
    """The device rejected the command (bad args, unknown verb...)."""

    code = "INSTRUMENT_COMMAND"


class InstrumentFaultError(InstrumentError):
    """An injected or emergent hardware fault prevented the operation."""

    code = "INSTRUMENT_FAULT"


class FirmwareError(InstrumentError):
    """Firmware image missing, corrupt, or incompatible."""

    code = "INSTRUMENT_FIRMWARE"


class TechniqueError(InstrumentError):
    """Electrochemical technique misconfigured or not loaded."""

    code = "INSTRUMENT_TECHNIQUE"


class ChannelBusyError(InstrumentError):
    """Potentiostat channel already running an acquisition."""

    code = "INSTRUMENT_CHANNEL_BUSY"


# --------------------------------------------------------------------------
# Chemistry / cell
# --------------------------------------------------------------------------
class ChemistryError(ReproError):
    """Base class for cell and solution model failures."""

    code = "CHEM_ERROR"


class CellOverflowError(ChemistryError):
    """Dispensing more liquid than the cell can hold."""

    code = "CHEM_CELL_OVERFLOW"


class CellUnderflowError(ChemistryError):
    """Withdrawing more liquid than the cell contains."""

    code = "CHEM_CELL_UNDERFLOW"


class SimulationError(ChemistryError):
    """The finite-difference engine failed (instability, bad params)."""

    code = "CHEM_SIMULATION"


# --------------------------------------------------------------------------
# Data channel
# --------------------------------------------------------------------------
class DataChannelError(ReproError):
    """Base class for file-share failures."""

    code = "DATA_ERROR"


class ShareNotMountedError(DataChannelError):
    """Mount operation required before file access."""

    code = "DATA_NOT_MOUNTED"


class RemoteFileNotFoundError(DataChannelError):
    """The requested path does not exist on the share."""

    code = "DATA_NOT_FOUND"


class AccessDeniedError(DataChannelError):
    """Share-level permission rejected the operation."""

    code = "DATA_ACCESS_DENIED"


class FileFormatError(DataChannelError):
    """Measurement file could not be parsed."""

    code = "DATA_FORMAT"


# --------------------------------------------------------------------------
# ML
# --------------------------------------------------------------------------
class MLError(ReproError):
    """Base class for ML-layer failures."""

    code = "ML_ERROR"


class NotFittedError(MLError):
    """Predict called before fit."""

    code = "ML_NOT_FITTED"


class FeatureExtractionError(MLError):
    """I-V trace unsuitable for feature extraction."""

    code = "ML_FEATURE_EXTRACTION"


# --------------------------------------------------------------------------
# Resilience
# --------------------------------------------------------------------------
class ResilienceError(ReproError):
    """Base class for retry/circuit-breaker layer failures."""

    code = "RESILIENCE_ERROR"


class RetryExhaustedError(ResilienceError):
    """Every allowed attempt (or the deadline) was consumed.

    Attributes:
        attempts: how many attempts were made.
        last_error: the exception raised by the final attempt.
    """

    code = "RESILIENCE_RETRY_EXHAUSTED"

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: BaseException | None = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open; the call was not attempted."""

    code = "RESILIENCE_CIRCUIT_OPEN"


# --------------------------------------------------------------------------
# Workflow / orchestration
# --------------------------------------------------------------------------
class WorkflowError(ReproError):
    """Base class for orchestration failures."""

    code = "WORKFLOW_ERROR"


class TaskFailedError(WorkflowError):
    """A workflow task raised; carries the task name.

    Attributes:
        task_name: name of the failed task.
    """

    code = "WORKFLOW_TASK_FAILED"

    def __init__(self, message: str, task_name: str = ""):
        super().__init__(message)
        self.task_name = task_name


class DependencyError(WorkflowError):
    """Workflow graph is cyclic or references unknown tasks."""

    code = "WORKFLOW_DEPENDENCY"


class WorkflowAbortedError(WorkflowError):
    """Workflow stopped early by policy or operator request."""

    code = "WORKFLOW_ABORTED"


class TaskTimeoutError(WorkflowError):
    """A task exceeded its per-task deadline."""

    code = "WORKFLOW_TASK_TIMEOUT"


class HealthGateError(WorkflowError):
    """The pre-flight health gate refused to start a run.

    Raised by ``require_healthy=True`` on workflows and campaigns when
    the :class:`~repro.obs.health.HealthEngine` reports ``unhealthy``;
    the message carries every subsystem's reasons.
    """

    code = "WORKFLOW_HEALTH_GATE"


# --------------------------------------------------------------------------
# Durability / recovery
# --------------------------------------------------------------------------
class DurabilityError(ReproError):
    """Base class for durable-state (journal/checkpoint/lease) failures."""

    code = "DURABILITY_ERROR"


class JournalCorruptError(DurabilityError):
    """A journal or checkpoint is damaged beyond what a crash can explain.

    Crash consistency only ever tears the *tail* record of an
    append-only journal; mid-file damage or a checkpoint checksum
    mismatch means tampering or hardware lying, and replay refuses to
    guess.
    """

    code = "DURABILITY_JOURNAL_CORRUPT"


class LeaseFencedError(DurabilityError):
    """A request carried a stale lease epoch and was fenced.

    Raised daemon-side when a client presents an epoch older than the
    latest acquisition of the resource — a successor session owns the
    instrument now, and admitting the straggler would split-brain the
    cell. Travels back over RPC keeping its identity (default
    constructor, so the proxy can rebuild it by name).
    """

    code = "LEASE_FENCED"


# --------------------------------------------------------------------------
# Gateway / multi-tenant admission
# --------------------------------------------------------------------------
class GatewayError(ReproError):
    """Base class for multi-tenant gateway admission failures.

    Every subclass keeps the default constructor so the proxy can
    rebuild it by name from an ERROR frame — a rejected submit must
    raise the *same* class (and stable code) on the client as on the
    gateway.
    """

    code = "GATEWAY_ERROR"


class UnknownTenantError(GatewayError):
    """The request named a tenant the gateway has never registered."""

    code = "GATEWAY_UNKNOWN_TENANT"


class TenantAuthError(GatewayError):
    """The API key presented does not match the tenant's registered key."""

    code = "GATEWAY_TENANT_AUTH"


class QuotaExceededError(GatewayError):
    """The tenant's active-job quota is exhausted; the submit was refused.

    The stable code is the contract the fairness benchmark and clients
    key on: an over-quota submit is a *policy* outcome, not a transport
    failure, so it must never be retried blindly.
    """

    code = "GATEWAY_QUOTA_EXCEEDED"


class RateLimitedError(GatewayError):
    """The tenant exceeded its submit rate limit; try again later."""

    code = "GATEWAY_RATE_LIMITED"


class UnknownJobError(GatewayError):
    """The request named a job id the gateway's store does not hold."""

    code = "GATEWAY_UNKNOWN_JOB"


class JobStateError(GatewayError):
    """The operation is invalid for the job's current state.

    Cancelling an already-finished job, or a tenant touching another
    tenant's job, lands here — the job exists, the verb does not apply.
    """

    code = "GATEWAY_JOB_STATE"


# --------------------------------------------------------------------------
# Code registry
# --------------------------------------------------------------------------
def code_table() -> dict[str, type[ReproError]]:
    """Map every distinct error code to its owning class.

    Walks the subclass tree of :class:`ReproError`; each class must own
    its code (no two classes may share one), which the test suite
    enforces and the docs table relies on.
    """
    table: dict[str, type[ReproError]] = {ReproError.code: ReproError}
    stack: list[type[ReproError]] = [ReproError]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            if "code" in vars(sub):
                existing = table.get(sub.code)
                if existing is not None and existing is not sub:
                    raise ValueError(
                        f"duplicate error code {sub.code!r}: "
                        f"{existing.__name__} and {sub.__name__}"
                    )
                table[sub.code] = sub
            stack.append(sub)
    return table
