"""Crash-safe file replacement primitives.

A plain ``path.write_text(...)`` truncates the destination before the
new bytes land, so a crash mid-write leaves a torn document — fatal for
anything a restart must read back (baselines, flight dumps, checkpoint
payloads, lease epochs). The pattern here is the classic journal-safe
replace:

1. write the full payload to a temp file *in the same directory* (same
   filesystem, so the final rename cannot degrade to a copy);
2. flush and ``os.fsync`` the temp file so the bytes are on disk, not
   just in the page cache;
3. ``os.replace`` onto the destination — atomic on POSIX and Windows;
4. best-effort fsync of the containing directory so the rename itself
   survives power loss.

Readers therefore observe either the old document or the new one,
never a prefix of the new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk; best-effort on platforms without
    directory fds (Windows raises, some filesystems return EINVAL)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (see module docstring)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)


def atomic_write_text(path: Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: Path, obj: Any, indent: int | None = 2) -> None:
    """Atomically replace ``path`` with ``obj`` rendered as JSON."""
    atomic_write_text(path, json.dumps(obj, indent=indent) + "\n")
