"""Crash-consistent write-ahead journal (schema ``repro-journal-1``).

The journal is an append-only JSONL file: one JSON object per line,
each carrying a monotonically increasing ``seq``, a ``kind`` tag, an
arbitrary JSON-safe ``data`` payload, and a SHA-256 checksum over the
canonical encoding of everything else. Appends are flushed and
``os.fsync``'d before :meth:`Journal.append` returns, so a record the
caller has seen acknowledged survives process death.

Replay is where crash consistency pays off. A crash mid-append leaves
at most one torn line at the *tail* of the file — either an incomplete
JSON fragment or a record whose checksum no longer matches. Replay
detects that via the per-record checksum, drops the torn tail, and
reports it (:attr:`JournalReplay.torn_tail`) so a resume can re-run
only the transition whose record was lost. Corruption anywhere *before*
the tail cannot be produced by a crash (appends never rewrite old
bytes) and is reported as :class:`~repro.errors.JournalCorruptError` —
that file was tampered with or the disk is lying.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import JournalCorruptError

SCHEMA = "repro-journal-1"


def _canonical(payload: dict[str, Any]) -> bytes:
    """Canonical JSON used for checksumming (stable key order, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _checksum(payload: dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One replayed (or just-appended) journal entry."""

    seq: int
    kind: str
    data: dict[str, Any]


@dataclass
class JournalReplay:
    """Result of replaying a journal file from disk.

    Attributes:
        records: every intact record, in append order.
        torn_tail: True when the final line was incomplete or failed its
            checksum — the signature of a crash mid-append. The torn
            record is dropped; its transition must be assumed *not* to
            have happened.
        torn_detail: human-readable description of the torn tail.
    """

    records: list[JournalRecord] = field(default_factory=list)
    torn_tail: bool = False
    torn_detail: str = ""

    def of_kind(self, kind: str) -> list[JournalRecord]:
        return [r for r in self.records if r.kind == kind]

    def last_of_kind(self, kind: str) -> JournalRecord | None:
        for record in reversed(self.records):
            if record.kind == kind:
                return record
        return None


class Journal:
    """Append-only, checksummed, fsync'd JSONL journal.

    Args:
        path: journal file; created (with parents) on first append.
            Opening an existing journal replays it first so ``seq``
            continues where the previous process stopped.
        fsync: flush records to stable storage on every append. Leave
            on for anything a restart must trust; turn off only in
            throughput benchmarks.

    Thread-safe: appends are serialised under an internal lock.
    """

    SCHEMA = SCHEMA

    def __init__(self, path: Path, fsync: bool = True):
        self.path = Path(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        replay = self.replay_file(self.path) if self.path.exists() else JournalReplay()
        self._seq = replay.records[-1].seq + 1 if replay.records else 0
        self._initial = replay
        if replay.torn_tail:
            # drop the torn line now so the next append starts on a clean
            # boundary instead of concatenating onto the fragment (which
            # would read as mid-file corruption on the *next* replay)
            self._truncate_to_records(len(replay.records))

    @property
    def initial_replay(self) -> JournalReplay:
        """What was already on disk when this journal was opened."""
        return self._initial

    @property
    def next_seq(self) -> int:
        return self._seq

    def append(self, kind: str, **data: Any) -> JournalRecord:
        """Durably append one record; returns it once it is on disk."""
        with self._lock:
            payload = {
                "schema": SCHEMA,
                "seq": self._seq,
                "kind": kind,
                "data": data,
            }
            payload["sha256"] = _checksum(payload)
            line = json.dumps(payload, separators=(",", ":")) + "\n"
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            record = JournalRecord(seq=self._seq, kind=kind, data=data)
            self._seq += 1
            return record

    def _truncate_to_records(self, keep: int) -> None:
        """Truncate the file just past its ``keep``-th intact line."""
        raw = self.path.read_bytes()
        offset = 0
        kept = 0
        while kept < keep and offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break
            if raw[offset:newline].strip():
                kept += 1
            offset = newline + 1
        with open(self.path, "rb+") as handle:
            handle.truncate(offset)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- replay ------------------------------------------------------------
    @staticmethod
    def _decode_line(line: str) -> JournalRecord:
        """Decode and verify one journal line; raises ValueError on any
        mismatch (malformed JSON, wrong schema, bad checksum)."""
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError("record is not an object")
        if payload.get("schema") != SCHEMA:
            raise ValueError(f"unknown journal schema {payload.get('schema')!r}")
        claimed = payload.pop("sha256", None)
        if claimed != _checksum(payload):
            raise ValueError("checksum mismatch")
        return JournalRecord(
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            data=dict(payload.get("data") or {}),
        )

    @classmethod
    def replay_file(cls, path: Path) -> JournalReplay:
        """Replay a journal from disk (see module docstring for torn-tail
        versus mid-file corruption semantics).

        Raises:
            JournalCorruptError: a record *before* the final line is
                damaged, or record sequence numbers are discontinuous —
                neither can result from a crash mid-append.
        """
        path = Path(path)
        replay = JournalReplay()
        if not path.exists():
            return replay
        raw = path.read_text(encoding="utf-8", errors="replace")
        lines = raw.split("\n")
        # a cleanly written file ends with "\n", so the final split
        # element is ""; anything else is an unterminated (torn) line
        unterminated = lines[-1] != ""
        lines = [line for line in lines[:-1] if line.strip()] + (
            [lines[-1]] if unterminated else []
        )
        for index, line in enumerate(lines):
            last = index == len(lines) - 1
            try:
                record = cls._decode_line(line)
            except ValueError as exc:
                if last:
                    replay.torn_tail = True
                    replay.torn_detail = f"torn tail record dropped: {exc}"
                    return replay
                raise JournalCorruptError(
                    f"{path}: record {index} is damaged mid-file ({exc}); "
                    "crash-consistency only tears the tail — refusing to replay"
                ) from exc
            expected = replay.records[-1].seq + 1 if replay.records else record.seq
            if record.seq != expected:
                raise JournalCorruptError(
                    f"{path}: sequence discontinuity at record {index} "
                    f"(seq {record.seq}, expected {expected})"
                )
            replay.records.append(record)
        return replay

    @classmethod
    def iter_records(cls, path: Path) -> Iterator[JournalRecord]:
        """Convenience: iterate intact records, tolerating a torn tail."""
        yield from cls.replay_file(path).records
