"""Epoch-numbered leases (fencing tokens) on instrument ownership.

A client presumed dead may merely be partitioned; if a successor session
claims the cell and the original then wakes up and keeps pipetting, two
controllers split-brain one physical instrument. The classic fix is a
fencing token: every acquisition of a resource bumps a monotonic
*epoch*, requests carry the epoch they hold, and the daemon rejects any
request whose epoch is older than the latest acquisition —
:class:`~repro.errors.LeaseFencedError`, stable code ``LEASE_FENCED``.

Epochs are persisted atomically (:mod:`repro.durability.atomic`) so a
daemon restart cannot reset them to zero and silently re-admit a fenced
client.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any

from repro.errors import LeaseFencedError
from repro.rpc.expose import expose

from repro.durability.atomic import atomic_write_json

SCHEMA = "repro-leases-1"


class LeaseRegistry:
    """Monotonic per-resource epochs, optionally persisted to disk."""

    def __init__(self, path: Path | None = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._epochs: dict[str, int] = {}
        self._holders: dict[str, str] = {}
        if self.path is not None and self.path.exists():
            try:
                document = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                document = None
            if isinstance(document, dict) and document.get("schema") == SCHEMA:
                epochs = document.get("epochs")
                if isinstance(epochs, dict):
                    self._epochs = {
                        str(k): int(v)
                        for k, v in epochs.items()
                        if isinstance(v, int)
                    }
                holders = document.get("holders")
                if isinstance(holders, dict):
                    self._holders = {str(k): str(v) for k, v in holders.items()}

    def _persist_locked(self) -> None:
        if self.path is None:
            return
        atomic_write_json(
            self.path,
            {"schema": SCHEMA, "epochs": self._epochs, "holders": self._holders},
        )

    def acquire(self, resource: str, holder: str = "") -> int:
        """Claim ``resource``: bump its epoch, persist, return the new epoch.

        Every prior holder's epoch is now stale — their next fenced
        request fails with ``LEASE_FENCED``.
        """
        with self._lock:
            epoch = self._epochs.get(resource, 0) + 1
            self._epochs[resource] = epoch
            self._holders[resource] = holder
            self._persist_locked()
            return epoch

    def current(self, resource: str) -> int:
        """Latest granted epoch for ``resource`` (0 = never acquired)."""
        with self._lock:
            return self._epochs.get(resource, 0)

    def holder(self, resource: str) -> str:
        with self._lock:
            return self._holders.get(resource, "")

    def check(self, resource: str, epoch: int) -> None:
        """Raise :class:`LeaseFencedError` when ``epoch`` is stale.

        An epoch *newer* than the registry's is equally rejected — it
        can only mean the registry lost state the client still holds,
        and admitting it would forfeit the fencing guarantee.
        """
        with self._lock:
            current = self._epochs.get(resource, 0)
        if epoch != current:
            raise LeaseFencedError(
                f"lease on {resource!r} is fenced: presented epoch {epoch}, "
                f"current epoch {current} — a successor holds this resource"
            )

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "epochs": dict(self._epochs),
                "holders": dict(self._holders),
            }


@expose
class LeaseServer:
    """Control-plane service object granting leases over RPC.

    Registered on the control daemon next to the flight recorder and
    telemetry servers; clients derive its URI from the workstation URI
    the way they do for those.
    """

    OBJECT_ID = "ACL_Leases"

    def __init__(self, registry: LeaseRegistry):
        self.registry = registry

    def Lease_Acquire(self, resource: str, holder: str = "") -> int:
        return self.registry.acquire(resource, holder=holder)

    def Lease_Current(self, resource: str) -> int:
        return self.registry.current(resource)

    def Lease_Holder(self, resource: str) -> str:
        return self.registry.holder(resource)
