"""Checkpoint store for completed-round payloads (``repro-checkpoint-1``).

The journal records *that* a transition happened; the checkpoint store
holds the *payload* a resume needs to reconstruct the completed round
(metrics, normality verdict, measurement-file path) without re-running
the experiment. Each checkpoint is one JSON document written atomically
(:mod:`repro.durability.atomic`) and checksummed, so a crash mid-save
leaves the previous checkpoint intact and a damaged document is
detected rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.durability.atomic import atomic_write_json
from repro.errors import JournalCorruptError

SCHEMA = "repro-checkpoint-1"


def _payload_digest(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Directory of named, checksummed checkpoint documents."""

    SCHEMA = SCHEMA

    def __init__(self, directory: Path):
        self.directory = Path(directory)

    def _path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise ValueError(f"invalid checkpoint name {name!r}")
        return self.directory / f"{name}.json"

    def save(self, name: str, payload: dict[str, Any]) -> Path:
        """Atomically persist ``payload`` under ``name``; returns the path.

        The returned digest inside the document lets :meth:`load` verify
        integrity, and callers may journal it as the round's result
        digest.
        """
        path = self._path(name)
        document = {
            "schema": SCHEMA,
            "name": name,
            "payload": payload,
            "sha256": _payload_digest(payload),
        }
        atomic_write_json(path, document)
        return path

    def digest(self, payload: dict[str, Any]) -> str:
        """The digest :meth:`save` would embed for ``payload``."""
        return _payload_digest(payload)

    def load(self, name: str) -> dict[str, Any] | None:
        """Load and verify a checkpoint; ``None`` when absent.

        Raises:
            JournalCorruptError: the document exists but is damaged
                (unparseable, wrong schema, or checksum mismatch) —
                atomic writes make this impossible via crash, so the
                store refuses to guess.
        """
        path = self._path(name)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise JournalCorruptError(f"{path}: unreadable checkpoint: {exc}") from exc
        if not isinstance(document, dict) or document.get("schema") != SCHEMA:
            raise JournalCorruptError(f"{path}: not a {SCHEMA} document")
        payload = document.get("payload")
        if not isinstance(payload, dict) or document.get("sha256") != _payload_digest(
            payload
        ):
            raise JournalCorruptError(f"{path}: checkpoint checksum mismatch")
        return payload

    def names(self) -> list[str]:
        if not self.directory.exists():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))
