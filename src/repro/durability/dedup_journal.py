"""Disk spill for the daemon's idempotency (dedup) cache.

The in-memory :class:`~repro.rpc.daemon.DedupCache` makes retried calls
at-most-once *within* one daemon process; a daemon restart forgets every
recorded outcome, so a client resuming a half-finished round would
re-execute instrument calls it already made. The :class:`DedupJournal`
closes that hole: every finished outcome is appended (checksummed,
fsync'd — it rides :class:`~repro.durability.journal.Journal`) before
the reply frame leaves the daemon, and a restarted daemon preloads the
journal into its cache so replays keep working across process death.

Outcome bodies crossed the wire once already, so they are re-encoded
with the RPC serializer (base64-wrapped inside the JSON record) —
anything serializable enough to reply with is serializable enough to
journal.
"""

from __future__ import annotations

import base64
from pathlib import Path

from repro.rpc.protocol import MessageType
from repro.rpc.serialization import deserialize, serialize

from repro.durability.journal import Journal

KIND_OUTCOME = "dedup-outcome"


class DedupJournal:
    """Append-only journal of finished idempotent-call outcomes."""

    def __init__(self, path: Path, fsync: bool = True):
        self._journal = Journal(Path(path), fsync=fsync)

    @property
    def path(self) -> Path:
        return self._journal.path

    def record(self, key: str, msg_type: MessageType, body: object) -> None:
        """Durably record one finished outcome before it is replied."""
        self._journal.append(
            KIND_OUTCOME,
            key=key,
            msg_type=int(msg_type),
            body=base64.b64encode(serialize(body)).decode("ascii"),
        )

    def replay(self) -> dict[str, tuple[MessageType, object]]:
        """Outcomes already on disk when this journal was opened.

        Later records win for a duplicated key (there should be none,
        but replay is the wrong place to be strict). A torn tail is
        tolerated — a crash between executing a call and journaling its
        outcome means that call will re-execute once on replay, which is
        the at-most-once-*per-journal-record* contract.
        """
        outcomes: dict[str, tuple[MessageType, object]] = {}
        for record in self._journal.initial_replay.of_kind(KIND_OUTCOME):
            try:
                key = str(record.data["key"])
                msg_type = MessageType(int(record.data["msg_type"]))
                body = deserialize(base64.b64decode(record.data["body"]))
            except (KeyError, ValueError, TypeError):
                continue
            outcomes[key] = (msg_type, body)
        return outcomes

    @property
    def torn_tail(self) -> bool:
        return self._journal.initial_replay.torn_tail

    def close(self) -> None:
        self._journal.close()
