"""Durable execution: crash-consistent state that survives process death.

Everything in :mod:`repro.net.chaos` before this package injected
*network* faults; every recovery primitive (retry, dedup cache, round
state) lived in memory and died with its process. This package adds the
crash/restart fault domain:

- :mod:`~repro.durability.atomic` — torn-write-free file replacement;
- :mod:`~repro.durability.journal` — checksummed, fsync'd write-ahead
  journal (``repro-journal-1``) with torn-tail detection on replay;
- :mod:`~repro.durability.checkpoint` — completed-round payload store;
- :mod:`~repro.durability.dedup_journal` — disk spill for the daemon's
  idempotency cache, so at-most-once survives daemon restart;
- :mod:`~repro.durability.lease` — epoch-numbered fencing tokens on
  instrument ownership (stale epoch → ``LEASE_FENCED``).

The campaign layer journals round transitions through
:class:`~repro.core.campaign.Campaign` (``journal_dir=``) and resumes
them with ``Campaign.resume()``; see ``docs/RESILIENCE.md`` for the
recovery contract.
"""

from repro.durability.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
)
from repro.durability.checkpoint import CheckpointStore
from repro.durability.dedup_journal import DedupJournal
from repro.durability.journal import Journal, JournalRecord, JournalReplay
from repro.durability.lease import LeaseRegistry, LeaseServer

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "CheckpointStore",
    "DedupJournal",
    "Journal",
    "JournalRecord",
    "JournalReplay",
    "LeaseRegistry",
    "LeaseServer",
]
