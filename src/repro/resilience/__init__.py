"""Cross-facility resilience: retry policies, breakers, resilient RPC.

The paper's orchestration spans two facilities joined by WAN links,
gateways and firewalls; this package makes the control plane survive the
failures that geometry invites. See ``docs/RESILIENCE.md`` for the
design and :mod:`repro.net.chaos` for the fault injector used to test it.
"""

from repro.resilience.policy import (
    DEFAULT_RPC_POLICY,
    TRANSIENT_ERRORS,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)
from repro.resilience.proxy import ResilientProxy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_RPC_POLICY",
    "ResilientProxy",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
]
