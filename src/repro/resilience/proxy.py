"""A reconnecting, retrying wrapper around :class:`repro.rpc.proxy.Proxy`.

A bare proxy holds one connection and surfaces every transport hiccup to
the caller — correct, but the paper's steering loop spans a WAN, a campus
gateway and a lab hub, where a mid-run link flap is routine rather than
exceptional. :class:`ResilientProxy` hides that class of failure:

- each *logical* call gets one unique idempotency key that is
  reused across every retransmission, so the daemon's dedup cache can
  replay the recorded outcome instead of re-executing — a retried
  ``Dispense_Syringe_Pump`` never dispenses twice;
- on a transient transport error the underlying connection is dropped and
  redialled on the next attempt, with backoff from a
  :class:`~repro.resilience.policy.RetryPolicy`;
- an optional :class:`~repro.resilience.policy.CircuitBreaker` fails fast
  when the endpoint is persistently dead instead of stalling the workflow
  on every call.

The call surface mirrors ``Proxy`` (``__getattr__`` → remote method,
``_pyro_ping``, ``_pyro_metadata``, ``close``, context manager), so it
drops into :class:`repro.facility.client.ACLPyroClient` unchanged.
"""

from __future__ import annotations

import itertools
import random
import uuid
from typing import Any, Callable

from repro.clock import Clock, WALL
from repro.logging_utils import EventLog
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.rpc.proxy import Proxy


class _ResilientMethod:
    """Callable bound to one remote method name, retried on failure."""

    def __init__(self, proxy: "ResilientProxy", name: str):
        self._proxy = proxy
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._proxy._call(self._name, args, kwargs)

    def oneway(self, *args: Any, **kwargs: Any) -> None:
        """Fire-and-forget variant; still retried until the send succeeds."""
        self._proxy._call(self._name, args, kwargs, oneway=True)


class ResilientProxy:
    """Retry/reconnect/replay decorator over a :class:`Proxy`.

    Args:
        proxy: the wrapped proxy (owned: ``close`` closes it).
        policy: retry policy; defaults to :class:`RetryPolicy` defaults.
        breaker: optional circuit breaker gating every attempt.
        clock: time source for backoff sleeps (virtual in tests).
        rng: jitter source; pass a seeded ``random.Random`` for
            reproducible backoff sequences.
        event_log: optional structured log; emits ``rpc.resilient`` retry
            events for transcript-style assertions.
        tracer: optional :class:`repro.obs.Tracer`; each logical call gets
            an ``rpc.resilient.<method>`` span under which every attempt's
            ``rpc.call.<method>`` span nests. Defaults to the wrapped
            proxy's tracer so one knob configures both layers.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            retry/reconnect counters (defaults to the proxy's registry).
        key_prefix: idempotency-key prefix. Defaults to a fresh uuid4
            hex per proxy — globally unique keys, at-most-once within
            one daemon lifetime. Pass the prefix recorded in a durable
            journal to make a *resumed* client re-issue byte-identical
            keys, so calls it already made before a crash replay from
            the daemon's dedup journal instead of re-executing.

    Attributes:
        retry_count: attempts beyond the first, across all calls.
        reconnect_count: times the underlying connection was redialled
            after a failure.
    """

    def __init__(
        self,
        proxy: Proxy,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Clock | None = None,
        rng: random.Random | None = None,
        event_log: EventLog | None = None,
        tracer: Any = None,
        metrics: Any = None,
        key_prefix: str | None = None,
    ):
        self._proxy = proxy
        self._policy = policy or RetryPolicy()
        self._breaker = breaker
        self._clock = clock or WALL
        self._rng = rng
        self._event_log = event_log
        self.tracer = tracer if tracer is not None else getattr(proxy, "tracer", None)
        self.metrics = (
            metrics if metrics is not None else getattr(proxy, "metrics", None)
        )
        # one random prefix per proxy + a counter keeps keys globally
        # unique at a fraction of the cost of a uuid4 per call; a caller
        # resuming a journaled run passes the recorded prefix instead
        self._key_prefix = key_prefix if key_prefix else uuid.uuid4().hex
        self._key_seq = itertools.count()
        self.retry_count = 0
        self.reconnect_count = 0

    # -- passthrough surface ---------------------------------------------
    @property
    def uri(self):
        return self._proxy.uri

    @property
    def connected(self) -> bool:
        return self._proxy.connected

    @property
    def policy(self) -> RetryPolicy:
        return self._policy

    @property
    def breaker(self) -> CircuitBreaker | None:
        return self._breaker

    @property
    def key_prefix(self) -> str:
        """Idempotency-key prefix (journaled so a resume can reuse it)."""
        return self._key_prefix

    @property
    def lease(self) -> Any:
        return self._proxy.lease

    @lease.setter
    def lease(self, token: Any) -> None:
        # lives on the wrapped proxy, so it survives redials (close()
        # only drops the connection, never the proxy object)
        self._proxy.lease = token

    def close(self) -> None:
        self._proxy.close()

    def __enter__(self) -> "ResilientProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- retried operations ----------------------------------------------
    def _run_with_retry(self, label: str, attempt: Callable[[], Any]) -> Any:
        gated = attempt
        if self._breaker is not None:
            breaker = self._breaker
            gated = lambda: breaker.call(attempt)  # noqa: E731

        def on_retry(next_attempt: int, exc: BaseException, delay: float) -> None:
            self.retry_count += 1
            # the wrapped proxy drops its connection on transport errors
            # already; closing here guarantees a clean redial even for
            # error types it does not recognise
            self._proxy.close()
            self.reconnect_count += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "resilience.retries_total", "retry attempts beyond the first"
                ).inc(method=label, error_type=type(exc).__name__)
                self.metrics.counter(
                    "resilience.reconnects_total", "connection redials after failure"
                ).inc()
            if self.tracer is not None:
                from repro.obs.trace import current_span

                span = current_span()
                if span is not None:
                    span.add_event(
                        "retry",
                        attempt=next_attempt,
                        error_type=type(exc).__name__,
                        delay_s=delay,
                    )
            if self._event_log is not None:
                self._event_log.emit(
                    "rpc.resilient",
                    "retry",
                    f"{label}: attempt {next_attempt} after "
                    f"{type(exc).__name__}: {exc}",
                    method=label,
                    attempt=next_attempt,
                    error_type=type(exc).__name__,
                    delay_s=delay,
                )

        return self._policy.run(
            gated, clock=self._clock, rng=self._rng, on_retry=on_retry
        )

    def _call(
        self, method: str, args: tuple, kwargs: dict, oneway: bool = False
    ) -> Any:
        # one key per *logical* call: every retransmission of this call
        # carries the same key, so the daemon executes it at most once
        key = f"{self._key_prefix}:{next(self._key_seq)}"
        attempt = lambda: self._proxy._call(  # noqa: E731
            method, args, kwargs, oneway=oneway, idempotency_key=key
        )
        if self.tracer is None:
            return self._run_with_retry(method, attempt)
        with self.tracer.start_as_current_span(
            f"rpc.resilient.{method}", attributes={"rpc.method": method}
        ):
            return self._run_with_retry(method, attempt)

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a remote method by name, with the retry/breaker policy.

        Mirrors :meth:`repro.rpc.proxy.Proxy.call` so resilient and bare
        proxies stay drop-in interchangeable at call sites.
        """
        return self._call(method, args, kwargs)

    def _pyro_ping(self) -> None:
        # ping carries no side effects, so no idempotency key is needed
        self._run_with_retry("_pyro_ping", self._proxy._pyro_ping)

    def _pyro_metadata(self) -> dict[str, Any]:
        return self._run_with_retry("_pyro_metadata", self._proxy._pyro_metadata)

    def __getattr__(self, name: str) -> _ResilientMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return _ResilientMethod(self, name)
