"""Retry and circuit-breaker policies for cross-facility calls.

The steering loop of the paper runs over facility networks, gateways and
firewalls — precisely where links flap and calls time out mid-step. This
module holds the *decision* logic (when to retry, how long to wait, when
to stop hammering a dead peer); the *mechanics* of reconnecting live in
:class:`repro.resilience.proxy.ResilientProxy` and the workflow engine.

Everything is :class:`~repro.clock.Clock`-driven so the same policies run
deterministically under :class:`~repro.clock.VirtualClock` in tests.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.clock import Clock, WALL
from repro.errors import (
    CircuitOpenError,
    CommunicationError,
    ConnectionClosedError,
    LinkDownError,
    RetryExhaustedError,
)

#: Exception types a retry may safely assume are transient transport
#: trouble rather than application failures. ``CallTimeoutError`` is a
#: subclass of ``CommunicationError`` and is therefore included.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    CommunicationError,
    ConnectionClosedError,
    LinkDownError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter, bounded by a deadline.

    The delay before attempt ``n`` (2-based: the first *retry*) is drawn
    uniformly from ``[0, min(max_delay_s, base_delay_s * multiplier**(n-2))]``
    — AWS-style "full jitter", which decorrelates clients that failed
    together when a shared link flapped.

    Attributes:
        max_attempts: total attempts including the first (>= 1).
        base_delay_s: backoff scale for the first retry.
        multiplier: exponential growth factor per retry.
        max_delay_s: cap on any single backoff sleep.
        deadline_s: total budget across all attempts *and* sleeps,
            measured on the policy's clock; None disables.
        jitter: ``"full"`` (default) or ``"none"`` (deterministic delays,
            useful in tests and when callers provide their own spacing).
        retry_on: exception types considered retryable.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    deadline_s: float | None = None
    jitter: str = "full"
    retry_on: tuple[type[BaseException], ...] = TRANSIENT_ERRORS

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.jitter not in ("full", "none"):
            raise ValueError(f"jitter must be 'full' or 'none', got {self.jitter!r}")

    # -- classification ----------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt under this policy."""
        return isinstance(exc, self.retry_on)

    # -- delay math --------------------------------------------------------
    def backoff_ceiling_s(self, attempt: int) -> float:
        """Upper bound of the sleep before ``attempt`` (attempt >= 2)."""
        if attempt < 2:
            return 0.0
        return min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 2)
        )

    def backoff_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """Concrete (possibly jittered) sleep before ``attempt``."""
        ceiling = self.backoff_ceiling_s(attempt)
        if self.jitter == "none" or ceiling <= 0.0:
            return ceiling
        return (rng or random).uniform(0.0, ceiling)

    # -- execution ---------------------------------------------------------
    def run(
        self,
        fn: Callable[[], Any],
        clock: Clock | None = None,
        rng: random.Random | None = None,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
    ) -> Any:
        """Call ``fn`` under this policy.

        Args:
            fn: zero-argument callable (bind arguments with a closure).
            clock: time source for deadline math and backoff sleeps.
            rng: jitter source (pass a seeded one for determinism).
            on_retry: observer invoked as ``(next_attempt, exc, delay_s)``
                before each backoff sleep.

        Raises:
            RetryExhaustedError: attempts or the deadline ran out; carries
                the final attempt's exception as ``last_error`` (and as
                ``__cause__``).
            BaseException: the first non-retryable exception, unwrapped.
        """
        clock = clock or WALL
        started = clock.now()
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not self.is_retryable(exc):
                    raise
                last_error = exc
            if attempt >= self.max_attempts:
                break
            delay = self.backoff_s(attempt + 1, rng=rng)
            if self.deadline_s is not None:
                remaining = self.deadline_s - (clock.now() - started)
                if remaining <= delay:
                    raise RetryExhaustedError(
                        f"deadline of {self.deadline_s}s exhausted after "
                        f"{attempt} attempt(s): {last_error}",
                        attempts=attempt,
                        last_error=last_error,
                    ) from last_error
            if on_retry is not None:
                on_retry(attempt + 1, last_error, delay)
            if delay > 0:
                clock.sleep(delay)
        raise RetryExhaustedError(
            f"all {self.max_attempts} attempt(s) failed: {last_error}",
            attempts=self.max_attempts,
            last_error=last_error,
        ) from last_error


#: Sensible default for control-channel RPC: a handful of quick attempts.
DEFAULT_RPC_POLICY = RetryPolicy()


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Numeric encoding of breaker states for the ``resilience.breaker.state``
#: gauge (dashboards plot numbers, not enum names).
BREAKER_STATE_VALUES: dict[BreakerState, int] = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


@dataclass
class _Window:
    """Sliding outcome window for failure-rate accounting."""

    size: int
    outcomes: deque = field(default_factory=deque)

    def record(self, ok: bool) -> None:
        self.outcomes.append(ok)
        while len(self.outcomes) > self.size:
            self.outcomes.popleft()

    @property
    def failures(self) -> int:
        return sum(1 for ok in self.outcomes if not ok)

    @property
    def failure_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.failures / len(self.outcomes)

    def clear(self) -> None:
        self.outcomes.clear()


class CircuitBreaker:
    """Classic closed → open → half-open breaker over a failure window.

    While CLOSED, outcomes are recorded into a sliding window; when the
    window holds at least ``min_calls`` outcomes with ``failure_rate``
    at or above the threshold (and at least ``failure_threshold``
    absolute failures), the breaker OPENs: calls fail fast with
    :class:`~repro.errors.CircuitOpenError` without touching the network,
    so a dead gateway is not hammered by every steering iteration. After
    ``cooldown_s`` on the breaker's clock it becomes HALF_OPEN and admits
    probe calls one at a time: a success closes it, a failure re-opens it
    for another cooldown.

    Thread-safe; share one breaker per remote endpoint.

    When a :class:`repro.obs.MetricsRegistry` is attached (``metrics=``
    plus an identifying ``name``), the breaker publishes a
    ``resilience.breaker.state`` gauge (see :data:`BREAKER_STATE_VALUES`)
    on every transition and counts opens/rejections.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        failure_rate: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        cooldown_s: float = 30.0,
        clock: Clock | None = None,
        metrics: Any = None,
        name: str = "default",
        on_open: Callable[["CircuitBreaker"], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be > 0")
        self.failure_threshold = failure_threshold
        self.failure_rate = failure_rate
        self.min_calls = max(1, min_calls)
        self.cooldown_s = cooldown_s
        self.clock = clock or WALL
        self._window = _Window(size=max(window, self.min_calls))
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._lock = threading.Lock()
        self.open_count = 0
        self.rejected_calls = 0
        self.name = name
        self.metrics = metrics
        #: invoked with the breaker after each trip to OPEN — the flight
        #: recorder's dump-on-breaker-open hook; called outside the
        #: breaker lock, exceptions swallowed
        self.on_open = on_open
        self._publish_state()

    def _publish_state(self) -> None:
        """Push the current state to the gauge (no-op when unmetered)."""
        if self.metrics is not None:
            self.metrics.gauge(
                "resilience.breaker.state",
                "0=closed 1=open 2=half_open",
            ).set(BREAKER_STATE_VALUES[self._state], breaker=self.name)

    # -- observability -----------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    # -- gate --------------------------------------------------------------
    def before_call(self) -> None:
        """Admission gate; raises :class:`CircuitOpenError` when tripped."""
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.OPEN:
                self.rejected_calls += 1
                self._count_rejection()
                remaining = self.cooldown_s - (self.clock.now() - self._opened_at)
                raise CircuitOpenError(
                    f"circuit open; retry in {max(0.0, remaining):.3f}s"
                )
            if self._state is BreakerState.HALF_OPEN:
                if self._probe_in_flight:
                    self.rejected_calls += 1
                    self._count_rejection()
                    raise CircuitOpenError("circuit half-open; probe in flight")
                self._probe_in_flight = True

    def _count_rejection(self) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "resilience.breaker.rejected_total", "calls failed fast by the breaker"
            ).inc(breaker=self.name)

    def record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._window.clear()
                self._probe_in_flight = False
                self._publish_state()
                return
            self._window.record(True)

    def record_failure(self) -> None:
        tripped = False
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                tripped = True
            else:
                self._window.record(False)
                if (
                    len(self._window.outcomes) >= self.min_calls
                    and self._window.failures >= self.failure_threshold
                    and self._window.failure_rate >= self.failure_rate
                ):
                    self._trip()
                    tripped = True
        # outside the (non-reentrant) lock: the callback may read breaker
        # state or dump a flight recording, neither of which may deadlock
        if tripped and self.on_open is not None:
            try:
                self.on_open(self)
            except Exception:  # noqa: BLE001 - hooks must not mask the failure
                pass

    # -- internals ---------------------------------------------------------
    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self.clock.now()
        self._probe_in_flight = False
        self._window.clear()
        self.open_count += 1
        if self.metrics is not None:
            self.metrics.counter(
                "resilience.breaker.opens_total", "breaker trips to OPEN"
            ).inc(breaker=self.name)
        self._publish_state()

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self.clock.now() - self._opened_at >= self.cooldown_s
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_in_flight = False
            self._publish_state()

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` through the breaker, recording the outcome."""
        self.before_call()
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
