"""repro: cross-facility orchestration of electrochemistry experiments.

A production-quality reproduction of "Cross-Facility Orchestration of
Electrochemistry Experiments and Computations" (Al-Najjar, Rao, Bridges,
Dai -- SC-W 2023): an instrument-computing ecosystem (ICE) where a remote
analysis host steers an electrochemistry workstation over a Pyro-style
control channel and receives measurements over a CIFS-style data channel.

Hardware is simulated (see DESIGN.md for the substitution map); the
orchestration software -- Python instrument wrappers, remote-object layer,
network/firewall model, file share, workflow engine, and the GPR+EOT
normality method -- is fully implemented.

Quickstart::

    import repro

    with repro.connect() as session:
        result = session.run_workflow()
        print(result.summary())
        print(session.metrics.format_table())

Subpackages: :mod:`repro.rpc` (remote objects), :mod:`repro.net` (ICE
network model), :mod:`repro.serialio`, :mod:`repro.instruments`
(J-Kem + SP200), :mod:`repro.chemistry` (CV physics),
:mod:`repro.datachannel`, :mod:`repro.ml`, :mod:`repro.analysis`,
:mod:`repro.facility` (assembly), :mod:`repro.core` (workflows).
"""

from repro.facility.ice import ElectrochemistryICE, ICEConfig
from repro.facility.workstation import (
    ElectrochemistryWorkstation,
    WorkstationConfig,
)
from repro.core.cv_workflow import (
    CVWorkflowResult,
    CVWorkflowSettings,
    build_cv_workflow,
    run_cv_workflow,
)
from repro.core.config import SessionConfig, TransportConfig
from repro.core.facade import Session, connect
from repro.errors import ReproError, code_table
from repro.obs import (
    BaselineStore,
    FlightRecorder,
    HealthEngine,
    HealthReport,
    MetricsRegistry,
    SessionStream,
    SpanProfiler,
    TelemetryBus,
    TelemetryEvent,
    Tracer,
)
from repro.core.campaign import (
    Campaign,
    campaign_journal_status,
    scan_rate_strategy,
    strategy_from_spec,
    window_centering_strategy,
)
from repro.durability import (
    CheckpointStore,
    DedupJournal,
    Journal,
    LeaseRegistry,
)
from repro.gateway import (
    Cell,
    Gateway,
    GatewayClient,
    GatewayServer,
    TenantSpec,
)
from repro.core.characterization_workflow import (
    CharacterizationSettings,
    CharacterizationResult,
    run_characterization_workflow,
)
from repro.chemistry.voltammogram import Voltammogram
from repro.ml.normality import NormalityClassifier

__version__ = "1.0.0"

__all__ = [
    "ElectrochemistryICE",
    "ICEConfig",
    "ElectrochemistryWorkstation",
    "WorkstationConfig",
    "CVWorkflowResult",
    "CVWorkflowSettings",
    "build_cv_workflow",
    "run_cv_workflow",
    "Session",
    "SessionConfig",
    "TransportConfig",
    "connect",
    "ReproError",
    "code_table",
    "MetricsRegistry",
    "Tracer",
    "TelemetryBus",
    "TelemetryEvent",
    "SessionStream",
    "SpanProfiler",
    "BaselineStore",
    "FlightRecorder",
    "HealthEngine",
    "HealthReport",
    "Campaign",
    "campaign_journal_status",
    "scan_rate_strategy",
    "strategy_from_spec",
    "window_centering_strategy",
    "Journal",
    "CheckpointStore",
    "DedupJournal",
    "LeaseRegistry",
    "Gateway",
    "GatewayClient",
    "GatewayServer",
    "TenantSpec",
    "Cell",
    "CharacterizationSettings",
    "CharacterizationResult",
    "run_characterization_workflow",
    "Voltammogram",
    "NormalityClassifier",
    "__version__",
]
