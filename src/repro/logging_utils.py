"""Structured event logging shared by instruments, RPC and workflows.

The paper's figures (5b, 6b) are essentially *event transcripts*: the
single-board computer echoing ``SYRINGEPUMP_RATE(1,5.000000) OK``, the Pyro
server logging each lifecycle step. :class:`EventLog` is the in-memory
equivalent: components append :class:`Event` records, tests assert on them,
and the figure benchmarks print them verbatim.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


_current_span_fn: Callable[[], Any] | None = None


def _current_span():
    # late import: logging_utils is imported by nearly everything, and a
    # module-level import of repro.obs here would be the one place a
    # cycle could form as obs grows
    global _current_span_fn
    if _current_span_fn is None:
        from repro.obs.trace import current_span

        _current_span_fn = current_span
    return _current_span_fn()


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence inside a component.

    Attributes:
        timestamp: seconds (wall or virtual, whatever the component uses).
        source: component identifier, e.g. ``"jkem.sbc"`` or ``"sp200.ch1"``.
        kind: short machine-readable category, e.g. ``"command"``.
        message: human-readable line, e.g. ``"SYRINGEPUMP_RATE(1,5.0) OK"``.
        data: structured payload for programmatic assertions.
    """

    timestamp: float
    source: str
    kind: str
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def format_line(self) -> str:
        """Render like a device console line."""
        return f"[{self.timestamp:10.4f}] {self.source:<18} {self.kind:<10} {self.message}"


class EventLog:
    """Thread-safe append-only event store with subscription support."""

    def __init__(self, clock_fn: Callable[[], float] | None = None):
        self._events: list[Event] = []
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[Event], None]] = []
        self._clock_fn = clock_fn or time.monotonic

    def emit(
        self,
        source: str,
        kind: str,
        message: str,
        **data: Any,
    ) -> Event:
        """Record an event and fan it out to subscribers.

        When the emitting code runs inside an active trace span (see
        :mod:`repro.obs.trace`), the event is also attached to that span,
        so existing transcripts gain trace context with no caller change.
        """
        event = Event(
            timestamp=self._clock_fn(),
            source=source,
            kind=kind,
            message=message,
            data=data,
        )
        with self._lock:
            self._events.append(event)
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event)
        span = _current_span()
        if span is not None:
            span.add_event(f"{source}:{kind}", message=message)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[], None]:
        """Register a listener; returns an unsubscribe function."""
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return unsubscribe

    def events(
        self,
        source: str | None = None,
        kind: str | None = None,
    ) -> list[Event]:
        """Snapshot of events, optionally filtered."""
        with self._lock:
            snapshot = list(self._events)
        if source is not None:
            snapshot = [e for e in snapshot if e.source == source]
        if kind is not None:
            snapshot = [e for e in snapshot if e.kind == kind]
        return snapshot

    def messages(self, source: str | None = None, kind: str | None = None) -> list[str]:
        """Just the message strings, for transcript-style assertions."""
        return [e.message for e in self.events(source=source, kind=kind)]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __bool__(self) -> bool:
        # an empty log must still be truthy: ``log or EventLog()`` would
        # otherwise silently replace a shared log with a private one
        return True

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events())

    def format_transcript(self) -> str:
        """Render the whole log as a console transcript."""
        return "\n".join(e.format_line() for e in self.events())
