"""URI handling and the name server.

URIs follow Pyro's shape: ``PYRO:ObjectId@host:port``. The name server is
itself an exposed object served by an ordinary daemon, mapping logical
names (``"acl.jkem"``) to URIs so workflow code does not hard-code ports.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

from repro.errors import NamingError
from repro.rpc.expose import expose

_URI_RE = re.compile(
    r"^PYRO:(?P<object_id>[A-Za-z0-9_.\-]+)@(?P<host>[A-Za-z0-9_.\-]+):(?P<port>\d{1,5})$"
)

NS_OBJECT_ID = "NameServer"


@dataclass(frozen=True)
class PyroURI:
    """Parsed remote-object address."""

    object_id: str
    host: str
    port: int

    def __str__(self) -> str:
        return f"PYRO:{self.object_id}@{self.host}:{self.port}"


def parse_uri(uri: str | PyroURI) -> PyroURI:
    """Parse a ``PYRO:ObjectId@host:port`` string.

    Raises:
        NamingError: the string does not match the URI grammar.
    """
    if isinstance(uri, PyroURI):
        return uri
    match = _URI_RE.match(uri)
    if not match:
        raise NamingError(f"invalid PYRO URI: {uri!r}")
    port = int(match.group("port"))
    if not 0 < port < 65536:
        raise NamingError(f"port out of range in URI: {uri!r}")
    return PyroURI(
        object_id=match.group("object_id"),
        host=match.group("host"),
        port=port,
    )


def make_uri(object_id: str, host: str, port: int) -> PyroURI:
    """Build and validate a URI from parts."""
    return parse_uri(f"PYRO:{object_id}@{host}:{port}")


@expose
class NameServer:
    """Logical-name → URI registry, served like any other remote object."""

    def __init__(self) -> None:
        self._entries: dict[str, str] = {}
        self._lock = threading.Lock()

    def register(self, name: str, uri: str, replace: bool = True) -> None:
        """Bind ``name`` to ``uri`` (validated)."""
        parse_uri(uri)  # reject garbage before it enters the registry
        with self._lock:
            if not replace and name in self._entries:
                raise NamingError(f"name already registered: {name!r}")
            self._entries[name] = uri

    def lookup(self, name: str) -> str:
        """Return the URI bound to ``name``."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise NamingError(f"unknown name: {name!r}") from None

    def unregister(self, name: str) -> None:
        """Remove a binding; missing names raise."""
        with self._lock:
            if name not in self._entries:
                raise NamingError(f"unknown name: {name!r}")
            del self._entries[name]

    def list(self, prefix: str = "") -> dict[str, str]:
        """All bindings whose name starts with ``prefix``."""
        with self._lock:
            return {
                name: uri
                for name, uri in self._entries.items()
                if name.startswith(prefix)
            }


def start_name_server(host: str = "127.0.0.1", port: int = 0):
    """Convenience: serve a fresh NameServer on a background daemon.

    Returns ``(daemon, uri)``. Caller owns the daemon's shutdown.
    """
    from repro.rpc.daemon import Daemon  # local import to avoid cycle

    daemon = Daemon(host=host, port=port)
    uri = daemon.register(NameServer(), object_id=NS_OBJECT_ID)
    daemon.start_background()
    return daemon, uri


def locate_name_server(host: str, port: int):
    """Return a proxy to the name server at ``host:port``."""
    from repro.rpc.proxy import Proxy  # local import to avoid cycle

    return Proxy(make_uri(NS_OBJECT_ID, host, port))
