"""The pre-reactor daemon: thread per connection, JSON-only wire.

:class:`ThreadedDaemon` preserves the daemon shape this repo shipped
before the selector reactor (PR 7) for two jobs:

- **benchmark baseline** — ``benchmarks/test_bench_rpc_throughput.py``
  measures the reactor's aggregate RPS and bulk bytes/s against this
  class, so the ≥2×/≥3× gates compare like-for-like dispatch semantics
  and only the serving core + wire format differ;
- **interop stand-in** — it behaves exactly like a peer that predates
  both the v2 binary frames and the HELLO handshake: a HELLO frame dies
  at decode ("unknown message type 9") with an ERROR followed by a
  dropped connection, and a v2 frame is rejected as an unsupported
  protocol version. The proxy's negotiation downgrade path is tested
  against this, not against a mock.

It shares the full dispatch core (verbs, ACL via ``@expose``, dedup,
lease fencing, HMAC auth) with :class:`~repro.rpc.daemon.Daemon` — only
the serving strategy and wire ceiling change.
"""

from __future__ import annotations

from repro.rpc.daemon import Daemon
from repro.rpc.protocol import VERSION


class ThreadedDaemon(Daemon):
    """Thread-per-connection daemon speaking only wire version 1."""

    _use_reactor = False  # blocking accept loop + reader thread per client
    _speaks_hello = False  # HELLO is an unknown frame type to this peer

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("max_wire_version", VERSION)
        super().__init__(*args, **kwargs)
