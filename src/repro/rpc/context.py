"""Per-dispatch request context available to service objects.

A daemon invokes handler methods with only the REQUEST's ``args`` and
``kwargs``; optional envelope fields (PROTOCOLS §1.1/§1.8) are consumed
by the dispatch layer itself. The multi-tenant gateway needs one of
them — the ``tenant`` id — *inside* the handler, so the daemon stashes
it in a :mod:`contextvars` variable for the duration of each dispatch.

Context variables are the right vehicle here because dispatch may run
on the reactor thread (``workers=0``) or on a worker-pool thread
(``workers>0``): either way the set/reset pair brackets exactly one
request on exactly one thread, and nested in-process calls (a handler
calling another service directly) inherit the outer request's tenant.
"""

from __future__ import annotations

from contextvars import ContextVar, Token

_current_tenant: ContextVar[str | None] = ContextVar(
    "repro_rpc_current_tenant", default=None
)


def current_tenant() -> str | None:
    """Tenant id of the REQUEST being dispatched, or None.

    Valid only while a daemon is invoking a handler on behalf of a
    request that carried the optional ``tenant`` field; anywhere else
    (including requests without the field) it returns None.
    """
    return _current_tenant.get()


def set_current_tenant(tenant: str | None) -> Token:
    """Bind the dispatch-scoped tenant; returns the reset token."""
    return _current_tenant.set(tenant)


def reset_current_tenant(token: Token) -> None:
    """Unbind a tenant bound by :func:`set_current_tenant`."""
    _current_tenant.reset(token)
