"""Pyro-style remote objects, built from scratch on TCP sockets.

The paper wraps instrument control APIs as Pyro server objects on the
control agent and calls them from a remote Jupyter notebook through Pyro
proxies (paper Fig 3). Pyro4 is not available offline, so this package
reimplements the subset the paper uses, with the same shape:

- :func:`expose` marks classes/methods callable from remote clients;
- :class:`Daemon` registers objects and serves them — ``daemon.register``
  returns a ``PYRO:ObjectId@host:port`` URI, ``daemon.request_loop()``
  serves until shut down (a background-thread variant is provided).
  Serving runs on a selector reactor for TCP listeners (one event-loop
  thread, bounded per-connection outboxes with backpressure) and falls
  back to a reader thread per connection for the simulated network;
  :class:`ThreadedDaemon` keeps the old thread-per-connection, JSON-only
  daemon alive as the benchmark baseline and mixed-version interop peer;
- :class:`Proxy` connects to a URI and forwards attribute calls; built
  with ``max_inflight > 1`` it pipelines requests (PROTOCOLS §1.4) and
  offers :meth:`Proxy.pipeline` for explicit bursts;
- :class:`ProxyPool` hands out independent connections to one endpoint;
- :class:`NameServer` maps logical names to URIs, itself served by a daemon.

Serialisation is JSON with explicit type tags (bytes, ndarray, tuple, set,
complex, non-string-keyed dicts); pickle is deliberately not used because
the control channel crosses facility trust boundaries. Peers that both
speak protocol v2 (negotiated via a HELLO handshake on connect) switch to
binary bulk framing — bulk ndarrays and bytes travel as raw blobs after a
JSON envelope instead of base64 (PROTOCOLS §1.7).

Example::

    @expose
    class Echo:
        def ping(self, x):
            return x

    daemon = Daemon(host="127.0.0.1")
    uri = daemon.register(Echo(), object_id="Echo")
    daemon.start_background()
    with Proxy(uri) as echo:
        assert echo.ping(41) == 41
    daemon.shutdown()
"""

from repro.rpc.context import current_tenant
from repro.rpc.expose import expose, is_exposed, exposed_methods, oneway
from repro.rpc.serialization import (
    serialize,
    deserialize,
    serialize_binary,
    deserialize_binary,
)
from repro.rpc.daemon import Daemon
from repro.rpc.threaded import ThreadedDaemon
from repro.rpc.proxy import PendingReply, Pipeline, Proxy, ProxyPool
from repro.rpc.naming import (
    NameServer,
    PyroURI,
    parse_uri,
    start_name_server,
    locate_name_server,
)

__all__ = [
    "current_tenant",
    "expose",
    "oneway",
    "is_exposed",
    "exposed_methods",
    "serialize",
    "deserialize",
    "serialize_binary",
    "deserialize_binary",
    "Daemon",
    "ThreadedDaemon",
    "Proxy",
    "ProxyPool",
    "Pipeline",
    "PendingReply",
    "NameServer",
    "PyroURI",
    "parse_uri",
    "start_name_server",
    "locate_name_server",
]
