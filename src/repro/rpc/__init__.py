"""Pyro-style remote objects, built from scratch on TCP sockets.

The paper wraps instrument control APIs as Pyro server objects on the
control agent and calls them from a remote Jupyter notebook through Pyro
proxies (paper Fig 3). Pyro4 is not available offline, so this package
reimplements the subset the paper uses, with the same shape:

- :func:`expose` marks classes/methods callable from remote clients;
- :class:`Daemon` registers objects and serves them — ``daemon.register``
  returns a ``PYRO:ObjectId@host:port`` URI, ``daemon.request_loop()``
  serves until shut down (a background-thread variant is provided);
- :class:`Proxy` connects to a URI and forwards attribute calls; built
  with ``max_inflight > 1`` it pipelines requests (PROTOCOLS §1.4) and
  offers :meth:`Proxy.pipeline` for explicit bursts;
- :class:`ProxyPool` hands out independent connections to one endpoint;
- :class:`NameServer` maps logical names to URIs, itself served by a daemon.

Serialisation is JSON with explicit type tags (bytes, ndarray, tuple, set,
complex, non-string-keyed dicts); pickle is deliberately not used because
the control channel crosses facility trust boundaries.

Example::

    @expose
    class Echo:
        def ping(self, x):
            return x

    daemon = Daemon(host="127.0.0.1")
    uri = daemon.register(Echo(), object_id="Echo")
    daemon.start_background()
    with Proxy(uri) as echo:
        assert echo.ping(41) == 41
    daemon.shutdown()
"""

from repro.rpc.expose import expose, is_exposed, exposed_methods, oneway
from repro.rpc.serialization import serialize, deserialize
from repro.rpc.daemon import Daemon
from repro.rpc.proxy import PendingReply, Pipeline, Proxy, ProxyPool
from repro.rpc.naming import (
    NameServer,
    PyroURI,
    parse_uri,
    start_name_server,
    locate_name_server,
)

__all__ = [
    "expose",
    "oneway",
    "is_exposed",
    "exposed_methods",
    "serialize",
    "deserialize",
    "Daemon",
    "Proxy",
    "ProxyPool",
    "Pipeline",
    "PendingReply",
    "NameServer",
    "PyroURI",
    "parse_uri",
    "start_name_server",
    "locate_name_server",
]
