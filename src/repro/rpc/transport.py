"""Transport abstraction under the RPC protocol.

Two implementations exist:

- real TCP (this module) for live cross-host operation and the integration
  tests/benchmarks;
- the simulated ICE network (:mod:`repro.net.simtransport`) which routes the
  same frames through the modelled topology, charging latency/bandwidth and
  enforcing firewall rules.

Both expose the same minimal surface — :class:`Listener` producing
:class:`Connection` objects with ``sendall`` / ``recv_exactly`` — so the
daemon and proxy are transport-agnostic.
"""

from __future__ import annotations

import socket

from repro.errors import (
    CallTimeoutError,
    CommunicationError,
    ConnectionClosedError,
)


class Connection:
    """Bidirectional ordered byte stream."""

    def sendall(self, data: bytes) -> None:
        raise NotImplementedError

    def recv_exactly(self, size: int) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def settimeout(self, timeout: float | None) -> None:
        """Set the blocking-read deadline; None means block forever."""
        raise NotImplementedError

    @property
    def peer(self) -> str:
        """Human-readable peer address for logs."""
        return "?"

    def fileno(self) -> int:
        """OS-level descriptor, when the transport has one.

        Raises :class:`OSError` for purely in-process transports (the
        simulated network's byte pipes) — the daemon probes this to
        decide between the selector reactor and threaded serving.
        """
        raise OSError("transport has no OS file descriptor")


class Listener:
    """Accepts inbound connections on a bound address."""

    def accept(self) -> Connection:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the listener is bound to."""
        raise NotImplementedError


# --------------------------------------------------------------------------
# TCP implementation
# --------------------------------------------------------------------------
class TCPConnection(Connection):
    """A connected TCP socket with framed-read support."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            self._peer = "%s:%d" % self._sock.getpeername()[:2]
        except OSError:
            self._peer = "?"

    def sendall(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise ConnectionClosedError(f"send to {self._peer} failed: {exc}") from exc

    def recv_exactly(self, size: int) -> bytes:
        chunks: list[bytes] = []
        remaining = size
        while remaining > 0:
            try:
                chunk = self._sock.recv(min(remaining, 65536))
            except socket.timeout as exc:
                raise CallTimeoutError(
                    f"read from {self._peer} timed out with {remaining} bytes pending"
                ) from exc
            except OSError as exc:
                raise ConnectionClosedError(
                    f"read from {self._peer} failed: {exc}"
                ) from exc
            if not chunk:
                raise ConnectionClosedError(
                    f"{self._peer} closed the connection with {remaining} bytes pending"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    @property
    def peer(self) -> str:
        return self._peer

    # -- non-blocking surface for the reactor ------------------------------
    def fileno(self) -> int:
        return self._sock.fileno()

    def setblocking(self, flag: bool) -> None:
        self._sock.setblocking(flag)

    def try_recv(self, size: int) -> bytes | None:
        """Non-blocking read: bytes, or None when no data is ready.

        Raises:
            ConnectionClosedError: the peer closed or the socket died.
        """
        try:
            chunk = self._sock.recv(size)
        except (BlockingIOError, InterruptedError):
            return None
        except OSError as exc:
            raise ConnectionClosedError(
                f"read from {self._peer} failed: {exc}"
            ) from exc
        if not chunk:
            raise ConnectionClosedError(f"{self._peer} closed the connection")
        return chunk

    def try_send(self, data: bytes | memoryview) -> int:
        """Non-blocking write: bytes accepted (0 when the buffer is full).

        Raises:
            ConnectionClosedError: the peer closed or the socket died.
        """
        try:
            return self._sock.send(data)
        except (BlockingIOError, InterruptedError):
            return 0
        except OSError as exc:
            raise ConnectionClosedError(
                f"send to {self._peer} failed: {exc}"
            ) from exc


class TCPListener(Listener):
    """Bound, listening TCP socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 32):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            self._sock.close()
            raise CommunicationError(f"cannot bind {host}:{port}: {exc}") from exc
        self._sock.listen(backlog)
        self._address = self._sock.getsockname()[:2]

    def accept(self) -> TCPConnection:
        try:
            sock, _addr = self._sock.accept()
        except OSError as exc:
            raise ConnectionClosedError(f"listener closed: {exc}") from exc
        return TCPConnection(sock)

    def try_accept(self) -> TCPConnection | None:
        """Non-blocking accept: a connection, or None when none is pending."""
        try:
            sock, _addr = self._sock.accept()
        except (BlockingIOError, InterruptedError):
            return None
        except OSError as exc:
            raise ConnectionClosedError(f"listener closed: {exc}") from exc
        return TCPConnection(sock)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def setblocking(self, flag: bool) -> None:
        self._sock.setblocking(flag)

    @property
    def address(self) -> tuple[str, int]:
        return self._address


def connect_tcp(host: str, port: int, timeout: float | None = 5.0) -> TCPConnection:
    """Open a client connection to ``host:port``."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except socket.timeout as exc:
        raise CallTimeoutError(
            f"connect to {host}:{port} timed out after {timeout}s"
        ) from exc
    except OSError as exc:
        raise CommunicationError(f"cannot connect to {host}:{port}: {exc}") from exc
    sock.settimeout(None)
    return TCPConnection(sock)
