"""Wire serialisation: JSON with explicit type tags, no pickle.

The control channel crosses facility boundaries, so the format must be safe
to deserialise from an untrusted peer: only plain data types are
reconstructed, never arbitrary classes. NumPy arrays — the measurement
payloads — travel as base64 raw buffers with dtype and shape, which keeps
a 10k-point voltammogram to one contiguous copy each way.

Supported round-trip types:

- JSON natives: None, bool, int, float (including nan/inf), str, list, dict
  with string keys;
- tagged extensions: bytes, bytearray, tuple, set, frozenset, complex,
  numpy scalars and ndarrays (C-contiguous copy taken on encode), and dicts
  with non-string keys.

Anything else raises :class:`SerializationError` on encode; unknown tags
raise it on decode.
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

from repro.errors import SerializationError

_TAG = "__repro_type__"

# dtypes we are willing to reconstruct; object/void dtypes would be a
# deserialisation gadget, so they are rejected on both sides.
_SAFE_DTYPE_KINDS = frozenset("biufc")  # bool, int, uint, float, complex


def _encode(obj: Any, depth: int = 0) -> Any:
    """Recursively convert ``obj`` into JSON-compatible structures."""
    if depth > 64:
        raise SerializationError("value nesting exceeds maximum depth of 64")
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json emits bare NaN/Infinity tokens which are not strict JSON;
        # tag them so decode is symmetric and the payload stays standard.
        if obj != obj or obj in (float("inf"), float("-inf")):
            return {_TAG: "float", "repr": repr(obj)}
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return {_TAG: "bytes", "data": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [_encode(v, depth + 1) for v in obj]}
    if isinstance(obj, (set, frozenset)):
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        return {_TAG: tag, "items": [_encode(v, depth + 1) for v in obj]}
    if isinstance(obj, complex):
        return {_TAG: "complex", "real": obj.real, "imag": obj.imag}
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind not in _SAFE_DTYPE_KINDS:
            raise SerializationError(
                f"refusing to serialise ndarray of dtype {obj.dtype} "
                f"(kind {obj.dtype.kind!r}); only numeric dtypes travel"
            )
        contiguous = np.ascontiguousarray(obj)
        return {
            _TAG: "ndarray",
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
            "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
        }
    if isinstance(obj, np.generic):
        return _encode(obj.item(), depth)
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj):
            if _TAG in obj:
                # A user dict that collides with our tag key must be escaped
                # or it would decode as an extension type.
                return {
                    _TAG: "dict",
                    "items": [
                        [_encode(k, depth + 1), _encode(v, depth + 1)]
                        for k, v in obj.items()
                    ],
                }
            return {k: _encode(v, depth + 1) for k, v in obj.items()}
        return {
            _TAG: "dict",
            "items": [
                [_encode(k, depth + 1), _encode(v, depth + 1)]
                for k, v in obj.items()
            ],
        }
    if isinstance(obj, list):
        return [_encode(v, depth + 1) for v in obj]
    raise SerializationError(
        f"type {type(obj).__name__} is not serialisable over the control channel"
    )


def _decode(obj: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag is None:
            return {k: _decode(v) for k, v in obj.items()}
        if tag == "float":
            value = obj["repr"]
            if value not in ("nan", "inf", "-inf"):
                raise SerializationError(f"bad special float repr: {value!r}")
            return float(value)
        if tag == "bytes":
            return base64.b64decode(obj["data"].encode("ascii"))
        if tag == "tuple":
            return tuple(_decode(v) for v in obj["items"])
        if tag == "set":
            return set(_decode(v) for v in obj["items"])
        if tag == "frozenset":
            return frozenset(_decode(v) for v in obj["items"])
        if tag == "complex":
            return complex(obj["real"], obj["imag"])
        if tag == "dict":
            return {_decode(k): _decode(v) for k, v in obj["items"]}
        if tag == "ndarray":
            dtype = np.dtype(obj["dtype"])
            if dtype.kind not in _SAFE_DTYPE_KINDS:
                raise SerializationError(
                    f"refusing to deserialise ndarray dtype {dtype}"
                )
            raw = base64.b64decode(obj["data"].encode("ascii"))
            shape = tuple(int(n) for n in obj["shape"])
            expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
            count = int(np.prod(shape, dtype=np.int64))
            if len(raw) != dtype.itemsize * count:
                raise SerializationError(
                    f"ndarray payload length {len(raw)} does not match "
                    f"shape {shape} dtype {dtype} (expected {expected})"
                )
            array = np.frombuffer(raw, dtype=dtype).reshape(shape)
            return array.copy()  # writable, decoupled from the buffer
        raise SerializationError(f"unknown serialisation tag: {tag!r}")
    return obj


def serialize(obj: Any) -> bytes:
    """Encode a value to wire bytes (UTF-8 JSON)."""
    try:
        return json.dumps(
            _encode(obj), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except SerializationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot serialise value: {exc}") from exc


def deserialize(data: bytes) -> Any:
    """Decode wire bytes back to a value.

    Raises:
        SerializationError: payload is not valid UTF-8 JSON or carries an
            unknown/malformed type tag.
    """
    try:
        parsed = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot parse wire payload: {exc}") from exc
    return _decode(parsed)
