"""Wire serialisation: JSON with explicit type tags, no pickle.

The control channel crosses facility boundaries, so the format must be safe
to deserialise from an untrusted peer: only plain data types are
reconstructed, never arbitrary classes. NumPy arrays — the measurement
payloads — travel as base64 raw buffers with dtype and shape, which keeps
a 10k-point voltammogram to one contiguous copy each way.

Supported round-trip types:

- JSON natives: None, bool, int, float (including nan/inf), str, list, dict
  with string keys;
- tagged extensions: bytes, bytearray, tuple, set, frozenset, complex,
  numpy scalars and ndarrays (C-contiguous copy taken on encode), and dicts
  with non-string keys.

Anything else raises :class:`SerializationError` on encode; unknown tags
raise it on decode.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any

import numpy as np

from repro.errors import SerializationError

_TAG = "__repro_type__"

# dtypes we are willing to reconstruct; object/void dtypes would be a
# deserialisation gadget, so they are rejected on both sides.
_SAFE_DTYPE_KINDS = frozenset("biufc")  # bool, int, uint, float, complex


def _encode(obj: Any, depth: int = 0) -> Any:
    """Recursively convert ``obj`` into JSON-compatible structures."""
    if depth > 64:
        raise SerializationError("value nesting exceeds maximum depth of 64")
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json emits bare NaN/Infinity tokens which are not strict JSON;
        # tag them so decode is symmetric and the payload stays standard.
        if obj != obj or obj in (float("inf"), float("-inf")):
            return {_TAG: "float", "repr": repr(obj)}
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return {_TAG: "bytes", "data": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [_encode(v, depth + 1) for v in obj]}
    if isinstance(obj, (set, frozenset)):
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        return {_TAG: tag, "items": [_encode(v, depth + 1) for v in obj]}
    if isinstance(obj, complex):
        return {_TAG: "complex", "real": obj.real, "imag": obj.imag}
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind not in _SAFE_DTYPE_KINDS:
            raise SerializationError(
                f"refusing to serialise ndarray of dtype {obj.dtype} "
                f"(kind {obj.dtype.kind!r}); only numeric dtypes travel"
            )
        contiguous = np.ascontiguousarray(obj)
        return {
            _TAG: "ndarray",
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
            "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
        }
    if isinstance(obj, np.generic):
        return _encode(obj.item(), depth)
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj):
            if _TAG in obj:
                # A user dict that collides with our tag key must be escaped
                # or it would decode as an extension type.
                return {
                    _TAG: "dict",
                    "items": [
                        [_encode(k, depth + 1), _encode(v, depth + 1)]
                        for k, v in obj.items()
                    ],
                }
            return {k: _encode(v, depth + 1) for k, v in obj.items()}
        return {
            _TAG: "dict",
            "items": [
                [_encode(k, depth + 1), _encode(v, depth + 1)]
                for k, v in obj.items()
            ],
        }
    if isinstance(obj, list):
        return [_encode(v, depth + 1) for v in obj]
    raise SerializationError(
        f"type {type(obj).__name__} is not serialisable over the control channel"
    )


def _decode(obj: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag is None:
            return {k: _decode(v) for k, v in obj.items()}
        if tag == "float":
            value = obj["repr"]
            if value not in ("nan", "inf", "-inf"):
                raise SerializationError(f"bad special float repr: {value!r}")
            return float(value)
        if tag == "bytes":
            return base64.b64decode(obj["data"].encode("ascii"))
        if tag == "tuple":
            return tuple(_decode(v) for v in obj["items"])
        if tag == "set":
            return set(_decode(v) for v in obj["items"])
        if tag == "frozenset":
            return frozenset(_decode(v) for v in obj["items"])
        if tag == "complex":
            return complex(obj["real"], obj["imag"])
        if tag == "dict":
            return {_decode(k): _decode(v) for k, v in obj["items"]}
        if tag == "ndarray":
            dtype = np.dtype(obj["dtype"])
            if dtype.kind not in _SAFE_DTYPE_KINDS:
                raise SerializationError(
                    f"refusing to deserialise ndarray dtype {dtype}"
                )
            raw = base64.b64decode(obj["data"].encode("ascii"))
            shape = tuple(int(n) for n in obj["shape"])
            expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
            count = int(np.prod(shape, dtype=np.int64))
            if len(raw) != dtype.itemsize * count:
                raise SerializationError(
                    f"ndarray payload length {len(raw)} does not match "
                    f"shape {shape} dtype {dtype} (expected {expected})"
                )
            array = np.frombuffer(raw, dtype=dtype).reshape(shape)
            return array.copy()  # writable, decoupled from the buffer
        raise SerializationError(f"unknown serialisation tag: {tag!r}")
    return obj


# --------------------------------------------------------------------------
# Binary bulk framing (wire protocol v2, PROTOCOLS §1.7)
# --------------------------------------------------------------------------
#
# The JSON path above base64-encodes every measurement array — a 10k-point
# voltammogram pays an encode, a 33% inflation, and a decode per hop. The
# binary payload keeps the structural envelope as JSON but hoists every
# bulk value (ndarray, bytes) out into raw blobs appended after it:
#
#     offset  size  field
#     0       4     envelope length E (big-endian u32)
#     4       E     envelope: UTF-8 JSON {"body": ..., "blobs": [len, ...]}
#     4+E     *     blob 0, blob 1, ... (raw buffers, concatenated)
#
# Inside the envelope a hoisted value is a placeholder tag:
#     {"__repro_type__": "blob", "i": 0, "kind": "bytes"}
#     {"__repro_type__": "blob", "i": 1, "kind": "ndarray",
#      "dtype": "<f8", "shape": [10000]}
#
# Encode gathers memoryviews (no base64, no copy until the final frame
# assembly); decode reconstructs ndarrays straight off the received
# buffer with one memcpy for writability. Structural damage — envelope
# or blob table overrunning the payload, negative lengths, unknown blob
# index — raises :class:`~repro.errors.FrameCorruptError` so a torn
# binary frame surfaces as a stable ``RPC_FRAME_CORRUPT`` error instead
# of a JSON parse failure.

_ENVELOPE_LEN = struct.Struct("!I")


def _encode_hoisting(obj: Any, blobs: list[Any], depth: int = 0) -> Any:
    """Like :func:`_encode` but hoists bulk values into ``blobs``."""
    if depth > 64:
        raise SerializationError("value nesting exceeds maximum depth of 64")
    if isinstance(obj, (bytes, bytearray, memoryview)):
        blobs.append(bytes(obj) if isinstance(obj, memoryview) else obj)
        return {_TAG: "blob", "i": len(blobs) - 1, "kind": "bytes"}
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind not in _SAFE_DTYPE_KINDS:
            raise SerializationError(
                f"refusing to serialise ndarray of dtype {obj.dtype} "
                f"(kind {obj.dtype.kind!r}); only numeric dtypes travel"
            )
        contiguous = np.ascontiguousarray(obj)
        blobs.append(contiguous)
        return {
            _TAG: "blob",
            "i": len(blobs) - 1,
            "kind": "ndarray",
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
        }
    if isinstance(obj, tuple):
        return {
            _TAG: "tuple",
            "items": [_encode_hoisting(v, blobs, depth + 1) for v in obj],
        }
    if isinstance(obj, (set, frozenset)):
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        return {
            _TAG: tag,
            "items": [_encode_hoisting(v, blobs, depth + 1) for v in obj],
        }
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and _TAG not in obj:
            return {k: _encode_hoisting(v, blobs, depth + 1) for k, v in obj.items()}
        return {
            _TAG: "dict",
            "items": [
                [_encode_hoisting(k, blobs, depth + 1),
                 _encode_hoisting(v, blobs, depth + 1)]
                for k, v in obj.items()
            ],
        }
    if isinstance(obj, list):
        return [_encode_hoisting(v, blobs, depth + 1) for v in obj]
    # scalars, special floats, complex, numpy scalars: the JSON encoder
    # already handles them without bulk cost
    return _encode(obj, depth)


def _decode_with_blobs(obj: Any, blobs: list[memoryview]) -> Any:
    """Inverse of :func:`_encode_hoisting`."""
    if isinstance(obj, list):
        return [_decode_with_blobs(v, blobs) for v in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag == "blob":
            from repro.errors import FrameCorruptError

            index = obj.get("i")
            if not isinstance(index, int) or not 0 <= index < len(blobs):
                raise FrameCorruptError(
                    f"binary envelope references blob {index!r} "
                    f"but the frame carries {len(blobs)}"
                )
            raw = blobs[index]
            kind = obj.get("kind")
            if kind == "bytes":
                return bytes(raw)
            if kind == "ndarray":
                dtype = np.dtype(obj["dtype"])
                if dtype.kind not in _SAFE_DTYPE_KINDS:
                    raise SerializationError(
                        f"refusing to deserialise ndarray dtype {dtype}"
                    )
                shape = tuple(int(n) for n in obj["shape"])
                count = int(np.prod(shape, dtype=np.int64))
                if len(raw) != dtype.itemsize * count:
                    raise FrameCorruptError(
                        f"blob {index} length {len(raw)} does not match "
                        f"ndarray shape {shape} dtype {dtype}"
                    )
                # frombuffer is zero-copy off the frame; one memcpy buys
                # writability and decouples the value from the buffer
                return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
            raise FrameCorruptError(f"unknown blob kind {kind!r}")
        if tag == "tuple":
            return tuple(_decode_with_blobs(v, blobs) for v in obj["items"])
        if tag == "set":
            return set(_decode_with_blobs(v, blobs) for v in obj["items"])
        if tag == "frozenset":
            return frozenset(_decode_with_blobs(v, blobs) for v in obj["items"])
        if tag == "dict":
            return {
                _decode_with_blobs(k, blobs): _decode_with_blobs(v, blobs)
                for k, v in obj["items"]
            }
        if tag is None:
            return {k: _decode_with_blobs(v, blobs) for k, v in obj.items()}
        return _decode(obj)
    return _decode(obj)


def serialize_binary(obj: Any) -> list[bytes]:
    """Encode a value into binary-payload parts (envelope + raw blobs).

    Returns the frame payload as a list of buffers so the caller can
    assemble header + envelope + blobs with a single join — bulk data
    is never base64'd and is copied at most once on its way to the
    wire.
    """
    blobs: list[Any] = []
    try:
        envelope_body = _encode_hoisting(obj, blobs)
        envelope = json.dumps(
            {
                "body": envelope_body,
                "blobs": [
                    b.nbytes if isinstance(b, np.ndarray) else len(b)
                    for b in blobs
                ],
            },
            separators=(",", ":"),
            allow_nan=False,
        ).encode("utf-8")
    except SerializationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot serialise value: {exc}") from exc
    parts: list[bytes] = [_ENVELOPE_LEN.pack(len(envelope)), envelope]
    for blob in blobs:
        if isinstance(blob, np.ndarray):
            # cast to a flat byte view so len(part) is nbytes, not the
            # leading-dimension element count
            parts.append(blob.data.cast("B") if blob.nbytes else b"")
        else:
            parts.append(bytes(blob))
    return parts


def deserialize_binary(data: bytes) -> Any:
    """Decode a binary payload produced by :func:`serialize_binary`.

    Raises:
        FrameCorruptError: the envelope or blob table overruns the
            payload (torn frame), or a blob reference is invalid.
        SerializationError: the envelope is not valid JSON or carries a
            malformed type tag.
    """
    from repro.errors import FrameCorruptError

    view = memoryview(data)
    if len(view) < _ENVELOPE_LEN.size:
        raise FrameCorruptError(
            f"binary payload of {len(view)} bytes is shorter than its "
            "envelope-length prefix"
        )
    (envelope_len,) = _ENVELOPE_LEN.unpack_from(view, 0)
    end = _ENVELOPE_LEN.size + envelope_len
    if end > len(view):
        raise FrameCorruptError(
            f"binary envelope of {envelope_len} bytes overruns the "
            f"{len(view)}-byte payload (torn frame)"
        )
    try:
        envelope = json.loads(bytes(view[_ENVELOPE_LEN.size:end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot parse binary envelope: {exc}") from exc
    if not isinstance(envelope, dict) or "body" not in envelope:
        raise FrameCorruptError("binary envelope missing its body")
    lengths = envelope.get("blobs", [])
    if not isinstance(lengths, list) or not all(
        isinstance(n, int) and n >= 0 for n in lengths
    ):
        raise FrameCorruptError(f"malformed blob table: {lengths!r}")
    blobs: list[memoryview] = []
    offset = end
    for length in lengths:
        if offset + length > len(view):
            raise FrameCorruptError(
                f"blob table declares {sum(lengths)} bytes but only "
                f"{len(view) - end} follow the envelope (torn frame)"
            )
        blobs.append(view[offset:offset + length])
        offset += length
    if offset != len(view):
        raise FrameCorruptError(
            f"{len(view) - offset} trailing bytes after the last blob"
        )
    return _decode_with_blobs(envelope["body"], blobs)


def serialize(obj: Any) -> bytes:
    """Encode a value to wire bytes (UTF-8 JSON)."""
    try:
        return json.dumps(
            _encode(obj), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except SerializationError:
        raise
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot serialise value: {exc}") from exc


def deserialize(data: bytes) -> Any:
    """Decode wire bytes back to a value.

    Raises:
        SerializationError: payload is not valid UTF-8 JSON or carries an
            unknown/malformed type tag.
    """
    try:
        parsed = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot parse wire payload: {exc}") from exc
    return _decode(parsed)
