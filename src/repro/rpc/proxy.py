"""The client side of the remote-object layer (paper Fig 3, client side).

A :class:`Proxy` dials the daemon named by a ``PYRO:`` URI and forwards
attribute calls::

    with Proxy("PYRO:ACL_Workstation@10.2.11.161:9690") as ws:
        ws.call_Initialize_SP200_API(params)

One proxy holds one connection; calls on it are serialised by a lock (same
contract as Pyro4 — share across threads or clone per thread). Remote
exceptions re-raise locally: known :mod:`repro.errors` classes keep their
type, anything else becomes :class:`RemoteInvocationError` carrying the
remote traceback.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import repro.errors as _errors_module
from repro.errors import (
    CommunicationError,
    ProtocolError,
    RemoteInvocationError,
    ReproError,
)
from repro.rpc.naming import PyroURI, parse_uri
from repro.rpc.protocol import (
    FLAG_ONEWAY,
    Message,
    MessageType,
    recv_message,
    request_body,
    send_message,
)
from repro.rpc.transport import Connection, connect_tcp


def _rebuild_remote_error(body: dict) -> Exception:
    """Map an ERROR frame body to the most faithful local exception."""
    error_type = body.get("error_type", "Exception")
    message = body.get("message", "")
    traceback_text = body.get("traceback", "")
    remote_code = body.get("code", "")
    candidate = getattr(_errors_module, error_type, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, ReproError)
        and candidate.__init__ in (ReproError.__init__, Exception.__init__)
    ):
        return candidate(message)
    return RemoteInvocationError(
        f"remote call raised {error_type}: {message}",
        remote_type=error_type,
        remote_traceback=traceback_text,
        remote_code=remote_code if isinstance(remote_code, str) else "",
    )


class _RemoteMethod:
    """Callable bound to one remote method name."""

    def __init__(self, proxy: "Proxy", name: str):
        self._proxy = proxy
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._proxy._call(self._name, args, kwargs)

    def oneway(self, *args: Any, **kwargs: Any) -> None:
        """Fire-and-forget variant: no reply is awaited."""
        self._proxy._call(self._name, args, kwargs, oneway=True)


class Proxy:
    """Client handle to one remote object.

    Args:
        uri: ``PYRO:ObjectId@host:port`` string or :class:`PyroURI`.
        timeout: per-call deadline in seconds (None = block).
        connection_factory: override how the byte stream is opened — the
            simulated network passes its own dialer here.
        secret: shared secret for daemons that require the HMAC
            challenge-response handshake.
        tracer: optional :class:`repro.obs.Tracer`; when set, every call
            runs inside an ``rpc.call.<method>`` span and its context is
            carried in the REQUEST ``trace`` field so the daemon's
            dispatch span parents under it. None = zero overhead.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            per-call counters, latency histograms and byte counts.
    """

    def __init__(
        self,
        uri: str | PyroURI,
        timeout: float | None = 10.0,
        connection_factory: Callable[[str, int], Connection] | None = None,
        secret: bytes | None = None,
        tracer: Any = None,
        metrics: Any = None,
    ):
        self._uri = parse_uri(uri)
        self._timeout = timeout
        self._secret = secret
        self._connect_fn = connection_factory or (
            lambda host, port: connect_tcp(host, port, timeout=timeout)
        )
        self._conn: Connection | None = None
        self._seq = 0
        self._lock = threading.RLock()
        self._metadata: dict[str, Any] | None = None
        self.tracer = tracer
        self.metrics = metrics

    # -- connection management ----------------------------------------------
    @property
    def uri(self) -> PyroURI:
        return self._uri

    @property
    def connected(self) -> bool:
        return self._conn is not None

    def _ensure_connected(self) -> Connection:
        if self._conn is None:
            conn = self._connect_fn(self._uri.host, self._uri.port)
            conn.settimeout(self._timeout)
            if self._secret is not None:
                self._answer_challenge(conn)
            self._conn = conn
        return self._conn

    def _answer_challenge(self, conn: Connection) -> None:
        """Complete the daemon's HMAC handshake before first use."""
        import hashlib
        import hmac

        from repro.errors import AuthenticationError

        challenge = recv_message(conn)
        if challenge.msg_type is not MessageType.CHALLENGE or not isinstance(
            challenge.body, dict
        ):
            conn.close()
            raise AuthenticationError(
                "server did not issue an authentication challenge "
                "(secret configured on an unauthenticated daemon?)"
            )
        nonce = bytes.fromhex(challenge.body.get("nonce", ""))
        digest = hmac.new(self._secret or b"", nonce, hashlib.sha256).hexdigest()
        send_message(
            conn, Message(MessageType.AUTH, challenge.seq, {"hmac": digest})
        )
        reply = recv_message(conn)
        if reply.msg_type is MessageType.ERROR:
            conn.close()
            raise AuthenticationError(
                reply.body.get("message", "authentication rejected")
                if isinstance(reply.body, dict)
                else "authentication rejected"
            )

    def close(self) -> None:
        """Drop the connection; the proxy reconnects lazily if reused."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
            self._metadata = None

    def __enter__(self) -> "Proxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- calls -----------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) & 0xFFFFFFFF
        return self._seq

    def _roundtrip(self, msg: Message) -> Message:
        """Send one frame and read its correlated reply."""
        conn = self._ensure_connected()
        try:
            send_message(conn, msg)
            if msg.oneway:
                return msg
            reply = recv_message(conn)
        except (CommunicationError, ProtocolError):
            # connection state is undefined after a failed exchange
            self.close()
            raise
        except _errors_module.ConnectionClosedError:
            self.close()
            raise
        if reply.seq != msg.seq:
            self.close()
            raise ProtocolError(
                f"reply sequence {reply.seq} does not match request {msg.seq}"
            )
        return reply

    def _call(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        oneway: bool = False,
        idempotency_key: str | None = None,
    ) -> Any:
        if self.tracer is None and self.metrics is None:
            return self._call_inner(method, args, kwargs, oneway, idempotency_key)
        return self._call_observed(method, args, kwargs, oneway, idempotency_key)

    def _call_inner(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        oneway: bool,
        idempotency_key: str | None,
        trace_context: dict[str, str] | None = None,
    ) -> Any:
        with self._lock:
            body = request_body(
                self._uri.object_id,
                method,
                args,
                kwargs,
                idempotency_key=idempotency_key,
                trace_context=trace_context,
            )
            flags = FLAG_ONEWAY if oneway else 0
            msg = Message(MessageType.REQUEST, self._next_seq(), body, flags=flags)
            reply = self._roundtrip(msg)
            if oneway:
                return None
        if reply.msg_type == MessageType.ERROR:
            raise _rebuild_remote_error(reply.body)
        if reply.msg_type != MessageType.RESPONSE:
            raise ProtocolError(f"unexpected reply type {reply.msg_type}")
        if isinstance(reply.body, dict) and "result" in reply.body:
            return reply.body["result"]
        return reply.body

    def _call_observed(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        oneway: bool,
        idempotency_key: str | None,
    ) -> Any:
        """Traced/metered variant of :meth:`_call_inner` (observability on)."""
        tracer, metrics = self.tracer, self.metrics
        span = (
            tracer.start_as_current_span(
                f"rpc.call.{method}",
                attributes={"rpc.method": method, "rpc.object": self._uri.object_id},
            )
            if tracer is not None
            else None
        )
        trace_context = span.context.to_wire() if span is not None else None
        clock = tracer.clock if tracer is not None else None
        start = clock.now() if clock is not None else None
        conn = self._conn
        sent0 = getattr(conn, "bytes_sent", None) if conn is not None else None
        recv0 = getattr(conn, "bytes_received", None) if conn is not None else None
        status = "ok"
        try:
            return self._call_inner(
                method, args, kwargs, oneway, idempotency_key, trace_context
            )
        except Exception as exc:
            status = "error"
            if span is not None:
                span.record_exception(exc)
                span.end("ERROR")
                span = None
            raise
        finally:
            if metrics is not None:
                metrics.counter(
                    "rpc.client.calls_total", "RPC calls issued by this client"
                ).inc(method=method, status=status)
                if start is not None:
                    metrics.histogram(
                        "rpc.client.call_latency_s", "client-observed RPC latency"
                    ).observe(clock.now() - start, method=method)
                conn = self._conn
                if conn is not None and sent0 is not None:
                    sent1 = getattr(conn, "bytes_sent", None)
                    recv1 = getattr(conn, "bytes_received", None)
                    if sent1 is not None and sent1 >= sent0:
                        metrics.counter(
                            "rpc.client.bytes_sent_total", "request bytes on the wire"
                        ).inc(sent1 - sent0, method=method)
                    if recv1 is not None and recv0 is not None and recv1 >= recv0:
                        metrics.counter(
                            "rpc.client.bytes_received_total",
                            "response bytes on the wire",
                        ).inc(recv1 - recv0, method=method)
            if span is not None:
                span.end()

    def _pyro_ping(self) -> None:
        """Liveness probe (task A of the paper's workflow uses this).

        Named with the underscore prefix (Pyro4's ``_pyroBind`` convention)
        so it can never shadow a remote method called ``ping``.
        """
        with self._lock:
            reply = self._roundtrip(Message(MessageType.PING, self._next_seq(), None))
        if reply.msg_type != MessageType.PONG:
            raise ProtocolError(f"expected PONG, got {reply.msg_type}")

    def _pyro_metadata(self) -> dict[str, Any]:
        """Exposed-method metadata from the daemon (cached)."""
        with self._lock:
            if self._metadata is None:
                reply = self._roundtrip(
                    Message(
                        MessageType.METADATA,
                        self._next_seq(),
                        {"object": self._uri.object_id},
                    )
                )
                if reply.msg_type == MessageType.ERROR:
                    raise _rebuild_remote_error(reply.body)
                self._metadata = reply.body
            return self._metadata

    def __getattr__(self, name: str) -> _RemoteMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self, name)
