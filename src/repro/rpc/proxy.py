"""The client side of the remote-object layer (paper Fig 3, client side).

A :class:`Proxy` dials the daemon named by a ``PYRO:`` URI and forwards
attribute calls::

    with Proxy("PYRO:ACL_Workstation@10.2.11.161:9690") as ws:
        ws.call_Initialize_SP200_API(params)

One proxy holds one connection; by default calls on it are serialised by
a lock (same contract as Pyro4 — share across threads or clone per
thread). Remote exceptions re-raise locally: known :mod:`repro.errors`
classes keep their type, anything else becomes
:class:`RemoteInvocationError` carrying the remote traceback.

Pipelining (``docs/PROTOCOLS.md`` §1.4): a proxy built with
``max_inflight > 1`` allows that many REQUEST frames on the wire at once,
demultiplexing replies by sequence id through a shared waiter map — N
calls cost one round trip plus N executions instead of N round trips.
Threads sharing the proxy overlap automatically; a single thread can
burst explicitly through :meth:`Proxy.pipeline`. Callers that want truly
independent connections instead of a multiplexed one use
:class:`ProxyPool`.
"""

from __future__ import annotations

import copy
import itertools
import threading
import uuid
from dataclasses import replace as _dc_replace
from typing import Any, Callable

import repro.errors as _errors_module
from repro.errors import (
    CommunicationError,
    ProtocolError,
    RemoteInvocationError,
    ReproError,
)
from repro.rpc.context import current_tenant
from repro.rpc.naming import PyroURI, parse_uri
from repro.rpc.protocol import (
    BINARY_VERSION,
    FLAG_ONEWAY,
    VERSION,
    Message,
    MessageType,
    encode_message,
    hello_body,
    recv_message,
    request_body,
    send_message,
)
from repro.rpc.transport import Connection, connect_tcp


def _rebuild_remote_error(body: dict) -> Exception:
    """Map an ERROR frame body to the most faithful local exception."""
    error_type = body.get("error_type", "Exception")
    message = body.get("message", "")
    traceback_text = body.get("traceback", "")
    remote_code = body.get("code", "")
    candidate = getattr(_errors_module, error_type, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, ReproError)
        and candidate.__init__ in (ReproError.__init__, Exception.__init__)
    ):
        return candidate(message)
    return RemoteInvocationError(
        f"remote call raised {error_type}: {message}",
        remote_type=error_type,
        remote_traceback=traceback_text,
        remote_code=remote_code if isinstance(remote_code, str) else "",
    )


def _clone_transport_error(exc: Exception) -> Exception:
    """A per-waiter copy of a shared failure.

    Every call in flight when the connection dies must raise, but raising
    one exception object from several threads races on its traceback;
    each waiter gets its own instance instead.
    """
    try:
        clone = type(exc)(str(exc))
    except Exception:  # noqa: BLE001 - exotic signature; fall back
        clone = CommunicationError(str(exc))
    clone.__cause__ = exc
    return clone


class _PendingSlot:
    """Waiter-map entry for one in-flight frame."""

    __slots__ = ("reply", "error", "bytes_sent", "bytes_received")

    def __init__(self) -> None:
        self.reply: Message | None = None
        self.error: Exception | None = None
        self.bytes_sent: int | None = None
        self.bytes_received: int | None = None

    @property
    def resolved(self) -> bool:
        return self.reply is not None or self.error is not None


class _RemoteMethod:
    """Callable bound to one remote method name."""

    def __init__(self, proxy: "Proxy", name: str):
        self._proxy = proxy
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._proxy._call(self._name, args, kwargs)

    def oneway(self, *args: Any, **kwargs: Any) -> None:
        """Fire-and-forget variant: no reply is awaited."""
        self._proxy._call(self._name, args, kwargs, oneway=True)


class Proxy:
    """Client handle to one remote object.

    Args:
        uri: ``PYRO:ObjectId@host:port`` string or :class:`PyroURI`.
        timeout: per-call deadline in seconds (None = block).
        connection_factory: override how the byte stream is opened — the
            simulated network passes its own dialer here.
        secret: shared secret for daemons that require the HMAC
            challenge-response handshake.
        tracer: optional :class:`repro.obs.Tracer`; when set, every call
            runs inside an ``rpc.call.<method>`` span and its context is
            carried in the REQUEST ``trace`` field so the daemon's
            dispatch span parents under it. None = zero overhead.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            per-call counters, latency histograms, byte counts and the
            ``rpc.client.inflight`` gauge.
        max_inflight: in-flight REQUEST window. 1 (default) keeps the
            classic one-call-at-a-time semantics; above 1 the proxy
            pipelines — concurrent threads overlap their round trips on
            the one connection, and :meth:`pipeline` becomes available
            for single-threaded bursts.
        binary: wire-format selection (PROTOCOLS §1.7). ``"auto"``
            (default) sends a HELLO on connect and upgrades to the v2
            binary bulk frames when the daemon agrees, silently staying
            on v1 JSON against older daemons. ``False`` never negotiates
            (pure v1, zero handshake cost). ``True`` negotiates and
            *requires* v2 — :class:`ProtocolError` if the peer cannot.
    """

    def __init__(
        self,
        uri: str | PyroURI,
        timeout: float | None = 10.0,
        connection_factory: Callable[[str, int], Connection] | None = None,
        secret: bytes | None = None,
        tracer: Any = None,
        metrics: Any = None,
        max_inflight: int = 1,
        binary: bool | str = "auto",
        tenant: str | None = None,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if binary not in (True, False, "auto"):
            raise ValueError(f"binary must be True, False or 'auto', got {binary!r}")
        self._uri = parse_uri(uri)
        self._timeout = timeout
        self._secret = secret
        self._connect_fn = connection_factory or (
            lambda host, port: connect_tcp(host, port, timeout=timeout)
        )
        self._conn: Connection | None = None
        self._seq = 0
        self._lock = threading.RLock()
        self._metadata: dict[str, Any] | None = None
        self._binary = binary
        # negotiated wire version for the *current* connection (None =
        # not yet asked). Forgotten on close: the peer behind an endpoint
        # can be replaced between dials (daemon restart, downgrade to a
        # pre-HELLO build), so a cached v2 verdict from the old peer must
        # never be replayed at a new one that only speaks v1.
        self._negotiated: int | None = VERSION if binary is False else None
        self.tracer = tracer
        self.metrics = metrics
        # optional fencing token: when set, every REQUEST carries it and
        # a lease-aware daemon rejects stale epochs with LEASE_FENCED
        self.lease: dict[str, Any] | None = None
        # optional tenant id (PROTOCOLS §1.8): when set, every REQUEST
        # carries it and a gateway-aware daemon scopes the dispatch to
        # that tenant's session; when unset, the envelope falls back to
        # the tenant bound on the calling context (if any), so daemon-
        # side metrics stay attributed across the wire
        self.tenant: str | None = tenant
        # pipelining state: a waiter map keyed by sequence id plus a
        # "become the reader" condition — at most one thread blocks in
        # recv at a time, depositing replies for everyone else
        self._max_inflight = int(max_inflight)
        self._send_lock = threading.Lock()
        self._demux = threading.Condition(threading.Lock())
        self._pending: dict[int, _PendingSlot] = {}
        self._reader_busy = False
        self._inflight_frames = 0

    # -- connection management ----------------------------------------------
    @property
    def uri(self) -> PyroURI:
        return self._uri

    @property
    def connected(self) -> bool:
        return self._conn is not None

    @property
    def max_inflight(self) -> int:
        """Size of the in-flight REQUEST window (1 = no pipelining)."""
        return self._max_inflight

    @property
    def wire_version(self) -> int:
        """The negotiated protocol version (1 until a HELLO settles it)."""
        return self._negotiated or VERSION

    def _ensure_connected(self) -> Connection:
        if self._conn is None:
            conn = self._connect_fn(self._uri.host, self._uri.port)
            conn.settimeout(self._timeout)
            if self._secret is not None:
                self._answer_challenge(conn)
            if self._negotiated is None:
                conn = self._negotiate(conn)
            self._conn = conn
        return self._conn

    def _negotiate(self, conn: Connection) -> Connection:
        """Run the HELLO handshake; returns the connection to keep using.

        The HELLO travels as v1, so every daemon can read it. A reactor
        daemon answers RESPONSE ``{"version": N}``; a daemon predating
        the handshake chokes on the unknown frame type, answers ERROR
        and drops the connection — that outcome *is* the downgrade
        signal, so the proxy settles on v1 and redials. Transport
        failures that are not a clean ERROR/close (timeouts, routing)
        propagate: a partition must look like a partition, not like an
        old peer.
        """
        try:
            send_message(conn, Message(MessageType.HELLO, 0, hello_body()))
            reply = recv_message(conn)
        except _errors_module.CallTimeoutError:
            conn.close()
            raise
        except _errors_module.ConnectionClosedError:
            reply = None
        if reply is not None and reply.msg_type is MessageType.RESPONSE:
            agreed = VERSION
            if isinstance(reply.body, dict):
                raw = reply.body.get("version")
                if isinstance(raw, int) and raw >= 1:
                    agreed = min(raw, BINARY_VERSION)
            self._negotiated = agreed
        else:
            # ERROR reply or an immediate close: an old JSON-only peer.
            # Its framing is gone (it may already have dropped us), so
            # settle on v1, redial, and never ask this endpoint again.
            self._negotiated = VERSION
            conn.close()
            conn = self._connect_fn(self._uri.host, self._uri.port)
            conn.settimeout(self._timeout)
            if self._secret is not None:
                self._answer_challenge(conn)
        if self._binary is True and self._negotiated < BINARY_VERSION:
            conn.close()
            raise ProtocolError(
                f"binary=True but {self._uri} only speaks wire version "
                f"{self._negotiated}"
            )
        return conn

    def _answer_challenge(self, conn: Connection) -> None:
        """Complete the daemon's HMAC handshake before first use."""
        import hashlib
        import hmac

        from repro.errors import AuthenticationError

        challenge = recv_message(conn)
        if challenge.msg_type is not MessageType.CHALLENGE or not isinstance(
            challenge.body, dict
        ):
            conn.close()
            raise AuthenticationError(
                "server did not issue an authentication challenge "
                "(secret configured on an unauthenticated daemon?)"
            )
        nonce = bytes.fromhex(challenge.body.get("nonce", ""))
        digest = hmac.new(self._secret or b"", nonce, hashlib.sha256).hexdigest()
        send_message(
            conn, Message(MessageType.AUTH, challenge.seq, {"hmac": digest})
        )
        reply = recv_message(conn)
        if reply.msg_type is MessageType.ERROR:
            conn.close()
            raise AuthenticationError(
                reply.body.get("message", "authentication rejected")
                if isinstance(reply.body, dict)
                else "authentication rejected"
            )

    def _effective_tenant(self) -> "str | None":
        """The tenant stamped on outgoing REQUESTs: the explicit proxy
        attribute when set, else whatever is bound on the calling
        context — attribution follows the call across the wire."""
        return self.tenant if self.tenant is not None else current_tenant()

    def close(self) -> None:
        """Drop the connection; the proxy reconnects lazily if reused."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
            self._metadata = None
            if self._binary is not False:
                # re-negotiate on the next dial: the endpoint may now be
                # served by a different daemon (restart/downgrade), and
                # sending cached-v2 frames at a v1-only peer would poison
                # its framing instead of downgrading cleanly
                self._negotiated = None

    def __enter__(self) -> "Proxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- calls -----------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) & 0xFFFFFFFF
        return self._seq

    def _roundtrip(
        self, msg: Message, byte_window: list[tuple[int, int]] | None = None
    ) -> Message:
        """Send one frame and read its correlated reply (serial mode).

        ``byte_window``, when given, receives one ``(sent, received)``
        delta captured here — inside the locked exchange — so concurrent
        callers can never misattribute each other's bytes.
        """
        conn = self._ensure_connected()
        if msg.version != self.wire_version:
            msg = _dc_replace(msg, version=self.wire_version)
        track = byte_window is not None and hasattr(conn, "bytes_sent")
        sent0 = conn.bytes_sent if track else 0
        recv0 = getattr(conn, "bytes_received", 0) if track else 0
        try:
            send_message(conn, msg)
            if msg.oneway:
                if track:
                    byte_window.append((conn.bytes_sent - sent0, 0))
                return msg
            reply = recv_message(conn)
        except (CommunicationError, ProtocolError):
            # connection state is undefined after a failed exchange
            self.close()
            raise
        except _errors_module.ConnectionClosedError:
            self.close()
            raise
        if reply.seq != msg.seq:
            self.close()
            raise ProtocolError(
                f"reply sequence {reply.seq} does not match request {msg.seq}"
            )
        if track:
            byte_window.append(
                (conn.bytes_sent - sent0, conn.bytes_received - recv0)
            )
        return reply

    @staticmethod
    def _process_reply(reply: Message) -> Any:
        """Unpack a REQUEST's reply frame into a return value or raise."""
        if reply.msg_type == MessageType.ERROR:
            raise _rebuild_remote_error(reply.body)
        if reply.msg_type != MessageType.RESPONSE:
            raise ProtocolError(f"unexpected reply type {reply.msg_type}")
        if isinstance(reply.body, dict) and "result" in reply.body:
            return reply.body["result"]
        return reply.body

    def _call(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        oneway: bool = False,
        idempotency_key: str | None = None,
    ) -> Any:
        if self.tracer is None and self.metrics is None:
            return self._call_inner(method, args, kwargs, oneway, idempotency_key)
        return self._call_observed(method, args, kwargs, oneway, idempotency_key)

    def _call_inner(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        oneway: bool,
        idempotency_key: str | None,
        trace_context: dict[str, str] | None = None,
        byte_window: list[tuple[int, int]] | None = None,
    ) -> Any:
        body = request_body(
            self._uri.object_id,
            method,
            args,
            kwargs,
            idempotency_key=idempotency_key,
            trace_context=trace_context,
            lease=self.lease,
            tenant=self._effective_tenant(),
        )
        flags = FLAG_ONEWAY if oneway else 0
        if self._max_inflight > 1:
            reply = self._exchange_pipelined(
                MessageType.REQUEST, body, flags, byte_window
            )
            if oneway:
                return None
            return self._process_reply(reply)
        with self._lock:
            msg = Message(MessageType.REQUEST, self._next_seq(), body, flags=flags)
            reply = self._roundtrip(msg, byte_window)
            if oneway:
                return None
        return self._process_reply(reply)

    def _call_observed(
        self,
        method: str,
        args: tuple,
        kwargs: dict,
        oneway: bool,
        idempotency_key: str | None,
    ) -> Any:
        """Traced/metered variant of :meth:`_call_inner` (observability on)."""
        tracer, metrics = self.tracer, self.metrics
        span = (
            tracer.start_as_current_span(
                f"rpc.call.{method}",
                attributes={"rpc.method": method, "rpc.object": self._uri.object_id},
            )
            if tracer is not None
            else None
        )
        exemplar = span.trace_id if span is not None else None
        if span is not None:
            # stamp the tenant on the span so the trace index and tail
            # sampler can attribute the whole trace to its owner
            span_tenant = self._effective_tenant()
            if span_tenant is not None:
                span.set_attribute("tenant", span_tenant)
        trace_context = span.context.to_wire() if span is not None else None
        clock = tracer.clock if tracer is not None else None
        start = clock.now() if clock is not None else None
        byte_window: list[tuple[int, int]] | None = (
            [] if metrics is not None else None
        )
        status = "ok"
        # the pipelined path maintains the inflight gauge at the frame
        # level (deposits decrement it); serial mode tracks it here
        serial_gauge = metrics is not None and self._max_inflight == 1
        if serial_gauge:
            self._inflight_gauge().inc()
        try:
            return self._call_inner(
                method,
                args,
                kwargs,
                oneway,
                idempotency_key,
                trace_context,
                byte_window,
            )
        except Exception as exc:
            status = "error"
            if span is not None:
                span.record_exception(exc)
                span.end("ERROR")
                span = None
            raise
        finally:
            if serial_gauge:
                self._inflight_gauge().dec()
            if metrics is not None:
                metrics.counter(
                    "rpc.client.calls_total", "RPC calls issued by this client"
                ).inc(method=method, status=status)
                if start is not None:
                    metrics.histogram(
                        "rpc.client.call_latency_s", "client-observed RPC latency"
                    ).observe(clock.now() - start, exemplar=exemplar, method=method)
                if byte_window:
                    sent, received = byte_window[0]
                    if sent > 0:
                        metrics.counter(
                            "rpc.client.bytes_sent_total", "request bytes on the wire"
                        ).inc(sent, method=method)
                    if received > 0:
                        metrics.counter(
                            "rpc.client.bytes_received_total",
                            "response bytes on the wire",
                        ).inc(received, method=method)
            if span is not None:
                span.end()

    def _inflight_gauge(self):
        return self.metrics.gauge(
            "rpc.client.inflight", "REQUEST frames awaiting their reply"
        )

    # -- pipelined exchange --------------------------------------------------
    def _claim_window(self) -> bool:
        """Try to take one in-flight window slot (demux lock held)."""
        if self._inflight_frames < self._max_inflight:
            self._inflight_frames += 1
            if self.metrics is not None:
                self._inflight_gauge().inc()
            return True
        return False

    def _fail_pending_locked(self, exc: Exception) -> None:
        """Fail every waiter (demux lock held) — the stream is undefined."""
        for slot in self._pending.values():
            if not slot.resolved:
                slot.error = _clone_transport_error(exc)
        self._pending.clear()
        if self.metrics is not None and self._inflight_frames:
            self._inflight_gauge().dec(self._inflight_frames)
        self._inflight_frames = 0

    def _pump(self, conn: Connection, done: Callable[[], bool]) -> None:
        """Drive the shared reader until ``done()`` holds.

        ``done`` is evaluated with the demux lock held, so it may claim
        state atomically (the window claim does). At most one thread sits
        in ``recv`` at a time; it deposits each reply into the waiter map
        by sequence id and wakes everyone. Any transport or framing error
        fails every in-flight call and drops the connection — the same
        "state undefined after a failed exchange" rule as serial mode.
        """
        cond = self._demux
        cond.acquire()
        try:
            while not done():
                if self._reader_busy:
                    cond.wait()
                    continue
                self._reader_busy = True
                cond.release()
                failure: Exception | None = None
                msg: Message | None = None
                received: int | None = None
                try:
                    try:
                        track = hasattr(conn, "bytes_received")
                        recv0 = conn.bytes_received if track else 0
                        msg = recv_message(conn)
                        if track:
                            received = conn.bytes_received - recv0
                    except Exception as exc:  # noqa: BLE001 - fails the stream
                        failure = exc
                finally:
                    cond.acquire()
                    self._reader_busy = False
                if failure is None:
                    slot = self._pending.pop(msg.seq, None)
                    if slot is not None:
                        slot.reply = msg
                        slot.bytes_received = received
                        self._inflight_frames = max(0, self._inflight_frames - 1)
                        if self.metrics is not None:
                            self._inflight_gauge().dec()
                        cond.notify_all()
                        continue
                    failure = ProtocolError(
                        f"reply sequence {msg.seq} matches no in-flight request"
                    )
                self._fail_pending_locked(failure)
                cond.notify_all()
                cond.release()
                try:
                    self.close()
                finally:
                    cond.acquire()
        finally:
            cond.release()

    def _pipeline_submit(
        self, msg_type: MessageType, body: Any, flags: int = 0
    ) -> tuple[Connection, int, _PendingSlot | None]:
        """Claim a window slot, register the waiter, and send one frame."""
        oneway = bool(flags & FLAG_ONEWAY)
        with self._lock:
            conn = self._ensure_connected()
            seq = self._next_seq()
        # encode before claiming a window slot: a serialisation error must
        # surface to this caller alone, not fail the whole pipeline
        payload = encode_message(
            Message(msg_type, seq, body, flags=flags, version=self.wire_version)
        )
        slot: _PendingSlot | None = None
        if not oneway:
            # claiming may have to drain replies first — that is the
            # backpressure that bounds the window without a second thread
            self._pump(conn, self._claim_window)
            slot = _PendingSlot()
            with self._demux:
                self._pending[seq] = slot
        try:
            with self._send_lock:
                track = hasattr(conn, "bytes_sent")
                sent0 = conn.bytes_sent if track else 0
                conn.sendall(payload)
                if slot is not None and track:
                    slot.bytes_sent = conn.bytes_sent - sent0
        except Exception as exc:  # noqa: BLE001 - a half-sent frame kills
            # the stream: every in-flight call fails, same rule as serial
            with self._demux:
                self._fail_pending_locked(exc)
                self._demux.notify_all()
            self.close()
            raise
        return conn, seq, slot

    def _pipeline_await(self, conn: Connection, slot: _PendingSlot) -> Message:
        self._pump(conn, lambda: slot.resolved)
        if slot.error is not None:
            raise slot.error
        return slot.reply

    def _exchange_pipelined(
        self,
        msg_type: MessageType,
        body: Any,
        flags: int = 0,
        byte_window: list[tuple[int, int]] | None = None,
    ) -> Message | None:
        """One frame through the demux machinery; None for oneway sends."""
        conn, _seq, slot = self._pipeline_submit(msg_type, body, flags)
        if slot is None:
            return None
        reply = self._pipeline_await(conn, slot)
        if byte_window is not None and slot.bytes_sent is not None:
            byte_window.append((slot.bytes_sent, slot.bytes_received or 0))
        return reply

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a remote method by name: ``proxy.call("Start", ch=1)``.

        The explicit spelling of ``proxy.Start(ch=1)`` — it reads the
        same on :class:`Proxy`, :class:`ProxyPool` and the resilient
        wrapper, which is what lets orchestration code swap one for
        another without touching call sites.
        """
        return self._call(method, args, kwargs)

    def pipeline(self, idempotent: bool = False) -> "Pipeline":
        """Explicit burst issuance over this proxy's connection.

        Requires ``max_inflight > 1``. With ``idempotent=True`` every
        call carries a fresh idempotency key, so re-issuing a burst after
        a transport failure replays completed calls instead of
        re-executing them (PROTOCOLS §1.1).
        """
        if self._max_inflight < 2:
            raise ValueError(
                "pipeline() needs a proxy built with max_inflight > 1"
            )
        return Pipeline(self, idempotent=idempotent)

    def _pyro_ping(self) -> None:
        """Liveness probe (task A of the paper's workflow uses this).

        Named with the underscore prefix (Pyro4's ``_pyroBind`` convention)
        so it can never shadow a remote method called ``ping``.
        """
        if self._max_inflight > 1:
            reply = self._exchange_pipelined(MessageType.PING, None)
        else:
            with self._lock:
                reply = self._roundtrip(
                    Message(MessageType.PING, self._next_seq(), None)
                )
        if reply.msg_type != MessageType.PONG:
            raise ProtocolError(f"expected PONG, got {reply.msg_type}")

    def _pyro_metadata(self) -> dict[str, Any]:
        """Exposed-method metadata from the daemon (cached).

        Returns a copy: mutating the result must not poison the cache
        for later callers.
        """
        if self._max_inflight > 1:
            with self._lock:
                cached = self._metadata
            if cached is None:
                reply = self._exchange_pipelined(
                    MessageType.METADATA, {"object": self._uri.object_id}
                )
                if reply.msg_type == MessageType.ERROR:
                    raise _rebuild_remote_error(reply.body)
                cached = reply.body
                with self._lock:
                    self._metadata = cached
            return copy.deepcopy(cached)
        with self._lock:
            if self._metadata is None:
                reply = self._roundtrip(
                    Message(
                        MessageType.METADATA,
                        self._next_seq(),
                        {"object": self._uri.object_id},
                    )
                )
                if reply.msg_type == MessageType.ERROR:
                    raise _rebuild_remote_error(reply.body)
                self._metadata = reply.body
            return copy.deepcopy(self._metadata)

    def __getattr__(self, name: str) -> _RemoteMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self, name)


class PendingReply:
    """Handle to one in-flight pipelined call.

    :meth:`result` blocks until the correlated reply arrives (driving the
    shared reader if nobody else is) and returns the remote value or
    raises the remote/transport error. Resolution is cached: ``result``
    can be called repeatedly.
    """

    __slots__ = (
        "_proxy",
        "_conn",
        "_slot",
        "_method",
        "_span",
        "_trace_id",
        "_start",
        "_resolved",
        "_value",
        "_error",
    )

    def __init__(
        self,
        proxy: Proxy,
        conn: Connection,
        slot: _PendingSlot,
        method: str,
        span: Any = None,
        start: float | None = None,
    ):
        self._proxy = proxy
        self._conn = conn
        self._slot = slot
        self._method = method
        self._span = span
        # the span is released on end; keep its trace id for the
        # latency exemplar recorded after that
        self._trace_id = span.trace_id if span is not None else None
        self._start = start
        self._resolved = False
        self._value: Any = None
        self._error: Exception | None = None

    @property
    def done(self) -> bool:
        """True when the reply has landed (``result`` will not block)."""
        return self._resolved or self._slot.resolved

    def result(self) -> Any:
        """The remote return value; raises what the call raised."""
        if not self._resolved:
            proxy = self._proxy
            status = "ok"
            try:
                reply = proxy._pipeline_await(self._conn, self._slot)
                self._value = proxy._process_reply(reply)
            except Exception as exc:
                self._error = exc
                status = "error"
                if self._span is not None:
                    self._span.record_exception(exc)
            finally:
                self._resolved = True
                if self._span is not None:
                    self._span.end("ERROR" if status == "error" else None)
                    self._span = None
                self._record_metrics(status)
        if self._error is not None:
            raise self._error
        return self._value

    def _record_metrics(self, status: str) -> None:
        proxy = self._proxy
        metrics = proxy.metrics
        if metrics is None:
            return
        method = self._method
        metrics.counter(
            "rpc.client.calls_total", "RPC calls issued by this client"
        ).inc(method=method, status=status)
        if self._start is not None and proxy.tracer is not None:
            metrics.histogram(
                "rpc.client.call_latency_s", "client-observed RPC latency"
            ).observe(
                proxy.tracer.clock.now() - self._start,
                exemplar=self._trace_id,
                method=method,
            )
        slot = self._slot
        if slot.bytes_sent:
            metrics.counter(
                "rpc.client.bytes_sent_total", "request bytes on the wire"
            ).inc(slot.bytes_sent, method=method)
        if slot.bytes_received:
            metrics.counter(
                "rpc.client.bytes_received_total", "response bytes on the wire"
            ).inc(slot.bytes_received, method=method)


class Pipeline:
    """Futures-style burst issuance over one pipelined proxy.

    ::

        with proxy.pipeline() as pipe:
            pending = [pipe.call("read_chunk", path, off) for off in offsets]
            chunks = [p.result() for p in pending]

    :meth:`call` returns immediately with a :class:`PendingReply` while
    the REQUEST frame is already on the wire; when ``max_inflight``
    frames are outstanding it drains replies while waiting for a window
    slot, so a single thread can issue an arbitrarily long burst without
    deadlocking. Exiting the context collects every uncollected reply
    (the first error propagates, unless the block is already unwinding
    on an exception).

    Each call gets its own ``rpc.call.<method>`` span (parented under
    the span current at issue time, not at collection time) and, with
    ``idempotent=True``, its own idempotency key.
    """

    def __init__(self, proxy: Proxy, idempotent: bool = False):
        self._proxy = proxy
        self._idempotent = idempotent
        self._key_prefix = uuid.uuid4().hex
        self._key_seq = itertools.count()
        self._issued: list[PendingReply] = []

    def call(
        self,
        method: str,
        *args: Any,
        _idempotency_key: str | None = None,
        **kwargs: Any,
    ) -> PendingReply:
        """Send one call; the reply is collected via the returned handle."""
        proxy = self._proxy
        key = _idempotency_key
        if key is None and self._idempotent:
            key = f"{self._key_prefix}:{next(self._key_seq)}"
        tracer = proxy.tracer
        span = None
        start = None
        trace_context = None
        if tracer is not None:
            span = tracer.start_span(
                f"rpc.call.{method}",
                attributes={
                    "rpc.method": method,
                    "rpc.object": proxy._uri.object_id,
                    "rpc.pipelined": True,
                },
            )
            span_tenant = proxy._effective_tenant()
            if span_tenant is not None:
                span.set_attribute("tenant", span_tenant)
            trace_context = span.context.to_wire()
            start = tracer.clock.now()
        body = request_body(
            proxy._uri.object_id,
            method,
            args,
            kwargs,
            idempotency_key=key,
            trace_context=trace_context,
            lease=proxy.lease,
            tenant=proxy._effective_tenant(),
        )
        try:
            conn, _seq, slot = proxy._pipeline_submit(MessageType.REQUEST, body)
        except Exception as exc:
            if span is not None:
                span.record_exception(exc)
                span.end("ERROR")
            if proxy.metrics is not None:
                proxy.metrics.counter(
                    "rpc.client.calls_total", "RPC calls issued by this client"
                ).inc(method=method, status="error")
            raise
        pending = PendingReply(proxy, conn, slot, method, span=span, start=start)
        self._issued.append(pending)
        return pending

    def drain(self) -> None:
        """Collect every not-yet-collected reply.

        Raises the first error among them; errors already delivered to
        the caller through :meth:`PendingReply.result` are theirs to
        handle and are not raised again here.
        """
        first_error: Exception | None = None
        for pending in self._issued:
            if pending._resolved:
                continue
            try:
                pending.result()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                if first_error is None:
                    first_error = exc
        self._issued.clear()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            # already unwinding: collect best-effort so no reply is left
            # orphaned in the waiter map, but keep the original error
            for pending in self._issued:
                if pending._resolved:
                    continue
                try:
                    pending.result()
                except Exception:  # noqa: BLE001
                    pass
            self._issued.clear()
            return
        self.drain()


class ProxyPool:
    """A small pool of independent connections to one endpoint.

    Pipelining multiplexes one connection; a pool hands out *separate*
    connections, so concurrent callers (fleet-campaign threads, parallel
    fetch loops) never share a byte stream at all. Members are created
    lazily up to ``size`` and reused; :meth:`acquire` blocks while all
    are checked out.

    Resilience threads through per the PR-1 layer: pass ``retry_policy``
    (and optionally ``breaker``) and every member is wrapped in a
    :class:`~repro.resilience.ResilientProxy` — with **one** circuit
    breaker shared pool-wide, because the endpoint's health is a
    property of the endpoint, not of whichever pooled connection
    observed the failure.

    Args:
        uri: ``PYRO:`` URI every member dials.
        size: maximum concurrent connections.
        timeout / connection_factory / secret / tracer / metrics /
            max_inflight: forwarded to each member :class:`Proxy`.
        retry_policy: wrap members in ResilientProxy with this policy.
        breaker: shared breaker; default-constructed when a
            ``retry_policy`` is given without one.
        proxy_factory: full override — zero-arg callable building one
            member (the ICE uses this to inject its simulated dialer).
    """

    def __init__(
        self,
        uri: str | PyroURI,
        size: int = 4,
        *,
        timeout: float | None = 10.0,
        connection_factory: Callable[[str, int], Connection] | None = None,
        secret: bytes | None = None,
        tracer: Any = None,
        metrics: Any = None,
        max_inflight: int = 1,
        binary: bool | str = "auto",
        retry_policy: Any = None,
        breaker: Any = None,
        proxy_factory: Callable[[], Any] | None = None,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self._uri = parse_uri(uri)
        self.size = size
        self._timeout = timeout
        self._connection_factory = connection_factory
        self._secret = secret
        self.tracer = tracer
        self.metrics = metrics
        self._max_inflight = max_inflight
        self._binary = binary
        self._retry_policy = retry_policy
        if retry_policy is not None and breaker is None:
            from repro.resilience.policy import CircuitBreaker

            breaker = CircuitBreaker(metrics=metrics, name=str(self._uri))
        self._breaker = breaker
        self._proxy_factory = proxy_factory
        self._cond = threading.Condition(threading.Lock())
        self._idle: list[Any] = []
        self._created = 0
        self._closed = False

    @property
    def breaker(self) -> Any:
        """The endpoint's shared circuit breaker (None when unwrapped)."""
        return self._breaker

    @property
    def in_use(self) -> int:
        with self._cond:
            return self._created - len(self._idle)

    def _make_member(self) -> Any:
        if self._proxy_factory is not None:
            proxy = self._proxy_factory()
        else:
            proxy = Proxy(
                self._uri,
                timeout=self._timeout,
                connection_factory=self._connection_factory,
                secret=self._secret,
                tracer=self.tracer,
                metrics=self.metrics,
                max_inflight=self._max_inflight,
                binary=self._binary,
            )
        if self._retry_policy is not None or self._breaker is not None:
            from repro.resilience.proxy import ResilientProxy

            proxy = ResilientProxy(
                proxy,
                policy=self._retry_policy,
                breaker=self._breaker,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        return proxy

    def _checkout(self, timeout: float | None = None) -> Any:
        with self._cond:
            while True:
                if self._closed:
                    raise CommunicationError("proxy pool is closed")
                if self._idle:
                    return self._idle.pop()
                if self._created < self.size:
                    self._created += 1
                    break
                if not self._cond.wait(timeout):
                    raise _errors_module.CallTimeoutError(
                        f"no pooled connection to {self._uri} became free "
                        f"within {timeout}s"
                    )
        try:
            return self._make_member()
        except BaseException:
            with self._cond:
                self._created -= 1
                self._cond.notify()
            raise

    def _checkin(self, proxy: Any) -> None:
        with self._cond:
            if not self._closed:
                self._idle.append(proxy)
                self._cond.notify()
                return
        proxy.close()

    class _Lease:
        """Context manager pairing one checkout with its checkin."""

        __slots__ = ("_pool", "_proxy")

        def __init__(self, pool: "ProxyPool", proxy: Any):
            self._pool = pool
            self._proxy = proxy

        def __enter__(self) -> Any:
            return self._proxy

        def __exit__(self, *exc_info: object) -> None:
            self._pool._checkin(self._proxy)

    def acquire(self, timeout: float | None = None) -> "ProxyPool._Lease":
        """Check a member out; use as a context manager to return it."""
        return ProxyPool._Lease(self, self._checkout(timeout))

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """One call on whichever member is free first."""
        with self.acquire() as proxy:
            return getattr(proxy, method)(*args, **kwargs)

    class _PooledPipeline:
        """A member checkout wrapping one :class:`Pipeline` burst.

        ``with pool.pipeline() as pipe:`` checks a member out, runs the
        burst on its (pipelined) connection, and returns the member on
        exit — the pool analogue of ``with proxy.pipeline() as pipe:``.
        """

        __slots__ = ("_lease", "_pipe")

        def __init__(self, lease: "ProxyPool._Lease", pipe: "Pipeline"):
            self._lease = lease
            self._pipe = pipe

        def __enter__(self) -> "Pipeline":
            return self._pipe.__enter__()

        def __exit__(self, exc_type, exc, tb) -> None:
            try:
                self._pipe.__exit__(exc_type, exc, tb)
            finally:
                self._lease.__exit__(exc_type, exc, tb)

    def pipeline(self, idempotent: bool = False) -> "ProxyPool._PooledPipeline":
        """Burst issuance on a checked-out member (context manager).

        Requires the pool's members to be built with ``max_inflight > 1``.
        Resilient members are unwrapped to their underlying proxy: a
        pipelined burst manages its own failure semantics (idempotent
        re-issue), so per-call retries inside the burst would double up.
        """
        lease = self.acquire()
        member = lease.__enter__()
        try:
            inner = member if isinstance(member, Proxy) else getattr(
                member, "_proxy", member
            )
            pipe = inner.pipeline(idempotent=idempotent)
        except BaseException:
            lease.__exit__(None, None, None)
            raise
        return ProxyPool._PooledPipeline(lease, pipe)

    def close(self) -> None:
        """Close every idle member and refuse further checkouts.

        Members currently checked out are closed when checked back in.
        """
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._cond.notify_all()
        for proxy in idle:
            proxy.close()

    def __enter__(self) -> "ProxyPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        with self._cond:
            return self._created
