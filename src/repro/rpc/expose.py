"""Exposure control: which methods a remote client may call.

Mirrors Pyro4's ``@expose``: applied to a class, every public method becomes
remotely callable; applied to a single method, just that method. Anything
not exposed raises :class:`MethodNotExposedError` server-side — remote
peers must never be able to reach ``__class__`` or other dunder gadgets.

``@oneway`` marks a method fire-and-forget: the daemon replies immediately
and runs the call without returning its result, which the paper's workflow
uses for long pump operations it polls separately.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, TypeVar

_EXPOSED_ATTR = "_repro_exposed"
_ONEWAY_ATTR = "_repro_oneway"

T = TypeVar("T")


def expose(target: T) -> T:
    """Mark a class or function as remotely callable."""
    if inspect.isclass(target) or callable(target):
        setattr(target, _EXPOSED_ATTR, True)
        return target
    raise TypeError(f"@expose applies to classes or callables, not {target!r}")


def oneway(func: Callable) -> Callable:
    """Mark a method fire-and-forget (reply sent before execution result)."""
    setattr(func, _ONEWAY_ATTR, True)
    return func


def is_exposed(obj: Any, method_name: str) -> bool:
    """May ``method_name`` be invoked remotely on ``obj``?"""
    if method_name.startswith("_"):
        return False
    method = inspect.getattr_static(type(obj), method_name, None)
    if method is None or not callable(method):
        return False
    if getattr(method, _EXPOSED_ATTR, False):
        return True
    return bool(getattr(type(obj), _EXPOSED_ATTR, False))


def is_oneway(obj: Any, method_name: str) -> bool:
    """Is ``method_name`` marked @oneway on ``obj``'s class?"""
    method = inspect.getattr_static(type(obj), method_name, None)
    return bool(method is not None and getattr(method, _ONEWAY_ATTR, False))


def exposed_methods(obj: Any) -> list[str]:
    """Sorted names of all remotely callable methods of ``obj``."""
    names = []
    for name in dir(type(obj)):
        if is_exposed(obj, name):
            names.append(name)
    return sorted(names)
