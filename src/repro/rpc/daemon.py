"""The server side of the remote-object layer.

A :class:`Daemon` owns a listener, a registry of exposed objects, and a
thread per client connection. ``register`` hands back the ``PYRO:`` URI a
remote :class:`~repro.rpc.proxy.Proxy` dials (paper Fig 3, server side).

Dispatch rules:

- only methods passing :func:`repro.rpc.expose.is_exposed` are callable;
- exceptions raised by the target method travel back as ERROR frames with
  the class name and formatted traceback; the proxy re-raises them as
  :class:`RemoteInvocationError` (or the matching ``repro.errors`` class
  when one exists — instrument errors keep their identity end to end);
- ``@oneway`` methods are acknowledged before execution.
"""

from __future__ import annotations

import threading
import time
import traceback
import uuid
from collections import OrderedDict
from typing import Any

from repro.errors import (
    CommunicationError,
    ConnectionClosedError,
    MethodNotExposedError,
    NamingError,
    ProtocolError,
    SerializationError,
)
from repro.logging_utils import EventLog
from repro.rpc.expose import exposed_methods, is_exposed, is_oneway
from repro.rpc.protocol import (
    Message,
    MessageType,
    error_body,
    recv_message,
    request_idempotency_key,
    request_lease,
    request_trace_context,
    send_message,
    validate_request_body,
)
from repro.rpc.transport import Connection, Listener, TCPListener


class DedupCache:
    """Bounded idempotent-replay cache shared by every connection.

    One entry per idempotency key holds the recorded outcome frame
    (RESPONSE or ERROR body) of the first execution. Duplicates arriving
    *after* completion replay the outcome; duplicates arriving while the
    first execution is still in flight wait for it instead of running the
    method a second time. Eviction is LRU at ``capacity`` entries, which
    bounds memory regardless of client behaviour.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"dedup capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._done: OrderedDict[str, tuple[MessageType, Any]] = OrderedDict()
        # key -> None while executing with no waiter yet; the Event is
        # only allocated when a duplicate actually arrives mid-flight,
        # keeping the (overwhelmingly common) no-duplicate path cheap
        self._pending: dict[str, threading.Event | None] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)

    def claim(
        self, key: str, wait_s: float | None = 300.0
    ) -> tuple[MessageType, Any] | None:
        """Resolve who handles ``key``.

        Returns the cached outcome when one exists (caller replays it), or
        None when the caller now owns execution and must eventually call
        :meth:`finish` or :meth:`abandon`. When another thread is already
        executing the same key, blocks until it finishes (bounded by
        ``wait_s``; on timeout the caller executes anyway — the original
        executor is presumed wedged).
        """
        while True:
            with self._lock:
                if key in self._done:
                    self._done.move_to_end(key)
                    return self._done[key]
                if key not in self._pending:
                    self._pending[key] = None
                    return None
                event = self._pending[key]
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
            if not event.wait(wait_s):
                return None

    def finish(self, key: str, msg_type: MessageType, body: Any) -> None:
        """Record the outcome of an executed key and wake any waiters."""
        with self._lock:
            self._done[key] = (msg_type, body)
            self._done.move_to_end(key)
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()

    def abandon(self, key: str) -> None:
        """Release a claim without recording an outcome (handler died)."""
        with self._lock:
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()

    def preload(self, outcomes: dict[str, tuple[MessageType, Any]]) -> int:
        """Seed the cache with journaled outcomes (daemon restart path).

        Insertion order is preserved, so LRU eviction drops the oldest
        journaled outcomes first when the journal outgrew ``capacity``.
        Returns how many entries landed in the cache.
        """
        with self._lock:
            for key, outcome in outcomes.items():
                self._done[key] = outcome
                self._done.move_to_end(key)
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
            return len(self._done)


class Daemon:
    """Serves registered objects over a transport listener.

    Args:
        host: bind address for the default TCP listener.
        port: bind port (0 = ephemeral).
        listener: pre-built listener (e.g. a simulated-network one); when
            given, ``host``/``port`` are ignored.
        event_log: optional shared :class:`EventLog` for transcripts.
        secret: when set, every connection must pass an HMAC-SHA256
            challenge-response before any request is served (the paper's
            future-work "security posture" hardening — facility firewalls
            alone are not authentication).
        dedup_capacity: LRU bound of the idempotent-replay cache (entries
            survive reconnects; a retried REQUEST carrying an already-seen
            idempotency key replays the recorded outcome instead of
            re-executing the instrument call).
        dedup_wait_s: how long a duplicate waits for an in-flight
            execution of the same key before giving up and executing.
        tracer: optional :class:`repro.obs.Tracer`; when set, every
            dispatched request runs inside an ``rpc.dispatch.<method>``
            span parented under the client span carried in the REQUEST
            ``trace`` field. Assignable after construction too —
            ``repro.connect`` wires in-process sim daemons this way so
            client and daemon spans land in one trace store.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            dispatch counters and latency histograms (also assignable).
        dedup_journal: optional
            :class:`~repro.durability.dedup_journal.DedupJournal`. Every
            finished idempotent outcome is appended (fsync'd) before the
            reply frame is sent, and outcomes already on disk preload the
            cache — at-most-once then survives a daemon restart, not just
            a reconnect. ``dedup_preloaded`` counts the restored entries.
        lease_registry: optional
            :class:`~repro.durability.lease.LeaseRegistry`. Requests
            carrying a ``lease`` token are checked against it before
            dispatch; a stale epoch is rejected with ``LEASE_FENCED``
            (counted in ``fenced_count``) and never executes.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        listener: Listener | None = None,
        event_log: EventLog | None = None,
        secret: bytes | None = None,
        dedup_capacity: int = 256,
        dedup_wait_s: float = 300.0,
        tracer: Any = None,
        metrics: Any = None,
        dedup_journal: Any = None,
        lease_registry: Any = None,
    ):
        self._listener = listener if listener is not None else TCPListener(host, port)
        self._secret = secret
        self._objects: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._running = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._client_threads: list[threading.Thread] = []
        self._open_connections: set[Connection] = set()
        self._dedup = DedupCache(dedup_capacity)
        self._dedup_wait_s = dedup_wait_s
        self._dedup_journal = dedup_journal
        self.lease_registry = lease_registry
        self.log = event_log if event_log is not None else EventLog()
        self.call_count = 0
        self.replay_count = 0
        self.fenced_count = 0
        self.dedup_preloaded = 0
        self.crashed = False
        self.quiescent = True
        self.tracer = tracer
        self.metrics = metrics
        if dedup_journal is not None:
            restored = dedup_journal.replay()
            if restored:
                self.dedup_preloaded = self._dedup.preload(restored)
                self.log.emit(
                    "daemon",
                    "dedup-restore",
                    f"preloaded {self.dedup_preloaded} idempotent outcomes "
                    "from the dedup journal",
                )

    # -- registry ------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients should dial."""
        return self._listener.address

    def register(self, obj: Any, object_id: str | None = None) -> str:
        """Publish ``obj``; returns its ``PYRO:`` URI string."""
        from repro.rpc.naming import make_uri  # avoid import cycle at module load

        if object_id is None:
            object_id = f"obj_{uuid.uuid4().hex}"
        with self._lock:
            if object_id in self._objects:
                raise NamingError(f"object id already registered: {object_id!r}")
            self._objects[object_id] = obj
        host, port = self.address
        uri = str(make_uri(object_id, host, port))
        self.log.emit("daemon", "register", f"registered {object_id} at {uri}")
        return uri

    def unregister(self, object_id: str) -> None:
        """Remove an object from the registry."""
        with self._lock:
            if object_id not in self._objects:
                raise NamingError(f"object id not registered: {object_id!r}")
            del self._objects[object_id]

    def registered_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    def _get_object(self, object_id: str) -> Any:
        with self._lock:
            try:
                return self._objects[object_id]
            except KeyError:
                raise NamingError(f"no object registered as {object_id!r}") from None

    # -- serving ---------------------------------------------------------------
    def start_background(self) -> None:
        """Run the accept loop on a daemon thread (paper's requestLoop)."""
        if self._running.is_set():
            return
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-daemon-accept", daemon=True
        )
        self._accept_thread.start()

    def request_loop(self) -> None:
        """Blocking accept loop; returns after :meth:`shutdown`."""
        self._running.set()
        self._accept_loop()

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn = self._listener.accept()
            except ConnectionClosedError:
                break
            with self._lock:
                self._open_connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"repro-daemon-client-{conn.peer}",
                daemon=True,
            )
            with self._lock:
                # prune finished handlers so a long-lived daemon's thread
                # list tracks live connections, not connection history
                self._client_threads = [
                    t for t in self._client_threads if t.is_alive()
                ]
                self._client_threads.append(thread)
            thread.start()

    def shutdown(self, join_timeout_s: float = 5.0) -> None:
        """Stop serving, drop all live connections, and join handlers.

        Joins the accept thread and every per-connection handler under
        one shared ``join_timeout_s`` deadline, so callers (tests, the
        crash/restart helper) observe a quiescent daemon deterministically
        rather than racing abandoned daemon threads. :attr:`quiescent`
        reports whether every thread actually exited in time.
        """
        if not self._running.is_set() and self._accept_thread is None:
            self._listener.close()
            self._close_dedup_journal()
            return
        self._running.clear()
        self._listener.close()
        with self._lock:
            connections = list(self._open_connections)
            threads = list(self._client_threads)
        for conn in connections:
            conn.close()
        deadline = time.monotonic() + join_timeout_s
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=max(0.0, deadline - time.monotonic()))
            threads.append(self._accept_thread)
            self._accept_thread = None
        for thread in threads:
            if thread is not threading.current_thread():
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
        stragglers = [t.name for t in threads if t.is_alive()]
        self.quiescent = not stragglers
        with self._lock:
            self._client_threads.clear()
        self._close_dedup_journal()
        if stragglers:
            self.log.emit(
                "daemon",
                "shutdown-stragglers",
                f"{len(stragglers)} handler thread(s) outlived the "
                f"{join_timeout_s}s join deadline",
                threads=stragglers,
            )
        self.log.emit("daemon", "shutdown", "daemon stopped")

    def crash(self) -> None:
        """Simulate abrupt process death (the chaos ``crash_daemon`` path).

        Unlike :meth:`shutdown`, nothing is joined and nothing is
        flushed: the listener and every connection drop mid-frame, the
        in-memory dedup cache is discarded, and only state already
        fsync'd to the dedup journal survives for the next incarnation —
        exactly what ``kill -9`` would leave behind.
        """
        self.crashed = True
        self._running.clear()
        self._listener.close()
        with self._lock:
            connections = list(self._open_connections)
            self._open_connections.clear()
            self._client_threads.clear()
        for conn in connections:
            conn.close()
        self._accept_thread = None
        # process memory is gone: the cache resets to empty, and the
        # journal handle closes without any graceful draining
        self._dedup = DedupCache(self._dedup.capacity)
        self._close_dedup_journal()

    def _close_dedup_journal(self) -> None:
        if self._dedup_journal is not None:
            try:
                self._dedup_journal.close()
            except OSError:
                pass

    def __enter__(self) -> "Daemon":
        self.start_background()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- authentication --------------------------------------------------------
    def _authenticate(self, conn: Connection) -> bool:
        """Run the challenge-response; True when the peer may proceed."""
        import hashlib
        import hmac
        import os

        from repro.errors import AuthenticationError

        nonce = os.urandom(32)
        send_message(
            conn,
            Message(MessageType.CHALLENGE, 0, {"nonce": nonce.hex()}),
        )
        try:
            reply = recv_message(conn)
        except (ConnectionClosedError, ProtocolError, SerializationError):
            return False
        expected = hmac.new(self._secret or b"", nonce, hashlib.sha256).hexdigest()
        provided = (
            reply.body.get("hmac") if isinstance(reply.body, dict) else None
        )
        if (
            reply.msg_type is not MessageType.AUTH
            or not isinstance(provided, str)
            or not hmac.compare_digest(provided, expected)
        ):
            self.log.emit("daemon", "auth", f"authentication failed for {conn.peer}")
            self._try_send_error(
                conn, reply.seq, AuthenticationError("bad or missing credentials")
            )
            return False
        send_message(conn, Message(MessageType.RESPONSE, reply.seq, {"auth": "ok"}))
        return True

    # -- per-connection handling -------------------------------------------
    def _serve_connection(self, conn: Connection) -> None:
        try:
            if self._secret is not None and not self._authenticate(conn):
                return
            while self._running.is_set():
                try:
                    msg = recv_message(conn)
                except ConnectionClosedError:
                    break
                except (ProtocolError, SerializationError) as exc:
                    # A malformed frame poisons stream framing: report and drop.
                    self._try_send_error(conn, 0, exc)
                    break
                try:
                    self._handle_message(conn, msg)
                except (CommunicationError, ConnectionClosedError, OSError) as exc:
                    # The peer vanished while we were answering. Any
                    # idempotent outcome is already in the dedup cache, so
                    # the reply is replayed when the client retransmits.
                    self.log.emit(
                        "daemon", "reply-lost", f"reply to {conn.peer} lost: {exc}"
                    )
                    break
        finally:
            conn.close()
            with self._lock:
                self._open_connections.discard(conn)

    def _handle_message(self, conn: Connection, msg: Message) -> None:
        if msg.msg_type == MessageType.PING:
            send_message(conn, Message(MessageType.PONG, msg.seq, None))
            return
        if msg.msg_type == MessageType.METADATA:
            self._handle_metadata(conn, msg)
            return
        if msg.msg_type == MessageType.REQUEST:
            self._handle_request(conn, msg)
            return
        self._try_send_error(
            conn, msg.seq, ProtocolError(f"unexpected message type {msg.msg_type}")
        )

    def _handle_metadata(self, conn: Connection, msg: Message) -> None:
        try:
            object_id = msg.body["object"] if isinstance(msg.body, dict) else None
            if not isinstance(object_id, str):
                raise ProtocolError("metadata request must name an object")
            obj = self._get_object(object_id)
            methods = exposed_methods(obj)
            body = {
                "methods": methods,
                "oneway": [m for m in methods if is_oneway(obj, m)],
            }
            send_message(conn, Message(MessageType.RESPONSE, msg.seq, body))
        except Exception as exc:  # noqa: BLE001 - must answer the client
            self._try_send_error(conn, msg.seq, exc)

    def _handle_request(self, conn: Connection, msg: Message) -> None:
        # Fencing precedes dedup: a fenced request must never execute
        # *and* must never poison the dedup cache, because its key may be
        # legitimately re-issued by the successor that holds the lease.
        lease = request_lease(msg.body)
        if lease is not None and self.lease_registry is not None:
            try:
                self.lease_registry.check(lease["resource"], lease["epoch"])
            except Exception as exc:  # noqa: BLE001 - LeaseFencedError
                self.fenced_count += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "durability.lease_fenced_total",
                        "requests rejected for a stale lease epoch",
                    ).inc(resource=lease["resource"])
                self.log.emit(
                    "daemon",
                    "lease-fenced",
                    f"fenced {conn.peer}: {exc}",
                    resource=lease["resource"],
                    epoch=lease["epoch"],
                )
                if not msg.oneway:
                    self._try_send_error(conn, msg.seq, exc)
                return
        key = request_idempotency_key(msg.body)
        if key is not None:
            cached = self._dedup.claim(key, wait_s=self._dedup_wait_s)
            if cached is not None:
                self._replay(conn, msg, key, cached)
                return
        # This thread now owns execution for ``key`` (when one was sent):
        # the outcome must be recorded *before* the reply frame is sent, so
        # a retransmission after a lost response replays instead of
        # re-executing the instrument call.
        recorded = key is None

        def record(msg_type: MessageType, body: Any) -> None:
            nonlocal recorded
            if self.crashed:
                # a dead process records nothing: a handler thread racing
                # the crash must not journal its outcome post-mortem (the
                # client never saw a reply and will re-issue the call)
                return
            if not recorded:
                recorded = True
                # write-ahead order: the outcome is durable on disk
                # before it becomes replayable in memory (and before the
                # reply frame leaves), so a crash any time after the
                # client sees the reply can still replay it on restart
                if self._dedup_journal is not None:
                    try:
                        self._dedup_journal.record(key, msg_type, body)
                        if self.metrics is not None:
                            self.metrics.counter(
                                "durability.dedup_journal_records_total",
                                "idempotent outcomes spilled to disk",
                            ).inc()
                    except Exception as exc:  # noqa: BLE001 - journal loss
                        # must not fail the live call; it only weakens
                        # restart-time replay for this one key
                        self.log.emit(
                            "daemon",
                            "dedup-journal-error",
                            f"failed to journal outcome for {key[:16]}: {exc}",
                        )
                self._dedup.finish(key, msg_type, body)

        try:
            self._execute_request(conn, msg, record)
        finally:
            if not recorded:
                self._dedup.abandon(key)

    def _replay(
        self,
        conn: Connection,
        msg: Message,
        key: str,
        cached: tuple[MessageType, Any],
    ) -> None:
        """Answer a retransmitted request from the dedup cache."""
        self.replay_count += 1
        if self.metrics is not None:
            self.metrics.counter(
                "rpc.daemon.replays_total", "idempotent replays served from cache"
            ).inc()
        msg_type, body = cached
        self.log.emit(
            "daemon",
            "replay",
            f"idempotent replay for key {key[:16]} ({msg_type.name})",
        )
        if msg.oneway:
            return
        try:
            send_message(conn, Message(msg_type, msg.seq, body))
        except (ConnectionClosedError, SerializationError):
            pass

    def _execute_request(self, conn: Connection, msg: Message, record) -> None:
        trace_parent = request_trace_context(msg.body)
        try:
            object_id, method_name, args, kwargs = validate_request_body(msg.body)
            obj = self._get_object(object_id)
            if not is_exposed(obj, method_name):
                raise MethodNotExposedError(
                    f"method {method_name!r} of {object_id!r} is not exposed"
                )
            bound = getattr(obj, method_name)
        except Exception as exc:  # noqa: BLE001
            record(MessageType.ERROR, self._error_body_for(exc))
            if not msg.oneway:
                self._try_send_error(conn, msg.seq, exc)
            return

        if msg.oneway or is_oneway(obj, method_name):
            if not msg.oneway:
                # Client used a normal call on a @oneway method: ack first.
                send_message(conn, Message(MessageType.RESPONSE, msg.seq, None))
            try:
                self._invoke_logged(
                    object_id,
                    method_name,
                    bound,
                    args,
                    kwargs,
                    swallow=True,
                    trace_parent=trace_parent,
                )
            finally:
                record(MessageType.RESPONSE, None)
            return

        try:
            result = self._invoke_logged(
                object_id, method_name, bound, args, kwargs, trace_parent=trace_parent
            )
        except Exception as exc:  # noqa: BLE001 - remote errors travel as frames
            record(MessageType.ERROR, self._error_body_for(exc))
            self._try_send_error(conn, msg.seq, exc)
            return
        record(MessageType.RESPONSE, {"result": result})
        try:
            send_message(conn, Message(MessageType.RESPONSE, msg.seq, {"result": result}))
        except SerializationError as exc:
            self._try_send_error(conn, msg.seq, exc)

    def _invoke_logged(
        self,
        object_id: str,
        method_name: str,
        bound: Any,
        args: list,
        kwargs: dict,
        swallow: bool = False,
        trace_parent: dict[str, str] | None = None,
    ) -> Any:
        self.call_count += 1
        self.log.emit(
            "daemon", "call", f"{object_id}.{method_name}", args=len(args)
        )
        if self.tracer is None and self.metrics is None:
            return self._invoke_raw(object_id, method_name, bound, args, kwargs, swallow)

        from repro.obs.trace import extract_context

        span = None
        if self.tracer is not None:
            # Each connection runs on its own thread, so the contextvar is
            # empty here; the parent comes from the wire (or None = root).
            span = self.tracer.start_as_current_span(
                f"rpc.dispatch.{method_name}",
                parent=extract_context(trace_parent),
                attributes={"rpc.method": method_name, "rpc.object": object_id},
            )
        clock = self.tracer.clock if self.tracer is not None else None
        start = clock.now() if clock is not None else None
        status = "ok"
        try:
            return self._invoke_raw(
                object_id, method_name, bound, args, kwargs, swallow
            )
        except Exception as exc:
            status = "error"
            if span is not None:
                span.record_exception(exc)
                span.end("ERROR")
                span = None
            raise
        finally:
            if self.metrics is not None:
                self.metrics.counter(
                    "rpc.daemon.calls_total", "requests dispatched by this daemon"
                ).inc(method=method_name, status=status)
                if start is not None:
                    self.metrics.histogram(
                        "rpc.daemon.dispatch_latency_s",
                        "daemon-side method execution time",
                    ).observe(clock.now() - start, method=method_name)
            if span is not None:
                span.end()

    def _invoke_raw(
        self,
        object_id: str,
        method_name: str,
        bound: Any,
        args: list,
        kwargs: dict,
        swallow: bool,
    ) -> Any:
        try:
            return bound(*args, **kwargs)
        except Exception:
            if swallow:
                self.log.emit(
                    "daemon",
                    "oneway-error",
                    f"{object_id}.{method_name} raised (oneway, dropped)",
                )
                return None
            raise

    @staticmethod
    def _error_body_for(exc: Exception) -> dict[str, Any]:
        code = getattr(exc, "code", "")
        return error_body(
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            code=code if isinstance(code, str) else "",
        )

    def _try_send_error(self, conn: Connection, seq: int, exc: Exception) -> None:
        body = self._error_body_for(exc)
        try:
            send_message(conn, Message(MessageType.ERROR, seq, body))
        except (ConnectionClosedError, SerializationError):
            pass
