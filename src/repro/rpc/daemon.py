"""The server side of the remote-object layer.

A :class:`Daemon` owns a listener, a registry of exposed objects, and a
serving core. ``register`` hands back the ``PYRO:`` URI a remote
:class:`~repro.rpc.proxy.Proxy` dials (paper Fig 3, server side).

Serving has two modes, chosen by the listener's capabilities:

- **reactor** (TCP, anything with a file descriptor): a single
  selector-driven event loop (:mod:`repro.rpc.reactor`) serves every
  connection — per-connection read/write buffers, bounded outboxes with
  explicit backpressure, and burst-coalesced syscalls. Dispatch runs
  inline on the loop by default (``workers=0``, fastest for short
  verbs) or on a small worker pool (``workers=N``) when handlers block
  on instruments; either way calls from one connection execute in
  order, exactly like the old thread-per-connection daemon.
- **threaded** (the simulated ICE network, delayed loopback): those
  transports are condition-variable byte pipes with no descriptor to
  select on, so each connection gets a blocking reader thread sharing
  the same dispatch core.

Dispatch rules (identical in both modes):

- only methods passing :func:`repro.rpc.expose.is_exposed` are callable;
- exceptions raised by the target method travel back as ERROR frames with
  the class name and formatted traceback; the proxy re-raises them as
  :class:`RemoteInvocationError` (or the matching ``repro.errors`` class
  when one exists — instrument errors keep their identity end to end);
- ``@oneway`` methods are acknowledged before execution;
- every reply is encoded in the wire version of the request frame, so
  one daemon serves old JSON-only clients and binary-negotiated ones on
  neighbouring connections (PROTOCOLS §1.7).
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
import uuid
from collections import OrderedDict, deque
from typing import Any

from repro.errors import (
    CommunicationError,
    ConnectionClosedError,
    MethodNotExposedError,
    NamingError,
    ProtocolError,
    SerializationError,
)
from repro.logging_utils import EventLog
from repro.rpc.expose import exposed_methods, is_exposed, is_oneway
from repro.rpc.protocol import (
    BINARY_VERSION,
    VERSION,
    Message,
    MessageType,
    error_body,
    negotiate_version,
    recv_message,
    request_idempotency_key,
    request_lease,
    request_tenant,
    request_trace_context,
    send_message,
    validate_request_body,
)
from repro.rpc.context import (
    current_tenant,
    reset_current_tenant,
    set_current_tenant,
)
from repro.rpc.reactor import DEFAULT_MAX_OUTBOX_BYTES, Reactor, ReactorClient
from repro.rpc.transport import Connection, Listener, TCPListener


class DedupCache:
    """Bounded idempotent-replay cache shared by every connection.

    One entry per idempotency key holds the recorded outcome frame
    (RESPONSE or ERROR body) of the first execution. Duplicates arriving
    *after* completion replay the outcome; duplicates arriving while the
    first execution is still in flight wait for it instead of running the
    method a second time. Eviction is LRU at ``capacity`` entries, which
    bounds memory regardless of client behaviour.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"dedup capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._done: OrderedDict[str, tuple[MessageType, Any]] = OrderedDict()
        # key -> None while executing with no waiter yet; the Event is
        # only allocated when a duplicate actually arrives mid-flight,
        # keeping the (overwhelmingly common) no-duplicate path cheap
        self._pending: dict[str, threading.Event | None] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)

    def claim(
        self, key: str, wait_s: float | None = 300.0
    ) -> tuple[MessageType, Any] | None:
        """Resolve who handles ``key``.

        Returns the cached outcome when one exists (caller replays it), or
        None when the caller now owns execution and must eventually call
        :meth:`finish` or :meth:`abandon`. When another thread is already
        executing the same key, blocks until it finishes (bounded by
        ``wait_s``; on timeout the caller executes anyway — the original
        executor is presumed wedged).
        """
        while True:
            with self._lock:
                if key in self._done:
                    self._done.move_to_end(key)
                    return self._done[key]
                if key not in self._pending:
                    self._pending[key] = None
                    return None
                event = self._pending[key]
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
            if not event.wait(wait_s):
                return None

    def finish(self, key: str, msg_type: MessageType, body: Any) -> None:
        """Record the outcome of an executed key and wake any waiters."""
        with self._lock:
            self._done[key] = (msg_type, body)
            self._done.move_to_end(key)
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()

    def abandon(self, key: str) -> None:
        """Release a claim without recording an outcome (handler died)."""
        with self._lock:
            event = self._pending.pop(key, None)
        if event is not None:
            event.set()

    def preload(self, outcomes: dict[str, tuple[MessageType, Any]]) -> int:
        """Seed the cache with journaled outcomes (daemon restart path).

        Insertion order is preserved, so LRU eviction drops the oldest
        journaled outcomes first when the journal outgrew ``capacity``.
        Returns how many entries landed in the cache.
        """
        with self._lock:
            for key, outcome in outcomes.items():
                self._done[key] = outcome
                self._done.move_to_end(key)
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
            return len(self._done)


class _WorkerPool:
    """Tiny fixed-size pool of daemon threads for blocking dispatch.

    Not ``concurrent.futures``: its threads are non-daemonic and joined
    at interpreter exit, which would let one wedged instrument handler
    hang a crash test forever. These workers die with the process.
    """

    def __init__(self, size: int):
        self._tasks: queue.Queue[tuple[Any, tuple] | None] = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"repro-daemon-worker-{i}", daemon=True
            )
            for i in range(size)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn: Any, *args: Any) -> None:
        self._tasks.put((fn, args))

    def _run(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            fn, args = item
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 - jobs handle their own errors
                pass

    def stop(self, deadline: float) -> list[str]:
        """Signal workers to exit and join them; returns stragglers."""
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        return [t.name for t in self._threads if t.is_alive()]


class _ThreadedClient:
    """Adapter giving a blocking transport connection the dispatch-core
    surface (``reply``/``peer``) that :class:`ReactorClient` provides."""

    def __init__(self, conn: Connection):
        self.conn = conn
        self.peer = conn.peer
        self._send_lock = threading.Lock()
        self.data: dict[str, Any] = {}

    def reply(self, msg: Message) -> None:
        with self._send_lock:
            send_message(self.conn, msg)


class Daemon:
    """Serves registered objects over a transport listener.

    Args:
        host: bind address for the default TCP listener.
        port: bind port (0 = ephemeral).
        listener: pre-built listener (e.g. a simulated-network one); when
            given, ``host``/``port`` are ignored.
        event_log: optional shared :class:`EventLog` for transcripts.
        secret: when set, every connection must pass an HMAC-SHA256
            challenge-response before any request is served (the paper's
            future-work "security posture" hardening — facility firewalls
            alone are not authentication).
        dedup_capacity: LRU bound of the idempotent-replay cache (entries
            survive reconnects; a retried REQUEST carrying an already-seen
            idempotency key replays the recorded outcome instead of
            re-executing the instrument call).
        dedup_wait_s: how long a duplicate waits for an in-flight
            execution of the same key before giving up and executing.
        tracer: optional :class:`repro.obs.Tracer`; when set, every
            dispatched request runs inside an ``rpc.dispatch.<method>``
            span parented under the client span carried in the REQUEST
            ``trace`` field. Assignable after construction too —
            ``repro.connect`` wires in-process sim daemons this way so
            client and daemon spans land in one trace store.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            dispatch counters and latency histograms (also assignable).
        dedup_journal: optional
            :class:`~repro.durability.dedup_journal.DedupJournal`. Every
            finished idempotent outcome is appended (fsync'd) before the
            reply frame is sent, and outcomes already on disk preload the
            cache — at-most-once then survives a daemon restart, not just
            a reconnect. ``dedup_preloaded`` counts the restored entries.
        lease_registry: optional
            :class:`~repro.durability.lease.LeaseRegistry`. Requests
            carrying a ``lease`` token are checked against it before
            dispatch; a stale epoch is rejected with ``LEASE_FENCED``
            (counted in ``fenced_count``) and never executes.
        workers: reactor-mode dispatch concurrency. 0 (default) runs
            handlers inline on the event loop — fastest for short verbs,
            but a handler that blocks on an instrument stalls every
            connection. N > 0 runs handlers on N pooled threads with
            per-connection ordering preserved; use this for daemons whose
            verbs genuinely block (acquisitions, file I/O).
        max_outbox_bytes: per-connection outbound buffer bound before
            backpressure pauses reading from that client.
        max_wire_version: highest protocol version this daemon speaks;
            HELLO negotiation never settles above it.
    """

    _use_reactor = True  # ThreadedDaemon (benchmark baseline) flips this
    _speaks_hello = True  # old peers predate HELLO: unknown type, drop

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        listener: Listener | None = None,
        event_log: EventLog | None = None,
        secret: bytes | None = None,
        dedup_capacity: int = 256,
        dedup_wait_s: float = 300.0,
        tracer: Any = None,
        metrics: Any = None,
        dedup_journal: Any = None,
        lease_registry: Any = None,
        workers: int = 0,
        max_outbox_bytes: int = DEFAULT_MAX_OUTBOX_BYTES,
        max_wire_version: int = BINARY_VERSION,
    ):
        self._listener = listener if listener is not None else TCPListener(host, port)
        self._secret = secret
        self._objects: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._running = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._client_threads: list[threading.Thread] = []
        self._open_connections: set[Connection] = set()
        self._dedup = DedupCache(dedup_capacity)
        self._dedup_wait_s = dedup_wait_s
        self._dedup_journal = dedup_journal
        self._workers = max(0, int(workers))
        self._pool: _WorkerPool | None = None
        self._max_outbox_bytes = max_outbox_bytes
        self._max_wire_version = max_wire_version
        self._dispatch_lock = threading.Lock()
        self.lease_registry = lease_registry
        self.log = event_log if event_log is not None else EventLog()
        self.call_count = 0
        self.replay_count = 0
        self.fenced_count = 0
        self.dedup_preloaded = 0
        self.crashed = False
        self.quiescent = True
        self.tracer = tracer
        self.metrics = metrics
        self._reactor: Reactor | None = None
        if self._use_reactor and self._listener_selectable():
            self._reactor = Reactor(
                self._listener,
                on_connect=self._reactor_connect,
                on_frame=self._reactor_frame,
                on_frame_error=self._reactor_frame_error,
                on_disconnect=self._reactor_disconnect,
                max_outbox_bytes=max_outbox_bytes,
                metrics_provider=lambda: self.metrics,
            )
        if dedup_journal is not None:
            restored = dedup_journal.replay()
            if restored:
                self.dedup_preloaded = self._dedup.preload(restored)
                self.log.emit(
                    "daemon",
                    "dedup-restore",
                    f"preloaded {self.dedup_preloaded} idempotent outcomes "
                    "from the dedup journal",
                )

    def _listener_selectable(self) -> bool:
        try:
            return (
                callable(getattr(self._listener, "try_accept", None))
                and self._listener.fileno() >= 0
            )
        except (OSError, AttributeError):
            return False

    @property
    def backpressure_total(self) -> int:
        """Times a client's reads were paused for a full outbox."""
        return self._reactor.backpressure_total if self._reactor else 0

    @property
    def serving_mode(self) -> str:
        """``"reactor"`` or ``"threaded"`` — how connections are served."""
        return "reactor" if self._reactor is not None else "threaded"

    # -- registry ------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients should dial."""
        return self._listener.address

    def register(self, obj: Any, object_id: str | None = None) -> str:
        """Publish ``obj``; returns its ``PYRO:`` URI string."""
        from repro.rpc.naming import make_uri  # avoid import cycle at module load

        if object_id is None:
            object_id = f"obj_{uuid.uuid4().hex}"
        with self._lock:
            if object_id in self._objects:
                raise NamingError(f"object id already registered: {object_id!r}")
            self._objects[object_id] = obj
        host, port = self.address
        uri = str(make_uri(object_id, host, port))
        self.log.emit("daemon", "register", f"registered {object_id} at {uri}")
        return uri

    def unregister(self, object_id: str) -> None:
        """Remove an object from the registry."""
        with self._lock:
            if object_id not in self._objects:
                raise NamingError(f"object id not registered: {object_id!r}")
            del self._objects[object_id]

    def registered_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    def _get_object(self, object_id: str) -> Any:
        with self._lock:
            try:
                return self._objects[object_id]
            except KeyError:
                raise NamingError(f"no object registered as {object_id!r}") from None

    # -- serving ---------------------------------------------------------------
    def start_background(self) -> None:
        """Run the serving core on daemon threads (paper's requestLoop)."""
        if self._running.is_set():
            return
        self._running.set()
        self._start_pool()
        if self._reactor is not None:
            self._reactor.start_background()
            return
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-daemon-accept", daemon=True
        )
        self._accept_thread.start()

    def request_loop(self) -> None:
        """Blocking serve loop; returns after :meth:`shutdown`."""
        self._running.set()
        self._start_pool()
        if self._reactor is not None:
            self._reactor.run()
        else:
            self._accept_loop()

    def _start_pool(self) -> None:
        if self._workers > 0 and self._pool is None and self._reactor is not None:
            self._pool = _WorkerPool(self._workers)

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn = self._listener.accept()
            except ConnectionClosedError:
                break
            with self._lock:
                self._open_connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"repro-daemon-client-{conn.peer}",
                daemon=True,
            )
            with self._lock:
                # prune finished handlers so a long-lived daemon's thread
                # list tracks live connections, not connection history
                self._client_threads = [
                    t for t in self._client_threads if t.is_alive()
                ]
                self._client_threads.append(thread)
            thread.start()

    def shutdown(self, join_timeout_s: float = 5.0) -> None:
        """Stop serving, drop all live connections, and join handlers.

        Joins the serving threads (reactor loop or accept + per-connection
        handlers) and any worker pool under one shared ``join_timeout_s``
        deadline, so callers (tests, the crash/restart helper) observe a
        quiescent daemon deterministically rather than racing abandoned
        daemon threads. :attr:`quiescent` reports whether every thread
        actually exited in time.
        """
        if not self._running.is_set() and self._accept_thread is None:
            if self._reactor is not None:
                self._reactor.stop()
            self._listener.close()
            self._close_dedup_journal()
            return
        self._running.clear()
        deadline = time.monotonic() + join_timeout_s
        stragglers: list[str] = []
        if self._reactor is not None:
            self._reactor.stop()
            if not self._reactor.join(
                timeout=max(0.0, deadline - time.monotonic())
            ):
                stragglers.append("repro-daemon-reactor")
        else:
            self._listener.close()
            with self._lock:
                connections = list(self._open_connections)
                threads = list(self._client_threads)
            for conn in connections:
                conn.close()
            if self._accept_thread is not None:
                self._accept_thread.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                threads.append(self._accept_thread)
                self._accept_thread = None
            for thread in threads:
                if thread is not threading.current_thread():
                    thread.join(timeout=max(0.0, deadline - time.monotonic()))
            stragglers.extend(t.name for t in threads if t.is_alive())
            with self._lock:
                self._client_threads.clear()
        if self._pool is not None:
            stragglers.extend(self._pool.stop(deadline))
            self._pool = None
        self.quiescent = not stragglers
        self._close_dedup_journal()
        if stragglers:
            self.log.emit(
                "daemon",
                "shutdown-stragglers",
                f"{len(stragglers)} serving thread(s) outlived the "
                f"{join_timeout_s}s join deadline",
                threads=stragglers,
            )
        self.log.emit("daemon", "shutdown", "daemon stopped")

    def crash(self) -> None:
        """Simulate abrupt process death (the chaos ``crash_daemon`` path).

        Unlike :meth:`shutdown`, nothing is joined and nothing is
        flushed: the listener and every connection drop mid-frame, the
        in-memory dedup cache is discarded, and only state already
        fsync'd to the dedup journal survives for the next incarnation —
        exactly what ``kill -9`` would leave behind.
        """
        self.crashed = True
        self._running.clear()
        if self._reactor is not None:
            self._reactor.crash()
        else:
            self._listener.close()
        with self._lock:
            connections = list(self._open_connections)
            self._open_connections.clear()
            self._client_threads.clear()
        for conn in connections:
            conn.close()
        self._accept_thread = None
        self._pool = None
        # process memory is gone: the cache resets to empty, and the
        # journal handle closes without any graceful draining
        self._dedup = DedupCache(self._dedup.capacity)
        self._close_dedup_journal()

    def _close_dedup_journal(self) -> None:
        if self._dedup_journal is not None:
            try:
                self._dedup_journal.close()
            except OSError:
                pass

    def __enter__(self) -> "Daemon":
        self.start_background()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- reactor callbacks -----------------------------------------------------
    def _reactor_connect(self, client: ReactorClient) -> None:
        if self._secret is None:
            client.data["stage"] = "ready"
            return
        import os

        nonce = os.urandom(32)
        client.data["stage"] = "auth"
        client.data["nonce"] = nonce
        client.reply(Message(MessageType.CHALLENGE, 0, {"nonce": nonce.hex()}))

    def _reactor_frame(self, client: ReactorClient, msg: Message) -> None:
        if msg.version > self._max_wire_version:
            raise ProtocolError(f"unsupported protocol version {msg.version}")
        if client.data.get("stage") == "auth":
            self._check_auth(client, msg)
            return
        if self._pool is None:
            self._dispatch(client, msg)
            return
        # per-connection ordered queue: at most one worker drains a given
        # connection at a time, preserving the old thread-per-connection
        # execution order while letting connections run in parallel
        with self._dispatch_lock:
            pending: deque = client.data.setdefault("pending", deque())
            pending.append(msg)
            if client.data.get("draining"):
                return
            client.data["draining"] = True
        self._pool.submit(self._drain_client, client)

    def _drain_client(self, client: ReactorClient) -> None:
        try:
            while True:
                with self._dispatch_lock:
                    pending = client.data.get("pending")
                    if not pending or client.closed:
                        # a dropped peer's leftover frames are dead work:
                        # executing them would only raise on reply
                        if pending:
                            pending.clear()
                        client.data["draining"] = False
                        return
                    msg = pending.popleft()
                self._dispatch(client, msg)
        except BaseException:
            # _dispatch swallows dead-peer reply errors; anything that
            # still escapes must not leave ``draining`` stuck True, or
            # every later frame from this connection queues forever with
            # no worker assigned to it
            with self._dispatch_lock:
                client.data["draining"] = False
            raise

    def _dispatch(self, client: Any, msg: Message) -> None:
        try:
            self._handle_message(client, msg)
        except (CommunicationError, ConnectionClosedError, OSError) as exc:
            # The peer vanished while we were answering. Any idempotent
            # outcome is already in the dedup cache, so the reply is
            # replayed when the client retransmits.
            self.log.emit(
                "daemon", "reply-lost", f"reply to {client.peer} lost: {exc}"
            )

    def _reactor_frame_error(self, client: ReactorClient, exc: Exception) -> None:
        # A malformed frame poisons stream framing: report and drop.
        self._try_reply_error(client, 0, exc)

    def _reactor_disconnect(self, client: ReactorClient) -> None:
        with self._dispatch_lock:
            pending = client.data.get("pending")
            if pending:
                pending.clear()

    def _check_auth(self, client: ReactorClient, msg: Message) -> None:
        import hashlib
        import hmac

        from repro.errors import AuthenticationError

        nonce = client.data.get("nonce", b"")
        expected = hmac.new(self._secret or b"", nonce, hashlib.sha256).hexdigest()
        provided = msg.body.get("hmac") if isinstance(msg.body, dict) else None
        if (
            msg.msg_type is not MessageType.AUTH
            or not isinstance(provided, str)
            or not hmac.compare_digest(provided, expected)
        ):
            self.log.emit("daemon", "auth", f"authentication failed for {client.peer}")
            self._try_reply_error(
                client, msg.seq, AuthenticationError("bad or missing credentials")
            )
            client.close_after_flush()
            return
        client.data["stage"] = "ready"
        client.reply(Message(MessageType.RESPONSE, msg.seq, {"auth": "ok"}))

    # -- threaded serving (sim network / delayed loopback) ---------------------
    def _authenticate(self, client: _ThreadedClient) -> bool:
        """Run the challenge-response; True when the peer may proceed."""
        import hashlib
        import hmac
        import os

        from repro.errors import AuthenticationError

        nonce = os.urandom(32)
        client.reply(Message(MessageType.CHALLENGE, 0, {"nonce": nonce.hex()}))
        try:
            reply = recv_message(client.conn)
        except (ConnectionClosedError, ProtocolError, SerializationError):
            return False
        expected = hmac.new(self._secret or b"", nonce, hashlib.sha256).hexdigest()
        provided = (
            reply.body.get("hmac") if isinstance(reply.body, dict) else None
        )
        if (
            reply.msg_type is not MessageType.AUTH
            or not isinstance(provided, str)
            or not hmac.compare_digest(provided, expected)
        ):
            self.log.emit("daemon", "auth", f"authentication failed for {client.peer}")
            self._try_reply_error(
                client, reply.seq, AuthenticationError("bad or missing credentials")
            )
            return False
        client.reply(Message(MessageType.RESPONSE, reply.seq, {"auth": "ok"}))
        return True

    def _serve_connection(self, conn: Connection) -> None:
        client = _ThreadedClient(conn)
        try:
            if self._secret is not None and not self._authenticate(client):
                return
            while self._running.is_set():
                try:
                    msg = recv_message(conn)
                    if msg.version > self._max_wire_version:
                        raise ProtocolError(
                            f"unsupported protocol version {msg.version}"
                        )
                    if (
                        msg.msg_type is MessageType.HELLO
                        and not self._speaks_hello
                    ):
                        # a daemon predating HELLO dies at frame decode
                        # ("unknown message type 9"): error, then drop
                        raise ProtocolError("unknown message type 9")
                except ConnectionClosedError:
                    break
                except (ProtocolError, SerializationError) as exc:
                    # A malformed frame poisons stream framing: report and drop.
                    self._try_reply_error(client, 0, exc)
                    break
                try:
                    self._handle_message(client, msg)
                except (CommunicationError, ConnectionClosedError, OSError) as exc:
                    self.log.emit(
                        "daemon", "reply-lost", f"reply to {conn.peer} lost: {exc}"
                    )
                    break
        finally:
            conn.close()
            with self._lock:
                self._open_connections.discard(conn)

    # -- dispatch core (mode-agnostic) ----------------------------------------
    def _handle_message(self, client: Any, msg: Message) -> None:
        if msg.msg_type == MessageType.PING:
            client.reply(Message(MessageType.PONG, msg.seq, None, version=msg.version))
            return
        if msg.msg_type == MessageType.HELLO:
            self._handle_hello(client, msg)
            return
        if msg.msg_type == MessageType.METADATA:
            self._handle_metadata(client, msg)
            return
        if msg.msg_type == MessageType.REQUEST:
            self._handle_request(client, msg)
            return
        self._try_reply_error(
            client,
            msg.seq,
            ProtocolError(f"unexpected message type {msg.msg_type}"),
            version=msg.version,
        )

    def _handle_hello(self, client: Any, msg: Message) -> None:
        agreed = negotiate_version(msg.body, self._max_wire_version)
        client.reply(
            Message(
                MessageType.RESPONSE,
                msg.seq,
                {"version": agreed},
                version=msg.version,
            )
        )

    def _handle_metadata(self, client: Any, msg: Message) -> None:
        try:
            object_id = msg.body["object"] if isinstance(msg.body, dict) else None
            if not isinstance(object_id, str):
                raise ProtocolError("metadata request must name an object")
            obj = self._get_object(object_id)
            methods = exposed_methods(obj)
            body = {
                "methods": methods,
                "oneway": [m for m in methods if is_oneway(obj, m)],
            }
            client.reply(
                Message(MessageType.RESPONSE, msg.seq, body, version=msg.version)
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            self._try_reply_error(client, msg.seq, exc, version=msg.version)

    def _handle_request(self, client: Any, msg: Message) -> None:
        # Fencing precedes dedup: a fenced request must never execute
        # *and* must never poison the dedup cache, because its key may be
        # legitimately re-issued by the successor that holds the lease.
        lease = request_lease(msg.body)
        if lease is not None and self.lease_registry is not None:
            try:
                self.lease_registry.check(lease["resource"], lease["epoch"])
            except Exception as exc:  # noqa: BLE001 - LeaseFencedError
                self.fenced_count += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "durability.lease_fenced_total",
                        "requests rejected for a stale lease epoch",
                    ).inc(resource=lease["resource"])
                self.log.emit(
                    "daemon",
                    "lease-fenced",
                    f"fenced {client.peer}: {exc}",
                    resource=lease["resource"],
                    epoch=lease["epoch"],
                )
                if not msg.oneway:
                    self._try_reply_error(client, msg.seq, exc, version=msg.version)
                return
        key = request_idempotency_key(msg.body)
        if key is not None:
            cached = self._dedup.claim(key, wait_s=self._dedup_wait_s)
            if cached is not None:
                self._replay(client, msg, key, cached)
                return
        # This handler now owns execution for ``key`` (when one was sent):
        # the outcome must be recorded *before* the reply frame is sent, so
        # a retransmission after a lost response replays instead of
        # re-executing the instrument call.
        recorded = key is None

        def record(msg_type: MessageType, body: Any) -> None:
            nonlocal recorded
            if self.crashed:
                # a dead process records nothing: a handler racing the
                # crash must not journal its outcome post-mortem (the
                # client never saw a reply and will re-issue the call)
                return
            if not recorded:
                recorded = True
                # write-ahead order: the outcome is durable on disk
                # before it becomes replayable in memory (and before the
                # reply frame leaves), so a crash any time after the
                # client sees the reply can still replay it on restart
                if self._dedup_journal is not None:
                    try:
                        self._dedup_journal.record(key, msg_type, body)
                        if self.metrics is not None:
                            self.metrics.counter(
                                "durability.dedup_journal_records_total",
                                "idempotent outcomes spilled to disk",
                            ).inc()
                    except Exception as exc:  # noqa: BLE001 - journal loss
                        # must not fail the live call; it only weakens
                        # restart-time replay for this one key
                        self.log.emit(
                            "daemon",
                            "dedup-journal-error",
                            f"failed to journal outcome for {key[:16]}: {exc}",
                        )
                self._dedup.finish(key, msg_type, body)

        try:
            self._execute_request(client, msg, record)
        finally:
            if not recorded:
                self._dedup.abandon(key)

    def _replay(
        self,
        client: Any,
        msg: Message,
        key: str,
        cached: tuple[MessageType, Any],
    ) -> None:
        """Answer a retransmitted request from the dedup cache."""
        self.replay_count += 1
        if self.metrics is not None:
            self.metrics.counter(
                "rpc.daemon.replays_total", "idempotent replays served from cache"
            ).inc()
        msg_type, body = cached
        self.log.emit(
            "daemon",
            "replay",
            f"idempotent replay for key {key[:16]} ({msg_type.name})",
        )
        if msg.oneway:
            return
        try:
            client.reply(Message(msg_type, msg.seq, body, version=msg.version))
        except (ConnectionClosedError, SerializationError):
            pass

    def _execute_request(self, client: Any, msg: Message, record) -> None:
        # bind the request's tenant for the whole dispatch (handlers read
        # it via repro.rpc.context.current_tenant); reset in the finally
        # because reactor/worker threads serve many tenants back to back
        tenant_token = set_current_tenant(request_tenant(msg.body))
        try:
            self._execute_request_inner(client, msg, record)
        finally:
            reset_current_tenant(tenant_token)

    def _execute_request_inner(self, client: Any, msg: Message, record) -> None:
        trace_parent = request_trace_context(msg.body)
        try:
            object_id, method_name, args, kwargs = validate_request_body(msg.body)
            obj = self._get_object(object_id)
            if not is_exposed(obj, method_name):
                raise MethodNotExposedError(
                    f"method {method_name!r} of {object_id!r} is not exposed"
                )
            bound = getattr(obj, method_name)
        except Exception as exc:  # noqa: BLE001
            record(MessageType.ERROR, self._error_body_for(exc))
            if not msg.oneway:
                self._try_reply_error(client, msg.seq, exc, version=msg.version)
            return

        if msg.oneway or is_oneway(obj, method_name):
            if not msg.oneway:
                # Client used a normal call on a @oneway method: ack first.
                client.reply(
                    Message(MessageType.RESPONSE, msg.seq, None, version=msg.version)
                )
            try:
                self._invoke_logged(
                    object_id,
                    method_name,
                    bound,
                    args,
                    kwargs,
                    swallow=True,
                    trace_parent=trace_parent,
                )
            finally:
                record(MessageType.RESPONSE, None)
            return

        try:
            result = self._invoke_logged(
                object_id, method_name, bound, args, kwargs, trace_parent=trace_parent
            )
        except Exception as exc:  # noqa: BLE001 - remote errors travel as frames
            record(MessageType.ERROR, self._error_body_for(exc))
            self._try_reply_error(client, msg.seq, exc, version=msg.version)
            return
        record(MessageType.RESPONSE, {"result": result})
        try:
            client.reply(
                Message(
                    MessageType.RESPONSE,
                    msg.seq,
                    {"result": result},
                    version=msg.version,
                )
            )
        except SerializationError as exc:
            self._try_reply_error(client, msg.seq, exc, version=msg.version)

    def _invoke_logged(
        self,
        object_id: str,
        method_name: str,
        bound: Any,
        args: list,
        kwargs: dict,
        swallow: bool = False,
        trace_parent: dict[str, str] | None = None,
    ) -> Any:
        self.call_count += 1
        self.log.emit(
            "daemon", "call", f"{object_id}.{method_name}", args=len(args)
        )
        if self.tracer is None and self.metrics is None:
            return self._invoke_raw(object_id, method_name, bound, args, kwargs, swallow)

        from repro.obs.trace import extract_context

        span = None
        if self.tracer is not None:
            # Dispatch runs outside any client-side contextvar scope, so
            # the parent comes from the wire (or None = root).
            span = self.tracer.start_as_current_span(
                f"rpc.dispatch.{method_name}",
                parent=extract_context(trace_parent),
                attributes={"rpc.method": method_name, "rpc.object": object_id},
            )
            # the envelope tenant is bound on this thread by the
            # connection handler; stamp it so daemon-half spans carry
            # the same attribution as the client half
            span_tenant = current_tenant()
            if span_tenant is not None:
                span.set_attribute("tenant", span_tenant)
        exemplar = span.trace_id if span is not None else None
        clock = self.tracer.clock if self.tracer is not None else None
        start = clock.now() if clock is not None else None
        status = "ok"
        try:
            return self._invoke_raw(
                object_id, method_name, bound, args, kwargs, swallow
            )
        except Exception as exc:
            status = "error"
            if span is not None:
                span.record_exception(exc)
                span.end("ERROR")
                span = None
            raise
        finally:
            if self.metrics is not None:
                self.metrics.counter(
                    "rpc.daemon.calls_total", "requests dispatched by this daemon"
                ).inc(method=method_name, status=status)
                if start is not None:
                    self.metrics.histogram(
                        "rpc.daemon.dispatch_latency_s",
                        "daemon-side method execution time",
                    ).observe(
                        clock.now() - start,
                        exemplar=exemplar,
                        method=method_name,
                    )
            if span is not None:
                span.end()

    def _invoke_raw(
        self,
        object_id: str,
        method_name: str,
        bound: Any,
        args: list,
        kwargs: dict,
        swallow: bool,
    ) -> Any:
        try:
            return bound(*args, **kwargs)
        except Exception:
            if swallow:
                self.log.emit(
                    "daemon",
                    "oneway-error",
                    f"{object_id}.{method_name} raised (oneway, dropped)",
                )
                return None
            raise

    @staticmethod
    def _error_body_for(exc: Exception) -> dict[str, Any]:
        code = getattr(exc, "code", "")
        return error_body(
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            code=code if isinstance(code, str) else "",
        )

    def _try_reply_error(
        self, client: Any, seq: int, exc: Exception, version: int = VERSION
    ) -> None:
        body = self._error_body_for(exc)
        try:
            client.reply(Message(MessageType.ERROR, seq, body, version=version))
        except (ConnectionClosedError, SerializationError):
            pass
