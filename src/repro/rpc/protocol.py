"""Binary frame protocol carried over the control-channel transport.

Every message is one frame::

    offset  size  field
    0       4     magic  b"RICE"  (Repro Instrument-Computing Ecosystem)
    4       1     version (1 = JSON payload, 2 = binary bulk payload)
    5       1     message type
    6       2     flags
    8       4     sequence id (request/response correlation)
    12      4     payload length N
    16      N     payload (see repro.rpc.serialization)

The fixed 16-byte header keeps parsing trivial and lets either side reject
garbage immediately (wrong magic) instead of desynchronising.

Two wire versions coexist (PROTOCOLS §1.7):

* **v1** — payload is type-tagged JSON (``serialize``). Every peer
  speaks it; it is the handshake language and the fallback.
* **v2** — payload is a binary bulk frame (``serialize_binary``):
  a JSON envelope followed by raw blobs, so I-V arrays and mount
  chunks cross the wire without base64. Spoken only after a
  :attr:`MessageType.HELLO` negotiation proves the peer understands it.

The header's *version* byte is per-frame, so a connection can mix
versions: HELLO and small control traffic stay v1-readable while bulk
replies ride v2. A peer replies in the version of the frame it is
answering, which is what lets old JSON-only clients talk to a new
daemon without negotiating at all.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Protocol

from repro.errors import FrameCorruptError, ProtocolError
from repro.rpc.serialization import (
    deserialize,
    deserialize_binary,
    serialize,
    serialize_binary,
)

MAGIC = b"RICE"
VERSION = 1  # JSON payload — the baseline every peer speaks
BINARY_VERSION = 2  # binary bulk payload — negotiated via HELLO
SUPPORTED_VERSIONS = frozenset({VERSION, BINARY_VERSION})
HEADER = struct.Struct("!4sBBHII")
HEADER_SIZE = HEADER.size  # 16
MAX_PAYLOAD = 256 * 1024 * 1024  # defensive cap: 256 MiB

FLAG_ONEWAY = 0x0001


class MessageType(IntEnum):
    """Frame discriminator."""

    REQUEST = 1
    RESPONSE = 2
    ERROR = 3
    PING = 4
    PONG = 5
    METADATA = 6
    CHALLENGE = 7  # server -> client: authenticate before anything else
    AUTH = 8  # client -> server: HMAC over the challenge nonce
    HELLO = 9  # client -> server: version negotiation (always sent as v1)


class Stream(Protocol):
    """What the protocol needs from a transport connection."""

    def sendall(self, data: bytes) -> None: ...

    def recv_exactly(self, size: int) -> bytes: ...


@dataclass(frozen=True)
class Message:
    """A decoded frame.

    ``version`` records which wire version the frame was (or should be)
    encoded with. Handlers reply in the version of the frame they are
    answering, so a connection serving both an old JSON client and a
    binary-negotiated one never sends a frame the peer cannot read.
    """

    msg_type: MessageType
    seq: int
    body: Any
    flags: int = 0
    version: int = VERSION

    @property
    def oneway(self) -> bool:
        return bool(self.flags & FLAG_ONEWAY)


def hello_body(max_version: int = BINARY_VERSION) -> dict[str, Any]:
    """Build a HELLO body advertising the highest version we speak."""
    return {"max_version": max_version}


def negotiate_version(body: Any, our_max: int = BINARY_VERSION) -> int:
    """Pick the common wire version from a decoded HELLO body.

    Tolerant by design: a malformed or alien HELLO negotiates down to
    v1 rather than erroring, because the worst case must be "we speak
    JSON like before", never "the connection died over an upgrade".
    """
    peer_max = 1
    if isinstance(body, dict):
        raw = body.get("max_version")
        if isinstance(raw, int) and raw >= 1:
            peer_max = raw
    agreed = min(our_max, peer_max)
    return agreed if agreed in SUPPORTED_VERSIONS else VERSION


def encode_payload(body: Any, version: int) -> list[bytes]:
    """Serialise a body to payload parts for the given wire version."""
    if version == BINARY_VERSION:
        return serialize_binary(body)
    return [serialize(body)]


def decode_payload(payload: bytes, version: int) -> Any:
    """Deserialise a payload according to its frame's wire version."""
    if version == BINARY_VERSION:
        return deserialize_binary(payload)
    return deserialize(payload)


def encode_message(msg: Message) -> bytes:
    """Serialise a message to one contiguous frame."""
    parts = encode_payload(msg.body, msg.version)
    length = sum(len(p) for p in parts)
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {length} bytes exceeds MAX_PAYLOAD={MAX_PAYLOAD}"
        )
    header = HEADER.pack(
        MAGIC, msg.version, int(msg.msg_type), msg.flags, msg.seq, length
    )
    return b"".join([header, *parts])


def parse_header(header: bytes) -> tuple[int, MessageType, int, int, int]:
    """Validate a 16-byte header; returns (version, type, flags, seq, length).

    Shared by the blocking reader and the reactor's incremental parser
    so both reject garbage identically.

    Raises:
        ProtocolError: bad magic, unsupported version, unknown type.
        FrameCorruptError: declared payload exceeds MAX_PAYLOAD — for a
            v2 frame that is indistinguishable from a torn length field,
            and either way the stream cannot be resynchronised.
    """
    magic, version, raw_type, flags, seq, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"unsupported protocol version {version}")
    try:
        msg_type = MessageType(raw_type)
    except ValueError as exc:
        raise ProtocolError(f"unknown message type {raw_type}") from exc
    if length > MAX_PAYLOAD:
        raise FrameCorruptError(
            f"declared payload {length} exceeds MAX_PAYLOAD={MAX_PAYLOAD}"
        )
    return version, msg_type, flags, seq, length


def decode_frame(
    version: int, msg_type: MessageType, flags: int, seq: int, payload: bytes
) -> Message:
    """Build a Message from parsed header fields plus its raw payload."""
    return Message(
        msg_type=msg_type,
        seq=seq,
        body=decode_payload(payload, version),
        flags=flags,
        version=version,
    )


def send_message(stream: Stream, msg: Message) -> None:
    """Write one frame to the stream."""
    stream.sendall(encode_message(msg))


def recv_message(stream: Stream) -> Message:
    """Read one frame from the stream.

    Raises:
        ConnectionClosedError: peer closed before a full frame arrived.
        ProtocolError: bad magic, version, type, or oversized payload.
        FrameCorruptError: a binary payload was structurally damaged.
    """
    header = stream.recv_exactly(HEADER_SIZE)
    version, msg_type, flags, seq, length = parse_header(header)
    payload = stream.recv_exactly(length) if length else b""
    return decode_frame(version, msg_type, flags, seq, payload)


# --------------------------------------------------------------------------
# Body shapes (kept as plain dicts on the wire; helpers build/validate them)
# --------------------------------------------------------------------------
def request_body(
    object_id: str,
    method: str,
    args: tuple,
    kwargs: dict,
    idempotency_key: str | None = None,
    trace_context: dict[str, str] | None = None,
    lease: dict[str, Any] | None = None,
    tenant: str | None = None,
) -> dict[str, Any]:
    """Build a REQUEST body.

    ``idempotency_key`` is an optional client-chosen token identifying one
    *logical* call across retransmissions. A daemon that has already
    executed a request with the same key replays the recorded outcome
    instead of re-executing the method; daemons predating the field simply
    ignore the extra key (the body stays a plain dict), so the frame is
    backward-compatible on the wire.

    ``trace_context`` is an optional ``{"trace_id": ..., "span_id": ...}``
    carrier (see ``repro.obs.trace``) identifying the client-side span on
    whose behalf this request is made; a tracing daemon parents its
    dispatch span under it. Same compatibility story as ``idem``: absent
    for untraced calls, ignored by daemons that predate it.

    ``lease`` is an optional ``{"resource": ..., "epoch": ...}`` fencing
    token (see ``repro.durability.lease``) asserting which acquisition
    epoch of the named resource the caller holds; a daemon with a lease
    registry rejects stale epochs with ``LEASE_FENCED`` instead of
    dispatching. Daemons predating the field ignore it.

    ``tenant`` is an optional tenant identifier (PROTOCOLS §1.8): a
    gateway daemon attributes the request to that tenant's quotas and
    fair-share after checking the connection authenticated with the
    tenant's API key. Daemons predating the field ignore it.
    """
    body = {
        "object": object_id,
        "method": method,
        "args": list(args),
        "kwargs": kwargs,
    }
    if idempotency_key is not None:
        body["idem"] = idempotency_key
    if trace_context is not None:
        body["trace"] = trace_context
    if lease is not None:
        body["lease"] = lease
    if tenant is not None:
        body["tenant"] = tenant
    return body


def request_idempotency_key(body: Any) -> str | None:
    """Extract the optional idempotency key from a decoded REQUEST body."""
    if isinstance(body, dict):
        key = body.get("idem")
        if isinstance(key, str) and key:
            return key
    return None


def request_trace_context(body: Any) -> dict[str, str] | None:
    """Extract the optional trace carrier from a decoded REQUEST body.

    Returns the raw ``{"trace_id", "span_id"}`` dict when both fields are
    non-empty strings, else ``None`` — malformed observability metadata
    must never fail a request, so there is no error path here.
    """
    if isinstance(body, dict):
        carrier = body.get("trace")
        if (
            isinstance(carrier, dict)
            and isinstance(carrier.get("trace_id"), str)
            and isinstance(carrier.get("span_id"), str)
            and carrier["trace_id"]
            and carrier["span_id"]
        ):
            return {"trace_id": carrier["trace_id"], "span_id": carrier["span_id"]}
    return None


def request_lease(body: Any) -> dict[str, Any] | None:
    """Extract the optional lease token from a decoded REQUEST body.

    Returns ``{"resource": str, "epoch": int}`` when well-formed, else
    ``None``. Unlike trace metadata, a *malformed* lease is still
    ``None`` here — fencing only applies to clients that assert a lease,
    and asserting garbage is indistinguishable from asserting nothing.
    """
    if isinstance(body, dict):
        token = body.get("lease")
        if (
            isinstance(token, dict)
            and isinstance(token.get("resource"), str)
            and token["resource"]
            and isinstance(token.get("epoch"), int)
        ):
            return {"resource": token["resource"], "epoch": token["epoch"]}
    return None


def request_tenant(body: Any) -> str | None:
    """Extract the optional tenant id from a decoded REQUEST body.

    Returns the tenant id when it is a non-empty string, else ``None`` —
    tolerant like the other optional fields: a request without a tenant
    is simply not tenant-scoped, and gateways decide whether that is
    allowed.
    """
    if isinstance(body, dict):
        tenant = body.get("tenant")
        if isinstance(tenant, str) and tenant:
            return tenant
    return None


def validate_request_body(body: Any) -> tuple[str, str, list, dict]:
    """Check a decoded REQUEST body; returns (object_id, method, args, kwargs)."""
    if not isinstance(body, dict):
        raise ProtocolError(f"request body must be a dict, got {type(body).__name__}")
    try:
        object_id = body["object"]
        method = body["method"]
        args = body.get("args", [])
        kwargs = body.get("kwargs", {})
    except KeyError as exc:
        raise ProtocolError(f"request body missing field {exc}") from exc
    if not isinstance(object_id, str) or not isinstance(method, str):
        raise ProtocolError("request object id and method must be strings")
    if not isinstance(args, list) or not isinstance(kwargs, dict):
        raise ProtocolError("request args/kwargs have wrong container types")
    return object_id, method, args, kwargs


def error_body(
    error_type: str, message: str, traceback_text: str, code: str = ""
) -> dict[str, Any]:
    """Build an ERROR body.

    ``code`` is the machine-readable :attr:`repro.errors.ReproError.code`
    of the server-side exception when it was a :class:`ReproError`
    (empty for foreign exception types); clients surface it as
    ``RemoteInvocationError.remote_code``.
    """
    body = {
        "error_type": error_type,
        "message": message,
        "traceback": traceback_text,
    }
    if code:
        body["code"] = code
    return body
