"""Clock abstraction: real wall time for live runs, virtual time for tests.

The network model charges latency and serialisation delays against a clock.
Benchmarks run against :class:`WallClock` (real ``time.sleep``) while unit
tests use :class:`VirtualClock`, which advances instantly and keeps runs
deterministic regardless of machine load.

All simulated components accept a ``clock`` parameter and default to a
module-level wall clock, so production code paths never need to know the
difference.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface: ``now()`` in seconds and ``sleep(duration)``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, duration: float) -> None:
        raise NotImplementedError


class WallClock(Clock):
    """Real time, via ``time.monotonic`` / ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, duration: float) -> None:
        if duration > 0:
            time.sleep(duration)


class VirtualClock(Clock):
    """Deterministic clock that advances only when slept on.

    Thread-safe: concurrent sleepers each advance the shared clock; the
    resulting ordering matches a cooperative scheduler, which is adequate for
    latency bookkeeping (we never rely on virtual-time preemption).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"cannot sleep a negative duration: {duration}")
        with self._lock:
            self._now += duration

    def advance(self, duration: float) -> None:
        """Explicitly move time forward (alias of sleep for readability)."""
        self.sleep(duration)


#: Default clock used when components are not handed one explicitly.
WALL = WallClock()
