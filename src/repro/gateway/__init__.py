"""Multi-tenant facility gateway: queue, fair-share scheduler, quotas.

The paper's deployment gives one research team one workstation; a real
facility fronts its instruments for *many* teams at once. This package
adds that front door:

- :class:`~repro.gateway.tenants.TenantRegistry` — API-key identity
  (HMAC-checked), per-tenant quotas and submit rate limits;
- :class:`~repro.gateway.jobs.JobStore` — a journal-backed persistent
  job queue (crash-safe submit/complete records) with a cursor-polled
  event feed;
- :class:`~repro.gateway.scheduler.FairShareScheduler` — weighted
  stride scheduling across tenants, health-gated placement across
  instrument cells;
- :class:`~repro.gateway.gateway.Gateway` — the orchestrator executing
  jobs as campaigns;
- :class:`~repro.gateway.service.GatewayServer` — the daemon service
  object (``ACL_Gateway``: ``Job_Submit`` / ``Job_Status`` /
  ``Job_Cancel`` / ``Job_Poll``);
- :class:`~repro.gateway.client.GatewayClient` — one tenant's handle,
  local or over the control channel.

Protocol details live in ``docs/PROTOCOLS.md`` §1.8; metric and health
semantics in ``docs/OBSERVABILITY.md``.
"""

from repro.gateway.client import GatewayClient
from repro.gateway.gateway import Gateway, JobContext, campaign_runner
from repro.gateway.jobs import (
    CANCELLED,
    FAILED,
    FEED_SCHEMA,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    Job,
    JobFeed,
    JobStore,
)
from repro.gateway.scheduler import Cell, FairShareScheduler
from repro.gateway.service import GatewayServer
from repro.gateway.tenants import TenantRegistry, TenantSpec

__all__ = [
    "Gateway",
    "GatewayClient",
    "GatewayServer",
    "JobContext",
    "campaign_runner",
    "Job",
    "JobFeed",
    "JobStore",
    "FEED_SCHEMA",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "Cell",
    "FairShareScheduler",
    "TenantRegistry",
    "TenantSpec",
]
