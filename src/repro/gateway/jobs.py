"""Persistent job queue and store for the facility gateway.

Every state transition a client can observe is first made durable in a
:class:`~repro.durability.journal.Journal` (``gateway.jsonl``), then
applied in memory — the same write-ahead discipline the campaign layer
uses for rounds. A gateway process that dies mid-flight is rebuilt by
:meth:`JobStore.open`: submitted jobs reappear queued, finished jobs
keep their outcome, and jobs that were *running* at the moment of death
are re-queued under their original idempotency-key prefix, so the next
execution replays already-performed instrument calls from the daemon's
dedup journal instead of re-executing them.

Alongside the table, a :class:`JobFeed` retention ring records one
event per transition and serves them through the exact cursor/gap
contract of ``Telemetry_Poll`` (PROTOCOLS §1.5): clients poll with the
last sequence number they saw and get back everything newer, plus a
``gap`` count when their cursor has fallen off the ring.
"""

from __future__ import annotations

import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.clock import Clock, WALL
from repro.durability.journal import Journal
from repro.errors import GatewayError, JobStateError, UnknownJobError

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL = (SUCCEEDED, FAILED, CANCELLED)

#: Schema tag stamped into every Job_Poll reply.
FEED_SCHEMA = "repro-jobs-1"


@dataclass
class Job:
    """One unit of gateway work: a campaign spec owned by a tenant.

    Attributes:
        job_id: gateway-assigned identifier.
        tenant: owning tenant id.
        spec: JSON-safe execution spec — ``{"strategy": <spec>,
            "max_rounds": N}`` where ``strategy`` rebuilds via
            :func:`repro.core.campaign.strategy_from_spec`.
        priority: larger runs earlier *within the tenant's own queue*;
            fairness across tenants is the scheduler's job, so priority
            never lets one tenant jump another's line.
        idem_prefix: idempotency-key prefix assigned at submit and fixed
            for the job's lifetime — the token that makes re-execution
            after a crash replay instead of repeat.
        state: one of ``queued``/``running``/``succeeded``/``failed``/
            ``cancelled``.
        cell: instrument cell the job ran (or is running) on.
        cancel_requested: set by a cancel that raced a running job; the
            executor stops at the next round boundary.
        rounds: completed campaign rounds, filled at finish.
        error: failure description, filled when ``state == "failed"``.
        trace_id: root trace id of the job's (latest) execution —
            journaled before the runner starts, so ``Job_Status`` can
            always point diagnosis at the right trace. A re-execution
            after a crash restamps it.
    """

    job_id: str
    tenant: str
    spec: dict[str, Any]
    priority: int = 0
    idem_prefix: str = ""
    state: str = QUEUED
    cell: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    cancel_requested: bool = False
    rounds: int = 0
    error: str | None = None
    trace_id: str | None = None
    #: monotonically increasing submit index — the FIFO tiebreak
    order: int = 0

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe view returned by the gateway verbs."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec,
            "priority": self.priority,
            "state": self.state,
            "cell": self.cell,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
            "rounds": self.rounds,
            "error": self.error,
            "trace_id": self.trace_id,
        }


@dataclass(frozen=True)
class JobEvent:
    """One entry on the job feed (the cursor currency of ``Job_Poll``)."""

    seq: int
    timestamp: float
    name: str  # job.submitted / job.started / job.finished / ...
    tenant: str
    job_id: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "timestamp": self.timestamp,
            "name": self.name,
            "tenant": self.tenant,
            "job_id": self.job_id,
            "data": self.data,
        }


class JobFeed:
    """Bounded retention ring of :class:`JobEvent`, cursor-polled.

    Same arithmetic as ``TelemetryBus.read_since``: ``gap`` counts the
    events that fell off retention between the caller's cursor and the
    oldest event still held — a slow poller learns exactly how much it
    missed instead of silently losing history.
    """

    def __init__(self, capacity: int = 1024, clock: Clock | None = None):
        if capacity < 1:
            raise GatewayError(f"feed capacity must be >= 1, got {capacity}")
        self._clock = clock or WALL
        self._lock = threading.Lock()
        self._ring: deque[JobEvent] = deque(maxlen=capacity)
        self._seq = 0

    def publish(self, name: str, job: Job, **data: Any) -> JobEvent:
        with self._lock:
            self._seq += 1
            event = JobEvent(
                seq=self._seq,
                timestamp=self._clock.now(),
                name=name,
                tenant=job.tenant,
                job_id=job.job_id,
                data=data,
            )
            self._ring.append(event)
            return event

    def read_since(
        self,
        cursor: int,
        max_events: int = 256,
        tenant: str | None = None,
    ) -> tuple[list[JobEvent], int, int]:
        """Events after ``cursor``; returns ``(events, next_cursor, gap)``.

        ``gap`` is ring-level (how many events of *any* tenant fell off
        retention past the cursor); the tenant filter applies to the
        returned slice only, so a quiet tenant still advances its cursor
        past other tenants' traffic.
        """
        cursor = max(0, int(cursor))
        max_events = max(1, int(max_events))
        with self._lock:
            oldest = self._ring[0].seq if self._ring else self._seq + 1
            gap = max(0, oldest - cursor - 1)
            selected: list[JobEvent] = []
            next_cursor = cursor
            for event in self._ring:
                if event.seq <= cursor:
                    continue
                if len(selected) >= max_events:
                    break
                next_cursor = event.seq
                if tenant is None or event.tenant == tenant:
                    selected.append(event)
            return selected, next_cursor, gap


class JobStore:
    """The durable job table: journal-backed, thread-safe.

    Use :meth:`open`; every mutation appends its journal record before
    touching the in-memory table, so what a restart replays is always a
    superset of what any client was told.
    """

    def __init__(
        self,
        journal: Journal,
        feed: JobFeed,
        clock: Clock | None = None,
    ):
        self._clock = clock or WALL
        self._journal = journal
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._order = 0
        self.feed = feed
        #: job ids that were RUNNING when the previous process died and
        #: came back queued — their next execution must resume, not rerun
        self.requeued_on_open: list[str] = []

    # -- construction -------------------------------------------------------
    @classmethod
    def open(
        cls,
        state_dir: str | Path,
        clock: Clock | None = None,
        feed_capacity: int = 1024,
        fsync: bool = True,
    ) -> "JobStore":
        """Open (or create) the store under ``state_dir``; replays the
        journal and re-queues any job the last incarnation left running."""
        directory = Path(state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        journal = Journal(directory / "gateway.jsonl", fsync=fsync)
        store = cls(
            journal, JobFeed(capacity=feed_capacity, clock=clock), clock=clock
        )
        store._replay(journal.initial_replay.records)
        return store

    def _replay(self, records) -> None:
        for rec in records:
            data = rec.data
            if rec.kind == "job-submitted":
                job = Job(
                    job_id=data["job_id"],
                    tenant=data["tenant"],
                    spec=dict(data.get("spec") or {}),
                    priority=int(data.get("priority", 0)),
                    idem_prefix=str(data.get("idem_prefix", "")),
                    submitted_at=float(data.get("submitted_at", 0.0)),
                    order=self._order,
                )
                self._order += 1
                self._jobs[job.job_id] = job
            elif rec.kind == "job-started":
                job = self._jobs.get(data.get("job_id", ""))
                if job is not None:
                    job.state = RUNNING
                    job.cell = data.get("cell")
                    job.started_at = data.get("started_at")
            elif rec.kind == "job-finished":
                job = self._jobs.get(data.get("job_id", ""))
                if job is not None:
                    job.state = str(data.get("state", FAILED))
                    job.finished_at = data.get("finished_at")
                    job.rounds = int(data.get("rounds", 0))
                    job.error = data.get("error")
            elif rec.kind == "job-trace":
                job = self._jobs.get(data.get("job_id", ""))
                if job is not None:
                    job.trace_id = data.get("trace_id")
            elif rec.kind == "job-cancelled":
                job = self._jobs.get(data.get("job_id", ""))
                if job is not None:
                    if job.state == QUEUED:
                        job.state = CANCELLED
                        job.finished_at = data.get("cancelled_at")
                    else:
                        job.cancel_requested = True
        # a job the dead process left running goes back in the queue
        # under its original idem_prefix: the re-execution resumes from
        # its campaign journal / the daemon's dedup journal, so no
        # instrument action runs twice
        for job in self._jobs.values():
            if job.state == RUNNING:
                job.state = QUEUED
                job.cell = None
                job.started_at = None
                self.requeued_on_open.append(job.job_id)

    # -- queries ------------------------------------------------------------
    def get(self, job_id: str, tenant: str | None = None) -> Job:
        """Look a job up; a wrong-tenant id is as unknown as a bad one
        (job ids must not leak across tenants)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or (tenant is not None and job.tenant != tenant):
                raise UnknownJobError(f"unknown job {job_id!r}")
            return job

    def jobs(self, tenant: str | None = None) -> list[Job]:
        with self._lock:
            return [
                j
                for j in self._jobs.values()
                if tenant is None or j.tenant == tenant
            ]

    def active_count(self, tenant: str) -> int:
        """Queued + running jobs charged against the tenant's quota."""
        with self._lock:
            return sum(
                1
                for j in self._jobs.values()
                if j.tenant == tenant and j.state in (QUEUED, RUNNING)
            )

    def queued(self) -> list[Job]:
        """Schedulable jobs, tenant-priority order left to the caller."""
        with self._lock:
            return [j for j in self._jobs.values() if j.state == QUEUED]

    def next_for_tenant(self, tenant: str) -> Job | None:
        """The tenant's own head of line: highest priority, then FIFO."""
        with self._lock:
            candidates = [
                j
                for j in self._jobs.values()
                if j.tenant == tenant and j.state == QUEUED
            ]
        if not candidates:
            return None
        return min(candidates, key=lambda j: (-j.priority, j.order))

    # -- transitions --------------------------------------------------------
    def submit(
        self, tenant: str, spec: dict[str, Any], priority: int = 0
    ) -> Job:
        with self._lock:
            job = Job(
                job_id=uuid.uuid4().hex[:12],
                tenant=tenant,
                spec=spec,
                priority=int(priority),
                idem_prefix=uuid.uuid4().hex,
                submitted_at=self._clock.now(),
                order=self._order,
            )
            self._order += 1
            self._journal.append(
                "job-submitted",
                job_id=job.job_id,
                tenant=job.tenant,
                spec=job.spec,
                priority=job.priority,
                idem_prefix=job.idem_prefix,
                submitted_at=job.submitted_at,
            )
            self._jobs[job.job_id] = job
        self.feed.publish("job.submitted", job, priority=job.priority)
        return job

    def mark_running(self, job_id: str, cell: str) -> Job:
        with self._lock:
            job = self.get(job_id)
            if job.state != QUEUED:
                raise JobStateError(
                    f"job {job_id!r} is {job.state}, cannot start"
                )
            started_at = self._clock.now()
            self._journal.append(
                "job-started", job_id=job_id, cell=cell, started_at=started_at
            )
            job.state = RUNNING
            job.cell = cell
            job.started_at = started_at
        self.feed.publish("job.started", job, cell=cell)
        return job

    def assign_trace(self, job_id: str, trace_id: str) -> Job:
        """Stamp the root trace id of the job's execution, journal-first.

        Written before the runner issues its first call, so a status
        query — or a post-crash replay — can always link the job to its
        trace. Re-executions restamp (last record wins on replay).
        """
        with self._lock:
            job = self.get(job_id)
            self._journal.append(
                "job-trace", job_id=job_id, trace_id=trace_id
            )
            job.trace_id = trace_id
            return job

    def mark_finished(
        self,
        job_id: str,
        state: str,
        rounds: int = 0,
        error: str | None = None,
    ) -> Job:
        if state not in TERMINAL:
            raise JobStateError(f"{state!r} is not a terminal job state")
        with self._lock:
            job = self.get(job_id)
            if job.state in TERMINAL:
                raise JobStateError(
                    f"job {job_id!r} already finished ({job.state})"
                )
            finished_at = self._clock.now()
            self._journal.append(
                "job-finished",
                job_id=job_id,
                state=state,
                finished_at=finished_at,
                rounds=rounds,
                error=error,
            )
            job.state = state
            job.finished_at = finished_at
            job.rounds = rounds
            job.error = error
        self.feed.publish("job.finished", job, state=state, rounds=rounds)
        return job

    def cancel(self, job_id: str, tenant: str | None = None) -> Job:
        """Cancel a job the tenant owns.

        Queued: terminal immediately. Running: sets ``cancel_requested``
        — the executor honours it at the next round boundary and the job
        finishes ``cancelled`` then. Already terminal: JobStateError.
        """
        with self._lock:
            job = self.get(job_id, tenant=tenant)
            if job.state in TERMINAL:
                raise JobStateError(
                    f"job {job_id!r} already finished ({job.state})"
                )
            cancelled_at = self._clock.now()
            self._journal.append(
                "job-cancelled", job_id=job_id, cancelled_at=cancelled_at
            )
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished_at = cancelled_at
            else:
                job.cancel_requested = True
        self.feed.publish(
            "job.cancelled", job, while_running=job.state == RUNNING
        )
        return job

    def close(self) -> None:
        self._journal.close()
