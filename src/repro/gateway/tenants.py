"""Tenant registry: who may use the gateway, and how much of it.

A facility gateway fronts shared instruments, so admission control is
per-tenant, not per-connection:

- **identity** — a tenant id plus an API key. The key is never stored
  in the clear: registration keeps only an HMAC-SHA256 digest under a
  per-registry salt, and presentation is verified with
  ``hmac.compare_digest`` — the same constant-time discipline as the
  daemon's challenge-response handshake (PROTOCOLS §1.2).
- **quota** — a cap on *active* jobs (queued + running). Exceeding it
  rejects the submit with :class:`~repro.errors.QuotaExceededError`
  (stable code ``GATEWAY_QUOTA_EXCEEDED``) so a runaway client cannot
  bury everyone else's work under its backlog.
- **rate limit** — a token bucket on submissions. Bursts up to
  ``burst`` are fine; a sustained firehose gets
  :class:`~repro.errors.RateLimitedError` (``GATEWAY_RATE_LIMITED``).
- **weight** — the tenant's fair-share weight, consumed by the
  scheduler (a weight of 2 earns twice the placements of a weight
  of 1 under contention).
"""

from __future__ import annotations

import hashlib
import hmac
import math
import os
import threading
from dataclasses import dataclass, field

from repro.clock import Clock, WALL
from repro.errors import (
    GatewayError,
    QuotaExceededError,
    RateLimitedError,
    TenantAuthError,
    UnknownTenantError,
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity and admission limits.

    Attributes:
        tenant_id: stable identifier carried in the REQUEST ``tenant``
            field (PROTOCOLS §1.8).
        api_key: shared secret presented on every gateway verb. Only
            its HMAC digest is retained by the registry.
        weight: fair-share weight (> 0); relative, not absolute.
        max_active: quota on queued + running jobs.
        submit_rate_per_s: sustained submissions per second the token
            bucket refills at; ``inf`` disables rate limiting.
        burst: bucket capacity — how many submits may land back to back
            before the sustained rate applies.
    """

    tenant_id: str
    api_key: str
    weight: float = 1.0
    max_active: int = 16
    submit_rate_per_s: float = math.inf
    burst: int = 8

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise GatewayError("tenant_id must be non-empty")
        if not self.api_key:
            raise GatewayError(f"tenant {self.tenant_id!r} needs an api_key")
        if self.weight <= 0:
            raise GatewayError(
                f"tenant {self.tenant_id!r} weight must be > 0, "
                f"got {self.weight}"
            )
        if self.max_active < 1:
            raise GatewayError(
                f"tenant {self.tenant_id!r} max_active must be >= 1, "
                f"got {self.max_active}"
            )
        if self.submit_rate_per_s <= 0:
            raise GatewayError(
                f"tenant {self.tenant_id!r} submit_rate_per_s must be > 0"
            )
        if self.burst < 1:
            raise GatewayError(
                f"tenant {self.tenant_id!r} burst must be >= 1, "
                f"got {self.burst}"
            )


@dataclass
class _TokenBucket:
    """Classic token bucket; monotonic-clock refill, lock held by caller."""

    rate: float
    capacity: float
    tokens: float
    stamp: float

    def take(self, now: float) -> bool:
        if math.isinf(self.rate):
            return True
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class TenantRegistry:
    """Authentication and admission control for a set of tenants.

    Thread-safe: gateway verbs arrive on daemon dispatch threads while
    the scheduler mutates usage from its own.
    """

    def __init__(self, clock: Clock | None = None, salt: bytes | None = None):
        self._clock = clock or WALL
        # the salt only has to differ between registries so equal keys
        # do not share digests; it is not a stored secret
        self._salt = salt if salt is not None else os.urandom(16)
        self._lock = threading.Lock()
        self._specs: dict[str, TenantSpec] = {}
        self._digests: dict[str, bytes] = {}
        self._buckets: dict[str, _TokenBucket] = {}

    def _digest(self, api_key: str) -> bytes:
        return hmac.new(self._salt, api_key.encode(), hashlib.sha256).digest()

    def add(self, spec: TenantSpec) -> None:
        """Register (or replace) a tenant."""
        with self._lock:
            self._specs[spec.tenant_id] = spec
            self._digests[spec.tenant_id] = self._digest(spec.api_key)
            self._buckets[spec.tenant_id] = _TokenBucket(
                rate=spec.submit_rate_per_s,
                capacity=float(spec.burst),
                tokens=float(spec.burst),
                stamp=self._clock.now(),
            )

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._specs)

    def spec(self, tenant_id: str) -> TenantSpec:
        with self._lock:
            spec = self._specs.get(tenant_id)
        if spec is None:
            raise UnknownTenantError(f"unknown tenant {tenant_id!r}")
        return spec

    def authenticate(self, tenant_id: str | None, api_key: str) -> TenantSpec:
        """Verify identity; returns the spec or raises.

        Unknown tenant and bad key are distinct errors on purpose: the
        gateway operator registered the tenants, so naming which half of
        the credential failed leaks nothing and saves a support round
        trip (unlike a login form on the open internet).
        """
        if not tenant_id:
            raise UnknownTenantError(
                "request carried no tenant id (set Proxy.tenant or pass "
                "tenant= explicitly)"
            )
        with self._lock:
            spec = self._specs.get(tenant_id)
            stored = self._digests.get(tenant_id)
        if spec is None or stored is None:
            raise UnknownTenantError(f"unknown tenant {tenant_id!r}")
        if not hmac.compare_digest(stored, self._digest(api_key or "")):
            raise TenantAuthError(f"bad api key for tenant {tenant_id!r}")
        return spec

    def admit_submit(self, spec: TenantSpec, active_jobs: int) -> None:
        """Gate one submission: rate limit first, then quota.

        Rate is checked before quota so a hammering client burns its
        bucket rather than getting free quota probes; a submit rejected
        here consumes one token either way.
        """
        with self._lock:
            bucket = self._buckets[spec.tenant_id]
            if not bucket.take(self._clock.now()):
                raise RateLimitedError(
                    f"tenant {spec.tenant_id!r} exceeded "
                    f"{spec.submit_rate_per_s:g}/s (burst {spec.burst})"
                )
        if active_jobs >= spec.max_active:
            raise QuotaExceededError(
                f"tenant {spec.tenant_id!r} has {active_jobs} active job(s); "
                f"quota is {spec.max_active}"
            )
