"""The gateway's control-channel face: service object ``ACL_Gateway``.

Verbs are spelled ``Job_Submit`` / ``Job_Status`` / ``Job_Cancel`` /
``Job_Poll`` — the RPC layer structurally refuses underscore-prefixed
names, the same constraint that shaped ``Telemetry_Poll`` and
``Recorder_Dump``. ``Job_Poll`` replies carry the identical
``{"schema", "service", "cursor", "gap", "events"}`` shape as the
telemetry poll (PROTOCOLS §1.5/§1.8).

Tenant identity rides in the REQUEST envelope's ``tenant`` field (set
``Proxy.tenant``), which the daemon binds per-dispatch and this server
reads via :func:`repro.rpc.context.current_tenant`. An explicit
``tenant=`` argument is accepted for in-process callers; when both are
present they must agree — a mismatch is an auth failure, not a
preference.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TenantAuthError
from repro.gateway.gateway import Gateway
from repro.rpc.context import current_tenant
from repro.rpc.expose import expose


@expose
class GatewayServer:
    """Remote face of a :class:`~repro.gateway.gateway.Gateway`."""

    OBJECT_ID = "ACL_Gateway"

    def __init__(self, gateway: Gateway):
        self._gateway = gateway

    @staticmethod
    def _resolve_tenant(claimed: str | None) -> str | None:
        """The effective tenant id for this dispatch.

        Envelope field and explicit argument must agree when both are
        given: a client signing requests as one tenant while naming
        another is lying to somebody.
        """
        envelope = current_tenant()
        if envelope and claimed and envelope != claimed:
            raise TenantAuthError(
                f"request envelope says tenant {envelope!r} but the call "
                f"named {claimed!r}"
            )
        return envelope or claimed

    def Job_Submit(
        self,
        api_key: str = "",
        spec: dict[str, Any] | None = None,
        priority: int = 0,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        return self._gateway.submit(
            self._resolve_tenant(tenant), api_key, spec or {}, priority=priority
        )

    def Job_Status(
        self, job_id: str, api_key: str = "", tenant: str | None = None
    ) -> dict[str, Any]:
        return self._gateway.status(
            self._resolve_tenant(tenant), api_key, job_id
        )

    def Job_Cancel(
        self, job_id: str, api_key: str = "", tenant: str | None = None
    ) -> dict[str, Any]:
        return self._gateway.cancel(
            self._resolve_tenant(tenant), api_key, job_id
        )

    def Job_Poll(
        self,
        cursor: int = 0,
        max_events: int = 256,
        api_key: str = "",
        tenant: str | None = None,
    ) -> dict[str, Any]:
        return self._gateway.poll(
            self._resolve_tenant(tenant),
            api_key,
            cursor=cursor,
            max_events=max_events,
        )
