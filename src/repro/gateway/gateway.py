"""The multi-tenant facility gateway (queue + scheduler + executor).

One :class:`Gateway` fronts a set of instrument cells on behalf of many
tenants. The flow per job:

1. **admission** — :meth:`Gateway.submit` authenticates the tenant
   (HMAC-checked API key), applies its rate limit and quota, validates
   the campaign spec, then journals the job (``job-submitted``) before
   acknowledging — a crash after the ack can never lose the job.
2. **placement** — the scheduler thread (or an explicit :meth:`step`)
   picks a free *healthy* cell first, then the tenant whose fair-share
   turn it is, and journals ``job-started`` with the chosen cell.
3. **execution** — the job's strategy spec is rebuilt via
   :func:`~repro.core.campaign.strategy_from_spec` and run as a
   :class:`~repro.core.campaign.Campaign` against the cell's ICE, with
   a per-job durable journal. A cancel that races a running job stops
   it at the next round boundary.
4. **restart** — a gateway rebuilt over the same ``state_dir`` replays
   its journal: finished jobs keep their outcome, queued jobs are still
   queued, and jobs caught running are re-queued under their original
   idempotency-key prefix so the re-execution *resumes* (campaign
   journal + daemon dedup replay) instead of re-touching instruments.

Everything observable lands in ``gateway.*`` metrics, which the
``gateway`` health subsystem judges (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.clock import Clock, WALL
from repro.errors import (
    GatewayError,
    QuotaExceededError,
    RateLimitedError,
    TenantAuthError,
    UnknownTenantError,
)
from repro.gateway.jobs import (
    CANCELLED,
    FAILED,
    FEED_SCHEMA,
    SUCCEEDED,
    Job,
    JobStore,
)
from repro.gateway.scheduler import Cell, FairShareScheduler
from repro.gateway.tenants import TenantRegistry, TenantSpec
from repro.obs.trace import use_span
from repro.rpc.context import reset_current_tenant, set_current_tenant


@dataclass(frozen=True)
class JobContext:
    """What the executor hands a job runner.

    Attributes:
        journal_dir: per-job durable-execution directory (campaign WAL
            and checkpoints live here).
        idem_prefix: the job's fixed idempotency-key prefix.
        resume: True when this execution follows a gateway restart that
            caught the job running — the runner must resume, not rerun.
        cancelled: callable; True once a tenant cancel has landed, to be
            honoured at the next safe boundary.
    """

    journal_dir: Path
    idem_prefix: str
    resume: bool
    cancelled: Callable[[], bool]


#: A runner executes one placed job and returns
#: ``{"state": <terminal state>, "rounds": int, "error": str | None}``.
Runner = Callable[[Job, Cell, JobContext], dict[str, Any]]


def campaign_runner(job: Job, cell: Cell, ctx: JobContext) -> dict[str, Any]:
    """Default runner: the job spec as a closed-loop campaign.

    The spec's strategy is wrapped so a pending cancel reads as "stop"
    at the next round boundary — the campaign finishes its in-flight
    round cleanly (safe state) instead of being killed mid-acquisition.
    """
    from repro.core.campaign import Campaign, strategy_from_spec

    if cell.ice is None:
        raise GatewayError(
            f"cell {cell.name!r} has no ICE attached; the default campaign "
            "runner needs one (or inject a custom runner)"
        )
    strategy = strategy_from_spec(job.spec["strategy"])

    def guarded(history):
        if ctx.cancelled():
            return None
        return strategy(history)

    campaign = Campaign(
        ice=cell.ice,
        strategy=guarded,
        max_rounds=int(job.spec.get("max_rounds", 10)),
        journal_dir=ctx.journal_dir,
    )
    if ctx.resume and (ctx.journal_dir / "campaign.jsonl").exists():
        rounds = campaign.resume()
    else:
        rounds = campaign.run()
    if ctx.cancelled():
        return {"state": CANCELLED, "rounds": len(rounds)}
    ok = bool(rounds) and all(r.result.succeeded for r in rounds)
    return {
        "state": SUCCEEDED if ok else FAILED,
        "rounds": len(rounds),
        "error": None if ok else "campaign round failed",
    }


class Gateway:
    """Queue, fair-share scheduler and executor over instrument cells.

    Args:
        cells: the schedulable cells — :class:`Cell` objects, or a
            ``{name: ice}`` mapping for the common case.
        state_dir: durable gateway state (job journal + per-job campaign
            journals). Reopening the same directory resumes the queue.
        tenants: initial :class:`TenantSpec` registrations.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; all
            ``gateway.*`` series land here.
        clock: time source (tests inject a fake).
        runner: override job execution (benchmarks use a synthetic
            runner); defaults to :func:`campaign_runner`.
        tracer: optional :class:`~repro.obs.Tracer` for per-job root
            spans (``gateway.job``); falls back to the executing cell's
            ICE tracer. Even with no tracer at all, every execution is
            stamped with a fresh root trace id (journal-first) so
            ``Job_Status`` always carries ``trace_id``.
        fsync: journal durability; leave on outside benchmarks.
    """

    def __init__(
        self,
        cells: dict[str, Any] | list[Cell],
        state_dir: str | Path,
        tenants: tuple[TenantSpec, ...] | list[TenantSpec] = (),
        *,
        metrics: Any = None,
        clock: Clock | None = None,
        runner: Runner | None = None,
        tracer: Any = None,
        feed_capacity: int = 1024,
        fsync: bool = True,
        poll_interval_s: float = 0.01,
    ):
        self._clock = clock or WALL
        self.metrics = metrics
        self.tracer = tracer
        self.state_dir = Path(state_dir)
        if isinstance(cells, dict):
            cells = [Cell(name=name, ice=ice) for name, ice in cells.items()]
        self.scheduler = FairShareScheduler(list(cells), metrics=metrics)
        self.registry = TenantRegistry(clock=self._clock)
        for spec in tenants:
            self.registry.add(spec)
        self.store = JobStore.open(
            self.state_dir,
            clock=self._clock,
            feed_capacity=feed_capacity,
            fsync=fsync,
        )
        self._runner: Runner = runner or campaign_runner
        self._sched_lock = threading.Lock()
        self._poll_interval_s = poll_interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if metrics is not None and self.store.requeued_on_open:
            metrics.counter(
                "gateway.jobs_requeued_total",
                "running jobs re-queued by a gateway restart",
            ).inc(len(self.store.requeued_on_open))
        for tenant in self.registry.tenants():
            self._update_depth(tenant)

    # -- tenant administration ---------------------------------------------
    def add_tenant(self, spec: TenantSpec) -> None:
        self.registry.add(spec)
        self._update_depth(spec.tenant_id)

    # -- client verbs -------------------------------------------------------
    def _count_reject(self, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "gateway.rejects_total", "gateway admission rejections"
            ).inc(reason=reason)

    def _auth(self, tenant_id: str | None, api_key: str) -> TenantSpec:
        try:
            return self.registry.authenticate(tenant_id, api_key)
        except (UnknownTenantError, TenantAuthError):
            self._count_reject("auth")
            raise

    def _update_depth(self, tenant: str) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "gateway.queue_depth", "queued + running jobs per tenant"
            ).set(float(self.store.active_count(tenant)), tenant=tenant)

    def submit(
        self,
        tenant_id: str | None,
        api_key: str,
        spec: dict[str, Any],
        priority: int = 0,
    ) -> dict[str, Any]:
        """Admit one job; returns its wire view (``state == "queued"``)."""
        tenant = self._auth(tenant_id, api_key)
        if not isinstance(spec, dict) or "strategy" not in spec:
            raise GatewayError(
                'job spec must be {"strategy": <spec>, "max_rounds": N}'
            )
        from repro.core.campaign import strategy_from_spec

        strategy_from_spec(spec["strategy"])  # validate before journaling
        try:
            self.registry.admit_submit(
                tenant, self.store.active_count(tenant.tenant_id)
            )
        except RateLimitedError:
            self._count_reject("rate")
            raise
        except QuotaExceededError:
            self._count_reject("quota")
            raise
        job = self.store.submit(tenant.tenant_id, spec, priority=priority)
        if self.metrics is not None:
            self.metrics.counter(
                "gateway.jobs_submitted_total", "jobs admitted by the gateway"
            ).inc(tenant=tenant.tenant_id)
        self._update_depth(tenant.tenant_id)
        return job.to_wire()

    def status(
        self, tenant_id: str | None, api_key: str, job_id: str
    ) -> dict[str, Any]:
        tenant = self._auth(tenant_id, api_key)
        return self.store.get(job_id, tenant=tenant.tenant_id).to_wire()

    def cancel(
        self, tenant_id: str | None, api_key: str, job_id: str
    ) -> dict[str, Any]:
        tenant = self._auth(tenant_id, api_key)
        job = self.store.cancel(job_id, tenant=tenant.tenant_id)
        if job.state == CANCELLED and self.metrics is not None:
            self.metrics.counter(
                "gateway.jobs_finished_total", "jobs reaching a terminal state"
            ).inc(status=CANCELLED)
        self._update_depth(tenant.tenant_id)
        return job.to_wire()

    def poll(
        self,
        tenant_id: str | None,
        api_key: str,
        cursor: int = 0,
        max_events: int = 256,
    ) -> dict[str, Any]:
        """Cursor-poll the tenant's job events (PROTOCOLS §1.5 contract)."""
        tenant = self._auth(tenant_id, api_key)
        events, next_cursor, gap = self.store.feed.read_since(
            cursor, max_events=max_events, tenant=tenant.tenant_id
        )
        return {
            "schema": FEED_SCHEMA,
            "service": "gateway",
            "cursor": next_cursor,
            "gap": gap,
            "events": [e.to_wire() for e in events],
        }

    # -- scheduling + execution --------------------------------------------
    def _place(self) -> tuple[Job, Cell] | None:
        """One placement decision under the scheduler lock.

        Cell before tenant: when no healthy cell is free there is no
        placement, and no tenant's stride may advance for a turn it
        never got.
        """
        with self._sched_lock:
            cell = self.scheduler.pick_cell()
            if cell is None:
                return None
            backlog = {
                t: self.store.next_for_tenant(t)
                for t in self.registry.tenants()
            }
            weights = {
                t: self.registry.spec(t).weight
                for t in self.registry.tenants()
            }
            tenant = self.scheduler.pick_tenant(backlog, weights)
            if tenant is None:
                return None
            job = backlog[tenant]
            self.store.mark_running(job.job_id, cell.name)
            cell.busy = True
            self._update_depth(tenant)
            return job, cell

    def _job_span(self, job: Job, cell: Cell) -> tuple[str, Any]:
        """A root span (or at least a root trace id) for one execution.

        The span — installed current around the runner — parents every
        campaign/workflow/RPC span the execution produces, so the whole
        cross-facility run shares one trace id. Without any tracer a
        bare trace id is still minted: the journal contract (trace_id
        stamped before the runner starts) does not depend on tracing
        being on.
        """
        tracer = self.tracer
        if tracer is None and cell.ice is not None:
            tracer = getattr(cell.ice, "tracer", None)
        if tracer is None:
            return uuid.uuid4().hex, None
        span = tracer.start_span(
            "gateway.job",
            parent=None,
            attributes={
                "job_id": job.job_id,
                "tenant": job.tenant,
                "cell": cell.name,
            },
        )
        return span.trace_id, span

    def _execute(self, job: Job, cell: Cell) -> None:
        ctx = JobContext(
            journal_dir=self.state_dir / "jobs" / job.job_id,
            idem_prefix=job.idem_prefix,
            resume=job.job_id in self.store.requeued_on_open,
            cancelled=lambda: self.store.get(job.job_id).cancel_requested,
        )
        trace_id, job_span = self._job_span(job, cell)
        # journal-first: the trace linkage must survive a crash during
        # the run — that is exactly when an operator wants to explain it
        self.store.assign_trace(job.job_id, trace_id)
        state, rounds, error = FAILED, 0, None
        # bind the job's tenant on this thread for the whole run: every
        # metric the runner's workflow/RPC stack writes is attributed to
        # the tenant automatically (see MetricsRegistry tenant labels)
        tenant_token = set_current_tenant(job.tenant)
        try:
            with use_span(job_span):
                outcome = self._runner(job, cell, ctx) or {}
            state = str(outcome.get("state", SUCCEEDED))
            rounds = int(outcome.get("rounds", 0))
            error = outcome.get("error")
        except Exception as exc:  # noqa: BLE001 - a job failure is data
            state, error = FAILED, f"{type(exc).__name__}: {exc}"
        finally:
            reset_current_tenant(tenant_token)
            cell.busy = False
            if job_span is not None:
                job_span.set_attribute("state", state)
                job_span.end("ERROR" if state == FAILED else None)
        self.store.mark_finished(job.job_id, state, rounds=rounds, error=error)
        if self.metrics is not None:
            self.metrics.counter(
                "gateway.jobs_finished_total", "jobs reaching a terminal state"
            ).inc(status=state)
        self._update_depth(job.tenant)

    def step(self) -> dict[str, Any] | None:
        """Place and synchronously execute at most one job.

        Returns the finished job's wire view, or None when nothing was
        placeable (empty queue, every cell busy or unhealthy).
        """
        placement = self._place()
        if placement is None:
            return None
        job, cell = placement
        self._execute(job, cell)
        return self.store.get(job.job_id).to_wire()

    def run_until_idle(self, max_jobs: int | None = None) -> int:
        """Drive :meth:`step` until the queue drains; returns jobs run.

        Stops early when placement stalls (e.g. every cell unhealthy)
        so a gated queue cannot spin this loop forever.
        """
        executed = 0
        while max_jobs is None or executed < max_jobs:
            if self.step() is None:
                break
            executed += 1
        return executed

    def start(self) -> None:
        """Serve the queue from a background scheduler thread."""
        if self._thread is not None:
            raise GatewayError("gateway scheduler already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                if self.step() is None:
                    self._stop.wait(self._poll_interval_s)

        self._thread = threading.Thread(
            target=loop, name="gateway-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the scheduler thread (lets an in-flight job finish)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def close(self) -> None:
        self.stop()
        self.store.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection ------------------------------------------------------
    def queue_depth(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return self.store.active_count(tenant)
        return sum(
            self.store.active_count(t) for t in self.registry.tenants()
        )
