"""Uniform client handle to a gateway, local or remote.

The session facade and the CLI both want one call surface whether the
gateway lives in-process (a :class:`~repro.gateway.gateway.Gateway`
object) or behind a daemon (a ``PYRO:ACL_Gateway@host:port`` URI).
:class:`GatewayClient` provides it:

- **in-process** — calls go straight to the gateway object;
- **remote** — a :class:`~repro.rpc.Proxy` is dialled with its
  ``tenant`` attribute set, so every REQUEST carries the tenant id in
  the envelope (PROTOCOLS §1.8) and the server needs no ``tenant=``
  argument at all.
"""

from __future__ import annotations

from typing import Any

from repro.errors import GatewayError
from repro.gateway.gateway import Gateway


class GatewayClient:
    """One tenant's handle to a gateway.

    Args:
        target: a :class:`Gateway` instance or a ``PYRO:`` URI string.
        tenant: this client's tenant id.
        api_key: this client's API key, presented on every verb.
        timeout / secret / connection_factory: proxy options (URI mode).
    """

    def __init__(
        self,
        target: Gateway | str,
        tenant: str,
        api_key: str,
        *,
        timeout: float | None = 30.0,
        secret: bytes | None = None,
        connection_factory: Any = None,
    ):
        if not tenant:
            raise GatewayError("GatewayClient needs a tenant id")
        self.tenant = tenant
        self._api_key = api_key
        self._gateway: Gateway | None = None
        self._proxy = None
        if isinstance(target, Gateway):
            self._gateway = target
        elif isinstance(target, str):
            from repro.rpc.proxy import Proxy

            self._proxy = Proxy(
                target,
                timeout=timeout,
                secret=secret,
                connection_factory=connection_factory,
                tenant=tenant,
            )
        else:
            raise GatewayError(
                f"target must be a Gateway or a PYRO: URI, not {target!r}"
            )

    # -- verbs --------------------------------------------------------------
    def submit(
        self, spec: dict[str, Any], priority: int = 0
    ) -> dict[str, Any]:
        if self._gateway is not None:
            return self._gateway.submit(
                self.tenant, self._api_key, spec, priority=priority
            )
        return self._proxy.Job_Submit(
            api_key=self._api_key, spec=spec, priority=priority
        )

    def status(self, job_id: str) -> dict[str, Any]:
        if self._gateway is not None:
            return self._gateway.status(self.tenant, self._api_key, job_id)
        return self._proxy.Job_Status(job_id, api_key=self._api_key)

    def cancel(self, job_id: str) -> dict[str, Any]:
        if self._gateway is not None:
            return self._gateway.cancel(self.tenant, self._api_key, job_id)
        return self._proxy.Job_Cancel(job_id, api_key=self._api_key)

    def poll(self, cursor: int = 0, max_events: int = 256) -> dict[str, Any]:
        if self._gateway is not None:
            return self._gateway.poll(
                self.tenant, self._api_key, cursor=cursor, max_events=max_events
            )
        return self._proxy.Job_Poll(
            cursor=cursor, max_events=max_events, api_key=self._api_key
        )

    def close(self) -> None:
        if self._proxy is not None:
            self._proxy.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
