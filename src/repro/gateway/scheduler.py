"""Weighted fair-share scheduling across tenants and instrument cells.

Two questions per placement, answered separately:

**Who runs next?** Stride scheduling over the tenants that currently
have queued work: each tenant carries a virtual-time ``pass`` value and
every placement advances it by ``1 / weight``. Picking the smallest
pass gives each tenant throughput proportional to its weight and a hard
starvation bound — between two services of tenant *t* with queued work,
each other tenant *u* fits at most ``ceil(w_u / w_t)`` placements into
*t*'s stride interval, no matter how deep *u*'s backlog is (passes
advance in exact rational arithmetic, so the bound holds at ties
too). A tenant that goes idle has its pass
re-based on return so banked idle time cannot be weaponised into a
burst that starves everyone else.

**Where does it run?** Cells are consulted in least-recently-used
order, and a cell whose health verdict is anything but healthy is
skipped entirely (counted in ``gateway.scheduler_skips_total``) — the
gateway never places work on a degraded cell; it waits for recovery
instead. Cells already busy are passed over the same way, so a single
slow job cannot head-of-line block the other cell.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable

from repro.errors import GatewayError
from repro.gateway.jobs import Job
from repro.obs.health import HEALTHY


@dataclass
class Cell:
    """One schedulable instrument cell.

    Attributes:
        name: stable cell id (doubles as the metric label).
        ice: the cell's :class:`~repro.facility.ice.ElectrochemistryICE`
            — optional, because benchmark/unit harnesses schedule onto
            synthetic cells with an injected runner.
        health: zero-arg callable returning the cell's current verdict
            (``healthy`` / ``degraded`` / ``unhealthy``). Defaults to a
            :class:`~repro.obs.health.HealthEngine` over the ICE's
            metrics registry when one is attached, else always-healthy.
        busy: a job is currently placed here.
    """

    name: str
    ice: Any = None
    health: Callable[[], str] | None = None
    busy: bool = False
    _engine: Any = field(default=None, repr=False)

    def verdict(self) -> str:
        if self.health is not None:
            return self.health()
        if self.ice is not None and self.ice.metrics is not None:
            if self._engine is None:
                from repro.obs.health import HealthEngine

                self._engine = HealthEngine(self.ice.metrics)
            return self._engine.evaluate().status
        return HEALTHY


@dataclass
class _TenantLane:
    # passes advance in exact arithmetic: accumulating float 1/weight
    # drifts (three thirds != one) and an off-by-ulp comparison breaks
    # the documented starvation bound at exactly the tie that matters
    weight: float
    pass_value: Fraction = Fraction(0)


class FairShareScheduler:
    """Stride scheduler with health-gated cell placement.

    Not thread-safe on its own; the gateway serialises calls under its
    scheduler lock.
    """

    def __init__(self, cells: list[Cell], metrics: Any = None):
        if not cells:
            raise GatewayError("scheduler needs at least one cell")
        names = [c.name for c in cells]
        if len(set(names)) != len(names):
            raise GatewayError(f"duplicate cell names: {names}")
        self.cells = list(cells)
        self.metrics = metrics
        self._lanes: dict[str, _TenantLane] = {}
        self._global_pass = Fraction(0)
        # LRU order for cell probing: rotate so one cell's position in
        # the list never makes it the permanent first choice
        self._probe_order = itertools.cycle(range(len(cells)))

    def _lane(self, tenant: str, weight: float) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            # joiners (and re-joiners after an idle stretch) start at the
            # current virtual time: no banked credit, no penalty
            lane = _TenantLane(weight=weight, pass_value=self._global_pass)
            self._lanes[tenant] = lane
        lane.weight = weight
        return lane

    def pick_tenant(
        self,
        backlog: dict[str, Job | None],
        weights: dict[str, float],
    ) -> str | None:
        """The tenant whose turn it is, among those with queued work.

        ``backlog`` maps tenant -> its head-of-line job (None entries
        are ignored); ``weights`` supplies fair-share weights.
        """
        eligible = [t for t, job in backlog.items() if job is not None]
        if not eligible:
            return None
        for tenant in eligible:
            self._lane(tenant, weights.get(tenant, 1.0))
        chosen = min(
            eligible,
            key=lambda t: (self._lanes[t].pass_value, t),
        )
        lane = self._lanes[chosen]
        self._global_pass = max(self._global_pass, lane.pass_value)
        lane.pass_value += 1 / Fraction(lane.weight)
        return chosen

    def pick_cell(self) -> Cell | None:
        """A free, healthy cell in LRU probe order — or None.

        Unhealthy/degraded cells are skipped and the skip is counted;
        a busy cell is simply passed over (being occupied is the normal
        case, not a signal).
        """
        for _ in range(len(self.cells)):
            cell = self.cells[next(self._probe_order)]
            if cell.busy:
                continue
            verdict = cell.verdict()
            if verdict != HEALTHY:
                if self.metrics is not None:
                    self.metrics.counter(
                        "gateway.scheduler_skips_total",
                        "placements that skipped an unhealthy cell",
                    ).inc(cell=cell.name, verdict=verdict)
                continue
            return cell
        return None
