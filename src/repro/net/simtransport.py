"""Byte-stream transport over the modelled topology.

:class:`SimNetwork` plays the role of the sockets API for simulated hosts:
servers ``listen(host, port)``, clients ``connect(src_host, dst_host,
port)``. A connection charges every frame against the links of the routed
path (transmission + propagation, with contention through
:class:`~repro.net.links.SharedLink`), and the destination host's firewall
is consulted at connect time — a missing ingress rule fails the dial, just
like the real deployment before the port was opened.

The returned listener/connection objects satisfy the
:mod:`repro.rpc.transport` interface, so RPC daemons and proxies, and the
data-channel file share, run over the simulation unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.clock import Clock, WALL
from repro.errors import (
    AddressInUseError,
    CallTimeoutError,
    CommunicationError,
    ConnectionClosedError,
    LinkDownError,
    NetworkError,
)
from repro.net.links import SharedLink
from repro.net.topology import Topology


class _BytePipe:
    """One direction of a connection: ordered bytes + close flag."""

    def __init__(self) -> None:
        self.chunks: deque[bytes] = deque()
        self.buffered = 0
        self.lock = threading.Lock()
        self.ready = threading.Condition(self.lock)
        self.closed = False

    def push(self, data: bytes) -> None:
        with self.ready:
            if self.closed:
                # a dead pipe swallows writes, like a socket after RST;
                # the *reader* side is what surfaces the failure
                return
            self.chunks.append(data)
            self.buffered += len(data)
            self.ready.notify_all()

    def close(self) -> None:
        with self.ready:
            self.closed = True
            self.ready.notify_all()

    def reset(self) -> None:
        """Abrupt teardown: discard buffered bytes, then close.

        Models a connection RST rather than an orderly FIN — any frame
        sitting in the pipe is lost, so a reader mid-message gets a
        ``ConnectionClosedError`` with bytes pending instead of a clean
        end-of-stream.
        """
        with self.ready:
            self.chunks.clear()
            self.buffered = 0
            self.closed = True
            self.ready.notify_all()


class SimConnection:
    """One endpoint of an established simulated connection."""

    def __init__(
        self,
        local_host: str,
        peer_host: str,
        rx: _BytePipe,
        tx: _BytePipe,
        path: list[SharedLink],
        clock: Clock,
        priority: int = 1,
        metrics=None,
    ):
        self.local_host = local_host
        self.peer_host = peer_host
        self._rx = rx
        self._tx = tx
        self._path = path
        self._clock = clock
        self.priority = priority
        self.metrics = metrics
        self._timeout: float | None = None
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- Connection interface --------------------------------------------
    def sendall(self, data: bytes) -> None:
        if self._closed or self._tx.closed:
            raise ConnectionClosedError(
                f"connection {self.local_host}->{self.peer_host} is closed"
            )
        # Charge each hop; SharedLink serialises concurrent senders, which
        # is where cross-traffic delay comes from in benchmark CH1.
        # Propagation latency is accumulated and slept once (time.sleep
        # granularity makes per-hop micro-sleeps dominate otherwise).
        pending_latency = 0.0
        metrics = self.metrics
        try:
            for link in self._path:
                owed = link.transmit(
                    len(data), charge_latency=False, priority=self.priority
                )
                pending_latency += owed
                if metrics is not None:
                    metrics.counter(
                        "net.link.bytes_total", "payload bytes carried per link"
                    ).inc(len(data), link=link.name)
                    metrics.gauge(
                        "net.link.latency_s",
                        "last observed one-way latency per link",
                    ).set(owed, link=link.name)
        except LinkDownError as exc:
            # surface as a transport error so the RPC client treats it
            # like any other failed send (close + optionally retry); the
            # LinkDownError cause is preserved for diagnostics
            if metrics is not None:
                metrics.counter(
                    "net.link.down_errors_total", "sends lost to a down link"
                ).inc()
            raise CommunicationError(
                f"send {self.local_host}->{self.peer_host} failed: {exc}"
            ) from exc
        if metrics is not None:
            metrics.gauge(
                "net.path.rtt_s",
                "last observed round-trip latency estimate per peer pair",
            ).set(
                2.0 * pending_latency,
                src=self.local_host,
                dst=self.peer_host,
            )
            if pending_latency > 0.0:
                metrics.gauge(
                    "net.path.throughput_bps",
                    "payload bits over one-way path delay, last send",
                ).set(
                    len(data) * 8.0 / pending_latency,
                    src=self.local_host,
                    dst=self.peer_host,
                )
        if pending_latency > 0.0:
            self._clock.sleep(pending_latency)
        self._tx.push(data)
        self.bytes_sent += len(data)

    def recv_exactly(self, size: int) -> bytes:
        out = bytearray()
        # The receive timeout guards a *real* thread blocking on a real
        # condition variable, so it must run on wall time even when the
        # simulation charges latency on a virtual clock.
        deadline = (
            None if self._timeout is None else time.monotonic() + self._timeout
        )
        with self._rx.ready:
            while len(out) < size:
                if self._rx.buffered:
                    needed = size - len(out)
                    chunk = self._rx.chunks[0]
                    if len(chunk) <= needed:
                        out += self._rx.chunks.popleft()
                        self._rx.buffered -= len(chunk)
                    else:
                        out += chunk[:needed]
                        self._rx.chunks[0] = chunk[needed:]
                        self._rx.buffered -= needed
                    continue
                if self._rx.closed:
                    raise ConnectionClosedError(
                        f"peer {self.peer_host} closed with "
                        f"{size - len(out)} bytes pending"
                    )
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise CallTimeoutError(
                            f"recv from {self.peer_host} timed out"
                        )
                    self._rx.ready.wait(timeout=remaining)
                else:
                    self._rx.ready.wait()
        self.bytes_received += size
        return bytes(out)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._tx.close()
            self._rx.close()

    def reset(self) -> None:
        """Kill the connection abruptly, dropping in-flight bytes."""
        self._closed = True
        self._tx.reset()
        self._rx.reset()

    def settimeout(self, timeout: float | None) -> None:
        self._timeout = timeout

    @property
    def peer(self) -> str:
        return self.peer_host


@dataclass
class _PendingDial:
    connection_for_server: SimConnection
    ready: threading.Event = field(default_factory=threading.Event)


class SimListener:
    """Server side of an address binding."""

    def __init__(self, network: "SimNetwork", host: str, port: int):
        self._network = network
        self._host = host
        self._port = port
        self._backlog: deque[_PendingDial] = deque()
        self._lock = threading.Lock()
        self._arrival = threading.Condition(self._lock)
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self._port)

    def _enqueue(self, dial: _PendingDial) -> None:
        with self._arrival:
            if self._closed:
                raise ConnectionClosedError(
                    f"listener {self._host}:{self._port} is closed"
                )
            self._backlog.append(dial)
            self._arrival.notify()

    def accept(self) -> SimConnection:
        with self._arrival:
            while not self._backlog:
                if self._closed:
                    raise ConnectionClosedError(
                        f"listener {self._host}:{self._port} is closed"
                    )
                self._arrival.wait()
            dial = self._backlog.popleft()
        dial.ready.set()
        return dial.connection_for_server

    def close(self) -> None:
        with self._arrival:
            self._closed = True
            self._arrival.notify_all()
        self._network._unbind(self._host, self._port)


class SimNetwork:
    """Sockets facade over a :class:`~repro.net.topology.Topology`."""

    def __init__(self, topology: Topology, clock: Clock | None = None):
        self.topology = topology
        self.clock = clock or topology.clock or WALL
        self._listeners: dict[tuple[str, int], SimListener] = {}
        self._lock = threading.Lock()
        self.connects_attempted = 0
        self.connects_denied = 0
        #: optional repro.obs.MetricsRegistry; assign to meter every
        #: connection established after the assignment (per-link byte
        #: counts, latency gauges, path RTT/throughput)
        self.metrics = None
        # live connections, kept so chaos can reset them mid-run:
        # (src_host, dst_host, port, client_conn)
        self._connections: list[tuple[str, str, int, SimConnection]] = []

    # -- server side ---------------------------------------------------------
    def listen(self, host: str, port: int) -> SimListener:
        """Bind a listener at (host, port)."""
        self.topology.host(host)  # validate
        if not 0 < port < 65536:
            raise NetworkError(f"port out of range: {port}")
        with self._lock:
            key = (host, port)
            if key in self._listeners:
                raise AddressInUseError(f"{host}:{port} already bound")
            listener = SimListener(self, host, port)
            self._listeners[key] = listener
            return listener

    def _unbind(self, host: str, port: int) -> None:
        with self._lock:
            self._listeners.pop((host, port), None)

    # -- client side ---------------------------------------------------------
    def connect(
        self,
        src_host: str,
        dst_host: str,
        port: int,
        allowed_networks: set[str] | None = None,
        priority: int = 1,
    ) -> SimConnection:
        """Dial ``dst_host:port`` from ``src_host``.

        Checks routing (optionally restricted to ``allowed_networks`` —
        the channel-separation mechanism), then the destination firewall
        (source facility and host are what rules match on), then completes
        the handshake with a round trip of connection-setup latency.
        """
        self.connects_attempted += 1
        source = self.topology.host(src_host)
        self.topology.host(dst_host)
        path = self.topology.route(src_host, dst_host, allowed_networks)

        try:
            self.topology.host(dst_host).firewall.check(
                src_host, source.facility, port
            )
        except Exception:
            self.connects_denied += 1
            raise

        with self._lock:
            listener = self._listeners.get((dst_host, port))
        if listener is None:
            raise CommunicationError(f"connection refused: {dst_host}:{port}")

        client_to_server = _BytePipe()
        server_to_client = _BytePipe()
        reverse_path = list(reversed(path))
        client_conn = SimConnection(
            src_host, dst_host, rx=server_to_client, tx=client_to_server,
            path=path, clock=self.clock, priority=priority,
            metrics=self.metrics,
        )
        server_conn = SimConnection(
            dst_host, src_host, rx=client_to_server, tx=server_to_client,
            path=reverse_path, clock=self.clock, priority=priority,
            metrics=self.metrics,
        )
        # SYN + SYN/ACK: one round trip of pure latency, slept in one go.
        handshake_latency = 0.0
        for link in path:
            handshake_latency += link.transmit(64, charge_latency=False)
        for link in reverse_path:
            handshake_latency += link.transmit(64, charge_latency=False)
        if handshake_latency > 0.0:
            self.clock.sleep(handshake_latency)
        dial = _PendingDial(connection_for_server=server_conn)
        listener._enqueue(dial)
        with self._lock:
            self._connections.append((src_host, dst_host, port, client_conn))
        return client_conn

    def reset_connections(
        self,
        src_host: str | None = None,
        dst_host: str | None = None,
        port: int | None = None,
    ) -> int:
        """Abruptly reset live connections matching the given endpoints.

        Any ``None`` criterion matches everything. Returns the number of
        connections reset. Both ends of each matching connection see a
        :class:`~repro.errors.ConnectionClosedError` on their next I/O,
        with any in-flight bytes discarded — the simulated equivalent of
        a firewall or NAT dropping state mid-session.
        """
        with self._lock:
            live = [
                entry
                for entry in self._connections
                if not entry[3]._closed
            ]
            self._connections = live
            victims = [
                conn
                for (src, dst, prt, conn) in live
                if (src_host is None or src == src_host)
                and (dst_host is None or dst == dst_host)
                and (port is None or prt == port)
            ]
        for conn in victims:
            conn.reset()
        return len(victims)

    def connection_factory(
        self,
        src_host: str,
        allowed_networks: set[str] | None = None,
        priority: int = 1,
    ):
        """Adapter for :class:`repro.rpc.proxy.Proxy`: dials from a fixed
        host, optionally pinned to specific hub networks (channel
        separation) and/or to a transmission priority (QoS mode)."""

        def factory(dst_host: str, port: int) -> SimConnection:
            return self.connect(
                src_host, dst_host, port, allowed_networks, priority
            )

        return factory
