"""Facilities, hosts, hub networks and routing.

The model is a bipartite graph: hosts attach to hub networks through
:class:`SharedLink` attachments. A packet's path host→…→host alternates
host and network nodes; only hosts marked ``is_gateway`` may appear as
intermediates (paper §3.1: "dedicated hub networks ... connected to a
gateway computer which in turn is connected to the site network").

networkx provides shortest-path routing over the graph; the path's link
objects are what the transport charges for each frame.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import networkx as nx

from repro.clock import Clock, WALL
from repro.errors import NetworkError, NoRouteError
from repro.net.firewall import Firewall
from repro.net.links import LinkSpec, PriorityLink, SharedLink


@dataclass
class Facility:
    """A named administrative/security domain (e.g. ACL, K200)."""

    name: str
    description: str = ""


@dataclass
class Host:
    """A computer in the ecosystem.

    Attributes:
        name: unique host name, e.g. ``"acl-control-agent"``.
        facility: owning facility name.
        platform: ``"windows"`` or ``"linux"`` (documentation only, but the
            paper makes a point of the cross-platform mix).
        is_gateway: may forward traffic between its attached networks.
        firewall: ingress policy for connections terminating here.
    """

    name: str
    facility: str
    platform: str = "linux"
    is_gateway: bool = False
    firewall: Firewall = field(default_factory=Firewall)


@dataclass
class HubNetwork:
    """A LAN segment (instrument hub, site backbone, WAN)."""

    name: str
    facility: str
    description: str = ""


class Topology:
    """The ecosystem graph with attachment links and route computation."""

    def __init__(self, clock: Clock | None = None):
        self.clock = clock or WALL
        self._graph = nx.Graph()
        self._facilities: dict[str, Facility] = {}
        self._hosts: dict[str, Host] = {}
        self._networks: dict[str, HubNetwork] = {}
        self._links: dict[tuple[str, str], SharedLink] = {}
        self._lock = threading.Lock()

    # -- construction -----------------------------------------------------
    def add_facility(self, name: str, description: str = "") -> Facility:
        with self._lock:
            if name in self._facilities:
                raise NetworkError(f"facility already exists: {name!r}")
            facility = Facility(name, description)
            self._facilities[name] = facility
            return facility

    def add_host(
        self,
        name: str,
        facility: str,
        platform: str = "linux",
        is_gateway: bool = False,
    ) -> Host:
        with self._lock:
            if name in self._hosts or name in self._networks:
                raise NetworkError(f"node name already in use: {name!r}")
            if facility not in self._facilities:
                raise NetworkError(f"unknown facility: {facility!r}")
            host = Host(name, facility, platform, is_gateway)
            self._hosts[name] = host
            self._graph.add_node(name, kind="host")
            return host

    def add_network(
        self, name: str, facility: str, description: str = ""
    ) -> HubNetwork:
        with self._lock:
            if name in self._hosts or name in self._networks:
                raise NetworkError(f"node name already in use: {name!r}")
            if facility not in self._facilities:
                raise NetworkError(f"unknown facility: {facility!r}")
            network = HubNetwork(name, facility, description)
            self._networks[name] = network
            self._graph.add_node(name, kind="network")
            return network

    def attach(
        self,
        host: str,
        network: str,
        spec: LinkSpec,
        priority_queuing: bool = False,
    ) -> SharedLink:
        """Plug a host NIC into a hub network with the given link spec.

        ``priority_queuing`` swaps the FCFS transmitter for a
        :class:`~repro.net.links.PriorityLink` (control frames preempt
        queued bulk frames — the QoS alternative to physically separate
        channels).
        """
        with self._lock:
            if host not in self._hosts:
                raise NetworkError(f"unknown host: {host!r}")
            if network not in self._networks:
                raise NetworkError(f"unknown network: {network!r}")
            key = (host, network)
            if key in self._links:
                raise NetworkError(f"{host!r} already attached to {network!r}")
            link_class = PriorityLink if priority_queuing else SharedLink
            link = link_class(f"{host}<->{network}", spec, clock=self.clock)
            self._links[key] = link
            self._graph.add_edge(host, network)
            return link

    # -- queries ---------------------------------------------------------------
    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host: {name!r}") from None

    def network(self, name: str) -> HubNetwork:
        try:
            return self._networks[name]
        except KeyError:
            raise NetworkError(f"unknown network: {name!r}") from None

    def link(self, host: str, network: str) -> SharedLink:
        try:
            return self._links[(host, network)]
        except KeyError:
            raise NetworkError(f"no attachment {host!r} -> {network!r}") from None

    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def networks(self) -> list[HubNetwork]:
        return list(self._networks.values())

    # -- routing ---------------------------------------------------------------
    def _shortest_path(
        self, src: str, dst: str, allowed_networks: set[str] | None
    ) -> list[str]:
        if src not in self._hosts:
            raise NetworkError(f"unknown source host: {src!r}")
        if dst not in self._hosts:
            raise NetworkError(f"unknown destination host: {dst!r}")

        def admissible(node: str) -> bool:
            if node in (src, dst):
                return True
            if node in self._networks:
                return allowed_networks is None or node in allowed_networks
            return self._hosts[node].is_gateway

        view = nx.subgraph_view(self._graph, filter_node=admissible)
        try:
            return nx.shortest_path(view, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            constraint = (
                f" via networks {sorted(allowed_networks)}" if allowed_networks else ""
            )
            raise NoRouteError(
                f"no route from {src!r} to {dst!r}{constraint}"
            ) from None

    def route(
        self,
        src: str,
        dst: str,
        allowed_networks: set[str] | None = None,
    ) -> list[SharedLink]:
        """Links traversed from ``src`` host to ``dst`` host.

        Intermediate hosts must be gateways; the shortest admissible path
        wins. ``allowed_networks`` restricts which hub networks the path
        may cross — this is how the ICE pins data-channel traffic onto its
        dedicated networks. Raises :class:`NoRouteError` when no path
        satisfies the constraints.
        """
        if src == dst:
            return []
        path = self._shortest_path(src, dst, allowed_networks)
        links: list[SharedLink] = []
        for a, b in zip(path, path[1:]):
            host, network = (a, b) if a in self._hosts else (b, a)
            links.append(self._links[(host, network)])
        return links

    def path_hosts(
        self,
        src: str,
        dst: str,
        allowed_networks: set[str] | None = None,
    ) -> list[str]:
        """Host names along the route (gateways included), for audits."""
        if src == dst:
            return [src]
        path = self._shortest_path(src, dst, allowed_networks)
        return [node for node in path if node in self._hosts]
