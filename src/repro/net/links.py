"""Link characteristics and contention.

A :class:`LinkSpec` is the static description (propagation latency,
bandwidth, optional jitter). A :class:`SharedLink` is the runtime object:
one transmission at a time, so when a bulk data transfer and a control
command share a link the control command queues behind the data frames —
which is precisely the effect the paper's channel-separation design
eliminates, and what benchmark CH1 measures.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable

from repro.clock import Clock, WALL
from repro.errors import LinkDownError


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters.

    Attributes:
        latency_s: one-way propagation delay in seconds.
        bandwidth_bps: capacity in bits per second (None = infinite).
        jitter_s: uniform jitter amplitude added to latency (0 disables).
    """

    latency_s: float = 0.0
    bandwidth_bps: float | None = None
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be > 0, got {self.bandwidth_bps}")
        if self.jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {self.jitter_s}")

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds the link is occupied pushing ``size_bytes``."""
        if self.bandwidth_bps is None:
            return 0.0
        return (size_bytes * 8.0) / self.bandwidth_bps


# Common presets used by the facility builder.
LAN_HUB = LinkSpec(latency_s=0.0002, bandwidth_bps=1e9)  # instrument hub, 1 GbE
SITE_BACKBONE = LinkSpec(latency_s=0.0005, bandwidth_bps=10e9)  # campus core
CROSS_FACILITY = LinkSpec(latency_s=0.002, bandwidth_bps=1e9)  # ACL <-> K200
SERIAL_USB = LinkSpec(latency_s=0.001, bandwidth_bps=1e6)  # instrument tether


class SharedLink:
    """Runtime link with first-come-first-served transmission.

    ``transmit`` blocks the calling thread for the serialisation time while
    holding the link, then charges propagation latency after release —
    multiple frames pipeline through propagation but not through the
    transmitter, matching a store-and-forward hop.
    """

    def __init__(
        self,
        name: str,
        spec: LinkSpec,
        clock: Clock | None = None,
        rng: random.Random | None = None,
    ):
        self.name = name
        self.spec = spec
        self.clock = clock or WALL
        self._rng = rng or random.Random(0xC0FFEE)
        self._tx_lock = threading.Lock()
        self._up = True
        self.bytes_carried = 0
        self.transmissions = 0
        #: additional one-way latency charged per frame (chaos "spike")
        self.extra_latency_s = 0.0
        self._transmit_hooks: list[Callable[["SharedLink", int], None]] = []

    @property
    def is_up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        """Administratively raise/drop the link (fault injection)."""
        self._up = up

    def add_transmit_hook(
        self, hook: Callable[["SharedLink", int], None]
    ) -> Callable[[], None]:
        """Register ``hook(link, size_bytes)`` fired at the *start* of every
        transmit attempt, before the link-up check — so a hook that drops
        the link fails the very frame that triggered it. Returns an
        unsubscribe function. This is the chaos controller's attachment
        point; hooks run outside the transmitter lock and must not block.
        """
        self._transmit_hooks.append(hook)

        def unsubscribe() -> None:
            if hook in self._transmit_hooks:
                self._transmit_hooks.remove(hook)

        return unsubscribe

    def _fire_transmit_hooks(self, size_bytes: int) -> None:
        for hook in list(self._transmit_hooks):
            hook(self, size_bytes)

    def transmit(
        self,
        size_bytes: int,
        charge_latency: bool = True,
        priority: int = 1,
    ) -> float:
        """Charge one frame's traversal.

        ``priority`` is accepted for interface uniformity with
        :class:`PriorityLink` and ignored here (plain FCFS).

        Serialisation time is always charged under the transmitter lock
        (that is where contention lives). Propagation latency is either
        slept here (default) or *returned* for the caller to charge in one
        batch — a multi-hop path sleeps once instead of per hop, which
        matters because ``time.sleep`` has ~1 ms granularity.

        Returns:
            Seconds of propagation latency still owed (0 when charged).

        Raises:
            LinkDownError: the link is down.
        """
        self._fire_transmit_hooks(size_bytes)
        if not self._up:
            raise LinkDownError(f"link {self.name} is down")
        with self._tx_lock:
            if not self._up:
                raise LinkDownError(f"link {self.name} went down mid-queue")
            self.clock.sleep(self.spec.transmission_time(size_bytes))
            self.bytes_carried += size_bytes
            self.transmissions += 1
        latency = self.spec.latency_s + self.extra_latency_s
        if self.spec.jitter_s:
            latency += self._rng.uniform(0.0, self.spec.jitter_s)
        if charge_latency:
            self.clock.sleep(latency)
            return 0.0
        return latency

    def __repr__(self) -> str:
        return f"SharedLink({self.name!r}, {self.spec})"


class PriorityLink(SharedLink):
    """A shared link with segmented, priority-preemptive transmission.

    Alternative to *physically* separate channels (paper §3.1): one link,
    but frames are serialised in MTU-sized segments and the transmitter
    re-arbitrates by priority at every segment boundary — a queued
    control frame (priority 0) waits for at most one in-flight *segment*
    of a bulk transfer (priority 1), not the whole frame. This is how
    real QoS queuing disciplines bound control latency on shared links.

    The CH1 benchmark compares all three designs: shared FCFS,
    priority-queued shared, and physically separate.
    """

    #: re-arbitration granularity (a jumbo-frame-ish segment)
    SEGMENT_BYTES = 16 * 1024

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queue: list[tuple[int, int]] = []  # (priority, ticket)
        self._ticket_counter = 0
        self._busy = False
        self._gate = threading.Condition()

    def _acquire_turn(self, priority: int) -> None:
        with self._gate:
            self._ticket_counter += 1
            me = (priority, self._ticket_counter)
            self._queue.append(me)
            self._queue.sort()
            while self._busy or self._queue[0] != me:
                self._gate.wait()
            self._queue.remove(me)
            self._busy = True

    def _release_turn(self) -> None:
        with self._gate:
            self._busy = False
            self._gate.notify_all()

    def transmit(
        self,
        size_bytes: int,
        charge_latency: bool = True,
        priority: int = 1,
    ) -> float:
        self._fire_transmit_hooks(size_bytes)
        if not self._up:
            raise LinkDownError(f"link {self.name} is down")
        remaining = size_bytes
        while True:
            segment = min(remaining, self.SEGMENT_BYTES)
            self._acquire_turn(priority)
            try:
                if not self._up:
                    raise LinkDownError(f"link {self.name} went down mid-queue")
                self.clock.sleep(self.spec.transmission_time(segment))
                self.bytes_carried += segment
            finally:
                self._release_turn()
            remaining -= segment
            if remaining <= 0:
                break
        self.transmissions += 1
        latency = self.spec.latency_s + self.extra_latency_s
        if self.spec.jitter_s:
            latency += self._rng.uniform(0.0, self.spec.jitter_s)
        if charge_latency:
            self.clock.sleep(latency)
            return 0.0
        return latency
