"""Per-host ingress firewall with ordered rules.

Paper §4.1: "we align the facilities' network domains, and open ingress
TCP ports on workstation firewalls to enable data and control traffic
across ICE networks". The model evaluates rules first-match-wins against
(source host, source facility, destination port); the default policy is
deny, so an ICE deployment must explicitly open its Pyro and file-share
ports — the integration tests exercise both the open and the forgotten-
rule paths.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from enum import Enum

from repro.errors import FirewallDeniedError


class Action(Enum):
    ALLOW = "allow"
    DENY = "deny"


@dataclass(frozen=True)
class FirewallRule:
    """One ingress rule.

    Attributes:
        action: ALLOW or DENY.
        src_host: glob over the source host name (``"*"`` matches any).
        src_facility: glob over the source facility name.
        port_range: inclusive (low, high) destination TCP ports.
        comment: free text shown in audit logs.
    """

    action: Action
    src_host: str = "*"
    src_facility: str = "*"
    port_range: tuple[int, int] = (1, 65535)
    comment: str = ""

    def __post_init__(self) -> None:
        low, high = self.port_range
        if not (0 < low <= high < 65536):
            raise ValueError(f"invalid port range {self.port_range}")

    def matches(self, src_host: str, src_facility: str, dst_port: int) -> bool:
        low, high = self.port_range
        return (
            low <= dst_port <= high
            and fnmatch.fnmatchcase(src_host, self.src_host)
            and fnmatch.fnmatchcase(src_facility, self.src_facility)
        )


class Firewall:
    """Ordered first-match rule list with a default policy.

    The default policy is DENY: a fresh host accepts nothing, exactly like
    a lab Windows box before IT opens the Pyro port.
    """

    def __init__(self, default: Action = Action.DENY):
        self.default = default
        self._rules: list[FirewallRule] = []
        self.evaluations = 0
        self.denials = 0

    def add_rule(self, rule: FirewallRule) -> None:
        """Append a rule (lowest priority so far)."""
        self._rules.append(rule)

    def allow_port(
        self,
        port: int,
        src_host: str = "*",
        src_facility: str = "*",
        comment: str = "",
    ) -> None:
        """Convenience: open a single ingress port."""
        self.add_rule(
            FirewallRule(
                action=Action.ALLOW,
                src_host=src_host,
                src_facility=src_facility,
                port_range=(port, port),
                comment=comment,
            )
        )

    @property
    def rules(self) -> list[FirewallRule]:
        return list(self._rules)

    def evaluate(self, src_host: str, src_facility: str, dst_port: int) -> Action:
        """First matching rule's action, else the default policy."""
        self.evaluations += 1
        for rule in self._rules:
            if rule.matches(src_host, src_facility, dst_port):
                if rule.action is Action.DENY:
                    self.denials += 1
                return rule.action
        if self.default is Action.DENY:
            self.denials += 1
        return self.default

    def check(self, src_host: str, src_facility: str, dst_port: int) -> None:
        """Raise :class:`FirewallDeniedError` unless traffic is allowed."""
        if self.evaluate(src_host, src_facility, dst_port) is Action.DENY:
            raise FirewallDeniedError(
                f"ingress to port {dst_port} from {src_facility}/{src_host} denied"
            )
