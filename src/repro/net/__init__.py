"""ICE network model: facilities, hub networks, gateways, firewalls, links.

Paper §3.1 describes the ecosystem's network design: instruments sit on
dedicated *hub networks* behind a *gateway computer* with multiple NICs;
facility firewalls must open specific ingress TCP ports; *control* and
*data* traffic travel on separate channels so bulk transfers do not delay
steering commands.

This package models exactly that, concretely enough to measure it:

- :class:`Topology` holds facilities, hosts, hub networks and their
  attachments (networkx graph underneath for routing);
- :class:`Firewall` evaluates ordered ingress rules per host;
- :class:`LinkSpec` gives each attachment latency and bandwidth; shared
  links serialise transmissions, so contention is emergent, not scripted;
- :class:`SimNetwork` is a byte-stream transport over the model, API
  compatible with :mod:`repro.rpc.transport`, so daemons and proxies run
  unmodified over the simulated cross-facility path.
"""

from repro.net.links import LinkSpec, SharedLink
from repro.net.firewall import Firewall, FirewallRule, Action
from repro.net.topology import Topology, Host, HubNetwork, Facility
from repro.net.simtransport import SimNetwork, SimListener, SimConnection
from repro.net.chaos import ChaosController

__all__ = [
    "ChaosController",
    "LinkSpec",
    "SharedLink",
    "Firewall",
    "FirewallRule",
    "Action",
    "Topology",
    "Host",
    "HubNetwork",
    "Facility",
    "SimNetwork",
    "SimListener",
    "SimConnection",
]
