"""Deterministic fault injection for the simulated ICE network.

Chaos engineering against a *simulated* facility network: the controller
attaches transmit hooks to topology links and fires faults after an exact
number of observed frames — link flaps, latency spikes, connection resets,
partitions. Frame counts (not timers) trigger everything, so a scenario
replays identically under :class:`~repro.clock.WallClock` and
:class:`~repro.clock.VirtualClock` and regardless of host speed.

Hooks fire at the *start* of a transmit attempt, before the link-up check
(:meth:`~repro.net.links.SharedLink.add_transmit_hook`), so the frame that
trips a flap is itself the first casualty, and recovery attempts made
while the link is down count toward bringing it back — the retry traffic
is part of the experiment.

Typical scenario (the chaos e2e test)::

    chaos = ChaosController(network, event_log=log)
    chaos.flap_link("k200-dgx", "ornl-wan", after_frames=20, down_frames=3)
    chaos.reset_connections_after(
        "acl-control-agent", "acl-hub", after_frames=40, port=CONTROL_PORT
    )
    try:
        run_cv_workflow(...)          # survives via ResilientProxy
    finally:
        chaos.stop()                  # detach hooks, restore links
"""

from __future__ import annotations

import threading
from typing import Any

from repro.logging_utils import EventLog
from repro.net.links import SharedLink
from repro.net.simtransport import SimNetwork


class ChaosController:
    """Schedules and injects faults into a :class:`SimNetwork`.

    Args:
        network: the simulated network under test.
        event_log: optional structured log; every injected fault emits a
            ``chaos`` event, so tests can assert the scenario actually
            fired (a chaos test whose faults never trigger proves nothing).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            every injected fault counts into ``chaos.faults_total{kind}``
            so the health engine can tell deliberate fault injection from
            organic trouble.

    Attributes:
        injections: chronological record of fired faults, as dicts.
    """

    def __init__(
        self,
        network: SimNetwork,
        event_log: EventLog | None = None,
        metrics: Any = None,
    ):
        self.network = network
        self.topology = network.topology
        self._event_log = event_log
        self.metrics = metrics
        self._lock = threading.Lock()
        self._unsubscribers: list = []
        self._touched_links: set[SharedLink] = set()
        self.injections: list[dict[str, Any]] = []

    # -- bookkeeping -------------------------------------------------------
    def _emit(self, kind: str, message: str, **data: Any) -> None:
        self.injections.append({"kind": kind, "message": message, **data})
        if self._event_log is not None:
            self._event_log.emit("chaos", kind, message, **data)
        if self.metrics is not None:
            self.metrics.counter(
                "chaos.faults_total", "deliberately injected faults"
            ).inc(kind=kind)

    def _watch(self, link: SharedLink, hook) -> None:
        self._touched_links.add(link)
        self._unsubscribers.append(link.add_transmit_hook(hook))

    def fired(self, kind: str | None = None) -> list[dict[str, Any]]:
        """Injected-fault records, optionally filtered by kind."""
        with self._lock:
            snapshot = list(self.injections)
        if kind is None:
            return snapshot
        return [record for record in snapshot if record["kind"] == kind]

    # -- scheduled faults --------------------------------------------------
    def flap_link(
        self,
        host: str,
        network: str,
        after_frames: int,
        down_frames: int = 3,
    ) -> None:
        """Drop the ``host<->network`` link mid-run, then restore it.

        The link goes down once ``after_frames`` frames have crossed it;
        it stays down for exactly ``down_frames`` *attempted* frames (each
        fails with ``LinkDownError``, surfaced to RPC clients as
        ``CommunicationError``) and comes back up on the attempt after
        that. Retry traffic therefore drives the recovery clock — a
        client that stops retrying never sees the link heal, just as a
        real operator only learns a WAN path recovered by re-trying it.
        """
        link = self.topology.link(host, network)
        state = {"seen": 0, "failed": 0, "phase": "armed"}

        def hook(lnk: SharedLink, size_bytes: int) -> None:
            with self._lock:
                if state["phase"] == "armed":
                    state["seen"] += 1
                    if state["seen"] > after_frames:
                        state["phase"] = "down"
                        lnk.set_up(False)
                        self._emit(
                            "link-down",
                            f"flap: {lnk.name} down after {after_frames} frames",
                            link=lnk.name,
                            after_frames=after_frames,
                        )
                if state["phase"] == "down":
                    if state["failed"] >= down_frames:
                        state["phase"] = "done"
                        lnk.set_up(True)
                        self._emit(
                            "link-up",
                            f"flap: {lnk.name} restored after "
                            f"{state['failed']} failed attempts",
                            link=lnk.name,
                            failed_attempts=state["failed"],
                        )
                    else:
                        state["failed"] += 1

        self._watch(link, hook)

    def spike_latency(
        self,
        host: str,
        network: str,
        after_frames: int,
        extra_s: float,
        duration_frames: int = 10,
    ) -> None:
        """Add ``extra_s`` of one-way latency for a window of frames.

        Kicks in after ``after_frames`` frames and clears after a further
        ``duration_frames`` — modelling transient congestion on a shared
        campus or WAN segment rather than an outage.
        """
        link = self.topology.link(host, network)
        state = {"seen": 0, "phase": "armed"}

        def hook(lnk: SharedLink, size_bytes: int) -> None:
            with self._lock:
                state["seen"] += 1
                if state["phase"] == "armed" and state["seen"] > after_frames:
                    state["phase"] = "spiking"
                    state["until"] = state["seen"] + duration_frames
                    lnk.extra_latency_s += extra_s
                    self._emit(
                        "latency-spike",
                        f"spike: +{extra_s}s on {lnk.name} "
                        f"for {duration_frames} frames",
                        link=lnk.name,
                        extra_s=extra_s,
                        duration_frames=duration_frames,
                    )
                elif state["phase"] == "spiking" and state["seen"] > state["until"]:
                    state["phase"] = "done"
                    lnk.extra_latency_s -= extra_s
                    self._emit(
                        "latency-clear",
                        f"spike cleared on {lnk.name}",
                        link=lnk.name,
                    )

        self._watch(link, hook)

    def reset_connections_after(
        self,
        host: str,
        network: str,
        after_frames: int,
        src_host: str | None = None,
        dst_host: str | None = None,
        port: int | None = None,
    ) -> None:
        """Reset matching connections once a link has carried N frames.

        Watches the ``host<->network`` attachment as the trigger, then
        calls :meth:`SimNetwork.reset_connections` with the endpoint
        filters — e.g. kill every control-channel session to the agent
        the moment the 40th frame crosses the lab hub. One-shot.
        """
        link = self.topology.link(host, network)
        state = {"seen": 0, "fired": False}

        def hook(lnk: SharedLink, size_bytes: int) -> None:
            with self._lock:
                if state["fired"]:
                    return
                state["seen"] += 1
                if state["seen"] <= after_frames:
                    return
                state["fired"] = True
            count = self.network.reset_connections(
                src_host=src_host, dst_host=dst_host, port=port
            )
            with self._lock:
                self._emit(
                    "connection-reset",
                    f"reset {count} connection(s) "
                    f"(src={src_host}, dst={dst_host}, port={port}) "
                    f"after {after_frames} frames on {lnk.name}",
                    link=lnk.name,
                    connections=count,
                    src_host=src_host,
                    dst_host=dst_host,
                    port=port,
                )

        self._watch(link, hook)

    # -- immediate faults --------------------------------------------------
    def reset_now(
        self,
        src_host: str | None = None,
        dst_host: str | None = None,
        port: int | None = None,
    ) -> int:
        """Reset matching live connections immediately."""
        count = self.network.reset_connections(
            src_host=src_host, dst_host=dst_host, port=port
        )
        with self._lock:
            self._emit(
                "connection-reset",
                f"reset {count} connection(s) now "
                f"(src={src_host}, dst={dst_host}, port={port})",
                connections=count,
                src_host=src_host,
                dst_host=dst_host,
                port=port,
            )
        return count

    def partition(self, attachments: list[tuple[str, str]]) -> None:
        """Drop a set of ``(host, network)`` attachments at once.

        Stays down until :meth:`heal` (or :meth:`stop`) — a hard
        partition, unlike the self-healing :meth:`flap_link`.
        """
        with self._lock:
            for host, network in attachments:
                link = self.topology.link(host, network)
                self._touched_links.add(link)
                link.set_up(False)
                self._emit(
                    "partition", f"partition: {link.name} down", link=link.name
                )

    def heal(self) -> None:
        """Bring every link this controller touched back up."""
        with self._lock:
            for link in self._touched_links:
                if not link.is_up:
                    link.set_up(True)
                    self._emit("heal", f"heal: {link.name} up", link=link.name)

    # -- process-level faults ----------------------------------------------
    def crash_daemon(
        self,
        ice: Any,
        keep_disk: bool = True,
        flight_recorder: Any = None,
        flight_dir: Any = None,
    ) -> None:
        """Kill the ICE's control daemon abruptly (process-death model).

        Unlike :meth:`reset_now` — which a :class:`ResilientProxy` rides
        out by redialling — this is the daemon *process* dying: listener
        gone, every connection dropped, all in-memory state (dedup cache,
        in-flight handlers) lost. ``keep_disk=False`` additionally wipes
        the durable state (dedup journal, lease epochs), modelling a
        machine whose disk did not survive; the default models the normal
        crash where only memory is lost and a restart replays the journal.

        When a ``flight_recorder`` is passed, a black box is dumped to
        ``flight_dir`` *before* the crash metrics land — the post-mortem
        artifact the operator opens first.
        """
        if flight_recorder is not None and flight_dir is not None:
            try:
                flight_recorder.dump(flight_dir, trigger="chaos-daemon-crash")
            except Exception:  # noqa: BLE001 - the crash must still happen
                pass
        ice.crash_control_daemon(keep_disk=keep_disk)
        with self._lock:
            self._emit(
                "daemon-crash",
                f"control daemon crashed (keep_disk={keep_disk})",
                keep_disk=keep_disk,
            )

    def restart_daemon(self, ice: Any) -> None:
        """Bring a crashed control daemon back on the same address.

        The restarted daemon preloads its dedup journal and lease
        epochs from disk, so idempotent replay and fencing survive the
        crash — the property the recovery e2e asserts.
        """
        ice.restart_control_daemon()
        with self._lock:
            self._emit("daemon-restart", "control daemon restarted")

    def crash_client_mid_round(self, client: Any) -> None:
        """Model the *client* process dying mid-round.

        Abruptly closes the control connection with no teardown protocol
        (no ``Disconnect_SP200``, no drain) — exactly what the daemon
        observes when the steering host loses power. The daemon side may
        have executed the in-flight call; whether it did is unknowable to
        the successor, which is why resume re-issues under the journaled
        idempotency prefix instead of guessing.
        """
        proxy = getattr(client, "_proxy", client)
        try:
            proxy.close()
        except Exception:  # noqa: BLE001 - dying processes do not clean up
            pass
        with self._lock:
            self._emit(
                "client-crash", "client connection dropped mid-round"
            )

    # -- teardown ----------------------------------------------------------
    def stop(self) -> None:
        """Detach all hooks and restore links to a healthy state.

        Safe to call from a ``finally``: repairs anything a scheduled
        fault left broken (a flap that never reached its recovery frame,
        a spike that never cleared, a standing partition).
        """
        with self._lock:
            for unsubscribe in self._unsubscribers:
                unsubscribe()
            self._unsubscribers.clear()
            for link in self._touched_links:
                link.set_up(True)
                link.extra_latency_s = 0.0
