"""Propagation-delay transport wrapper for latency benchmarks.

The simulated WAN in :mod:`repro.net.simnet` charges link latency in the
*sender's* thread, which is right for modelling a shared medium but wrong
for measuring pipelining: back-to-back sends would serialise their
delays. Real propagation delay overlaps — ten frames sent in one burst
all arrive ~RTT/2 later, not 10×RTT/2 apart.

This module wraps any :class:`~repro.rpc.transport.Connection` so that
each ``sendall`` is stamped with a *deliver-at* time and returns
immediately; the **receiver** sleeps until the stamp is due. Delays on
different frames therefore overlap exactly like propagation delay on a
long pipe, which is the property the pipelining benchmark
(`benchmarks/test_bench_pipelining.py`) depends on:

    serial:     N calls  →  N × (RTT + proc)
    pipelined:  N calls  →  RTT + N × proc

Wire format between two wrapped endpoints: each ``sendall`` payload is
prefixed with an 8-byte monotonic deadline and a 4-byte length
(``!dI``). Both sides of a connection must be wrapped.
"""

from __future__ import annotations

import struct
import time
import threading

from repro.rpc.transport import Connection, Listener, TCPListener, connect_tcp

_HEADER = struct.Struct("!dI")


class DelayedConnection(Connection):
    """One endpoint of a delay-stamped byte stream.

    Args:
        inner: the real transport both endpoints share (e.g. TCP
            loopback).
        one_way_s: propagation delay added to every segment, in seconds.

    ``bytes_sent`` / ``bytes_received`` count payload bytes (headers
    excluded), mirroring the sim transport's counters so client metrics
    behave identically over this wrapper.
    """

    def __init__(self, inner: Connection, one_way_s: float):
        self._inner = inner
        self._one_way_s = float(one_way_s)
        self._buffer = bytearray()
        self._recv_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    def sendall(self, data: bytes) -> None:
        deliver_at = time.monotonic() + self._one_way_s
        with self._send_lock:
            self._inner.sendall(_HEADER.pack(deliver_at, len(data)) + bytes(data))
            self.bytes_sent += len(data)

    def recv_exactly(self, size: int) -> bytes:
        with self._recv_lock:
            while len(self._buffer) < size:
                header = self._inner.recv_exactly(_HEADER.size)
                deliver_at, length = _HEADER.unpack(header)
                payload = self._inner.recv_exactly(length) if length else b""
                # the sender returned immediately; propagation is paid
                # here, so delays of back-to-back segments overlap
                remaining = deliver_at - time.monotonic()
                if remaining > 0:
                    time.sleep(remaining)
                self._buffer.extend(payload)
            out = bytes(self._buffer[:size])
            del self._buffer[:size]
            self.bytes_received += size
            return out

    def close(self) -> None:
        self._inner.close()

    def settimeout(self, timeout: float | None) -> None:
        self._inner.settimeout(timeout)

    @property
    def peer(self) -> str:
        return f"delayed+{self._inner.peer}"


class DelayedListener(Listener):
    """Accepts connections and wraps each in a :class:`DelayedConnection`."""

    def __init__(self, inner: Listener, one_way_s: float):
        self._inner = inner
        self._one_way_s = float(one_way_s)

    def accept(self) -> DelayedConnection:
        return DelayedConnection(self._inner.accept(), self._one_way_s)

    def close(self) -> None:
        self._inner.close()

    @property
    def address(self) -> tuple[str, int]:
        return self._inner.address


def delayed_loopback(
    one_way_s: float, host: str = "127.0.0.1"
) -> tuple[DelayedListener, "type(connect_tcp)"]:
    """A loopback listener/dialer pair with symmetric propagation delay.

    Returns ``(listener, connection_factory)``: pass the listener to a
    :class:`~repro.rpc.Daemon` and the factory to a
    :class:`~repro.rpc.Proxy`, and every frame in either direction
    arrives ``one_way_s`` after it was sent — a 2×``one_way_s`` RTT whose
    per-frame delays overlap under pipelining.
    """
    listener = DelayedListener(TCPListener(host, 0), one_way_s)

    def factory(h: str, port: int, timeout: float | None = 5.0) -> DelayedConnection:
        return DelayedConnection(connect_tcp(h, port, timeout=timeout), one_way_s)

    return listener, factory
