"""Counters, gauges and fixed-bucket histograms for every layer.

Prometheus-flavoured but dependency-free: instruments are get-or-create
through a :class:`MetricsRegistry`, label sets are kwargs, and each
(name, labels) pair owns one scalar/bucket state guarded by a lock.
The registry is cheap enough to thread through the RPC hot path — one
dict lookup plus one locked float add per observation — and components
that are handed ``metrics=None`` skip even that.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

#: Default latency buckets (seconds). Chosen for the paper's regimes:
#: sub-ms loopback RPC, ~35 ms ACL<->ORNL WAN RTT, multi-second CV
#: techniques and file-arrival waits.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Label automatically attached to writes when a tenant is bound on the
#: calling context (see :mod:`repro.rpc.context`). Explicit ``tenant=``
#: kwargs always win over the ambient value.
TENANT_LABEL = "tenant"

#: Label *value* that absorbs writes once an instrument hits the
#: registry's per-metric label-set cap. Every label in the folded set is
#: replaced by this sentinel so the overflow series stays a single,
#: bounded bucket no matter how many distinct sets arrive.
OVERFLOW_VALUE = "__overflow__"

#: Metric names under this prefix are the registry's own bookkeeping;
#: they are exempt from tenant injection and the cardinality cap so the
#: guard cannot recurse into itself.
INTERNAL_METRIC_PREFIX = "obs.metrics."

#: Counter (labelled by ``metric=<name>``) counting writes folded into
#: the ``__overflow__`` series by the cardinality cap.
LABEL_OVERFLOW_METRIC = "obs.metrics.label_overflow_total"

_tenant_getter: Callable[[], str | None] | None = None


def _ambient_tenant() -> "str | None":
    """Tenant bound on the calling context, or None.

    Imported lazily: ``repro.obs`` must stay importable without pulling
    in the RPC package (which imports the daemon and proxy machinery at
    package-import time).
    """
    global _tenant_getter
    if _tenant_getter is None:
        try:
            from repro.rpc.context import current_tenant
        except ImportError:  # pragma: no cover - rpc package always ships
            _tenant_getter = lambda: None  # noqa: E731
        else:
            _tenant_getter = current_tenant
    return _tenant_getter()


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


#: Signature of a registry update listener:
#: ``listener(metric_name, kind, labels, value)`` where ``value`` is the
#: new counter/gauge reading or the observed histogram sample.
UpdateListener = Callable[[str, str, dict[str, Any], float], None]


def bucket_quantile(
    buckets: tuple[float, ...],
    bucket_counts: list[int],
    count: int,
    q: float,
    minimum: float,
    maximum: float,
) -> float | None:
    """Estimate the ``q``-quantile from cumulative-style bucket counts.

    Prometheus-flavoured: find the bucket the rank lands in, then
    linearly interpolate between its lower and upper bounds. The result
    is clamped to the observed ``[minimum, maximum]`` so a
    single-observation histogram returns the observation rather than a
    bucket bound, and a rank that falls in the +Inf overflow bucket
    returns the observed maximum (the only honest point estimate there).

    Shared by :meth:`Histogram.quantile` and callers that first merge
    several label sets' bucket counts into one distribution (the health
    engine's aggregate p95).

    Returns None when ``count`` is zero; raises on q outside [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if count <= 0:
        return None
    if q == 0.0:
        return minimum
    if q == 1.0:
        return maximum
    rank = q * count
    cumulative = 0
    lower = 0.0
    for i, bound in enumerate(buckets):
        in_bucket = bucket_counts[i]
        if in_bucket and cumulative + in_bucket >= rank:
            fraction = (rank - cumulative) / in_bucket
            estimate = lower + (bound - lower) * fraction
            return min(max(estimate, minimum), maximum)
        cumulative += in_bucket
        lower = bound
    return maximum


class _Instrument:
    """Shared plumbing: per-label-set state behind one lock."""

    kind = "instrument"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}
        self._registry: "MetricsRegistry | None" = None

    def _notify(self, labels: dict[str, Any], value: float) -> None:
        """Tell the owning registry's update listeners about one write.

        Called *after* the instrument lock is released so a listener that
        itself touches metrics (the telemetry bus does) cannot deadlock.
        Free when nothing is listening: one attribute read.
        """
        registry = self._registry
        if registry is not None and registry._listeners:
            registry._notify_update(self.name, self.kind, labels, value)

    def _new_state(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def _labels_for_write(self, labels: dict[str, Any]) -> dict[str, Any]:
        """Attach the ambient tenant label to a write's label set.

        No-ops when the registry has tenant attribution disabled, the
        caller already passed an explicit ``tenant=``, the metric is
        registry bookkeeping, or no tenant is bound on this context.
        """
        registry = self._registry
        if registry is None or not registry.tenant_labels:
            return labels
        if TENANT_LABEL in labels or self.name.startswith(INTERNAL_METRIC_PREFIX):
            return labels
        tenant = _ambient_tenant()
        if tenant is None:
            return labels
        labels = dict(labels)
        labels[TENANT_LABEL] = tenant
        return labels

    def _state(self, labels: dict[str, Any]) -> Any:
        key = _label_key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._new_state()
            self._series[key] = state
        return state

    def _locate(
        self, labels: dict[str, Any]
    ) -> tuple[Any, dict[str, Any], bool]:
        """Resolve ``labels`` to a series under the cardinality cap.

        Called with the instrument lock held. Returns ``(state,
        effective_labels, folded)``: when the write would create a label
        set beyond the registry's per-metric cap, it is folded into the
        ``__overflow__`` series instead (every label value replaced by
        the sentinel, keys preserved) and ``folded`` is True so the
        caller can count the fold *after* releasing the lock.
        """
        key = _label_key(labels)
        state = self._series.get(key)
        if state is not None:
            return state, labels, False
        registry = self._registry
        cap = registry.max_label_sets if registry is not None else None
        if (
            cap is not None
            and len(self._series) >= cap
            and not self.name.startswith(INTERNAL_METRIC_PREFIX)
        ):
            key = tuple((k, OVERFLOW_VALUE) for k, _ in key)
            labels = dict(key)
            state = self._series.get(key)
            if state is None:
                state = self._new_state()
                self._series[key] = state
            return state, labels, True
        state = self._new_state()
        self._series[key] = state
        return state, labels, False

    def _count_overflow(self) -> None:
        """Count one folded write. Called outside the instrument lock."""
        registry = self._registry
        if registry is not None:
            registry.counter(
                LABEL_OVERFLOW_METRIC,
                "metric writes folded into the __overflow__ series by "
                "the label-cardinality cap",
            ).inc(metric=self.name)

    def labels_seen(self) -> list[dict[str, str]]:
        with self._lock:
            return [dict(key) for key in self._series]

    def series(self) -> Iterator[tuple[dict[str, str], Any]]:
        with self._lock:
            items = list(self._series.items())
        for key, state in items:
            yield dict(key), state


class Counter(_Instrument):
    """Monotonically increasing count (events, bytes, retries)."""

    kind = "counter"

    def _new_state(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase")
        labels = self._labels_for_write(labels)
        with self._lock:
            state, labels, folded = self._locate(labels)
            state[0] += amount
            value = state[0]
        if folded:
            self._count_overflow()
        self._notify(labels, value)

    def value(self, **labels: Any) -> float:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state[0] if state else 0.0

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(state[0] for state in self._series.values())


class Gauge(_Instrument):
    """Point-in-time value (breaker state, link RTT, queue depth)."""

    kind = "gauge"

    def _new_state(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels: Any) -> None:
        labels = self._labels_for_write(labels)
        with self._lock:
            state, labels, folded = self._locate(labels)
            state[0] = float(value)
        if folded:
            self._count_overflow()
        self._notify(labels, float(value))

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        labels = self._labels_for_write(labels)
        with self._lock:
            state, labels, folded = self._locate(labels)
            state[0] += amount
            value = state[0]
        if folded:
            self._count_overflow()
        self._notify(labels, value)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state[0] if state else 0.0


class _HistogramState:
    __slots__ = (
        "bucket_counts",
        "count",
        "total",
        "minimum",
        "maximum",
        "exemplars",
    )

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf overflow
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        #: bucket index -> {"trace_id", "value"}: the most recent traced
        #: observation per bucket (last-wins keeps it one dict per bucket)
        self.exemplars: dict[int, dict[str, Any]] = {}


class Histogram(_Instrument):
    """Fixed-bucket distribution — latency, sizes, arrival gaps.

    Buckets are cumulative-upper-bound style: an observation lands in
    the first bucket whose bound is >= the value, or the +Inf overflow.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
    ):
        super().__init__(name, description)
        self.buckets = tuple(sorted(buckets))

    def _new_state(self) -> _HistogramState:
        return _HistogramState(len(self.buckets))

    def observe(
        self, value: float, exemplar: str | None = None, **labels: Any
    ) -> None:
        """Record one observation.

        ``exemplar`` optionally links the observation to a trace: the
        trace_id of the span that produced it, kept per bucket
        (last-wins), so dashboards and SLO alerts can jump from "the
        p99 bucket" straight to a representative trace.
        """
        labels = self._labels_for_write(labels)
        with self._lock:
            state, labels, folded = self._locate(labels)
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            state.bucket_counts[idx] += 1
            state.count += 1
            state.total += value
            if value < state.minimum:
                state.minimum = value
            if value > state.maximum:
                state.maximum = value
            if exemplar:
                state.exemplars[idx] = {"trace_id": exemplar, "value": value}
        if folded:
            self._count_overflow()
        self._notify(labels, value)

    def snapshot(self, **labels: Any) -> dict[str, Any]:
        """Stats for one label set (zeros when never observed)."""
        with self._lock:
            state = self._series.get(_label_key(labels))
            if state is None or state.count == 0:
                return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
            return {
                "count": state.count,
                "sum": state.total,
                "mean": state.total / state.count,
                "min": state.minimum,
                "max": state.maximum,
                "buckets": {
                    str(bound): state.bucket_counts[i]
                    for i, bound in enumerate(self.buckets)
                }
                | {"+Inf": state.bucket_counts[-1]},
                "exemplars": {
                    self._bucket_name(idx): dict(ex)
                    for idx, ex in sorted(state.exemplars.items())
                },
            }

    def _bucket_name(self, idx: int) -> str:
        return str(self.buckets[idx]) if idx < len(self.buckets) else "+Inf"

    def exemplars(self, **labels: Any) -> list[dict[str, Any]]:
        """Every recorded bucket exemplar whose label set contains
        ``labels`` (pass none to scan all series). Each entry carries
        the series labels, the bucket upper bound and the exemplar's
        ``trace_id``/``value``.
        """
        wanted = {k: str(v) for k, v in labels.items()}
        out: list[dict[str, Any]] = []
        with self._lock:
            items = list(self._series.items())
        for key, state in items:
            series_labels = dict(key)
            if any(series_labels.get(k) != v for k, v in wanted.items()):
                continue
            for idx, ex in sorted(state.exemplars.items()):
                out.append(
                    {
                        "labels": series_labels,
                        "bucket": self._bucket_name(idx),
                        **ex,
                    }
                )
        return out

    def count(self, **labels: Any) -> int:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return state.count if state else 0

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimate the ``q``-quantile for one label set's distribution.

        Interpolated from the cumulative bucket counts (see
        :func:`bucket_quantile`); ``q=0``/``q=1`` return the observed
        min/max exactly. Returns None when nothing was observed.
        """
        with self._lock:
            state = self._series.get(_label_key(labels))
            if state is None:
                if not 0.0 <= q <= 1.0:
                    raise ValueError(f"q must be in [0, 1], got {q}")
                return None
            return bucket_quantile(
                self.buckets,
                state.bucket_counts,
                state.count,
                q,
                state.minimum,
                state.maximum,
            )


class MetricsRegistry:
    """Get-or-create home for every metric in a session.

    One registry is shared by the proxy, daemon, breaker, workflow and
    datachannel layers so ``session.metrics.summarize()`` sees the whole
    run. Re-registering a name returns the existing instrument (kind
    mismatch raises — that is always a programming error).

    Two registry-wide policies apply to every write:

    * **tenant attribution** (``tenant_labels=True``): when the calling
      context has a tenant bound (:func:`repro.rpc.context.current_tenant`
      — the gateway binds it around job execution, the daemon around
      each dispatch), a ``tenant=<id>`` label is attached automatically
      unless the caller passed one explicitly.
    * **cardinality cap** (``max_label_sets``): once an instrument holds
      that many distinct label sets, writes that would create a new one
      are folded into a single ``__overflow__`` series and counted on
      ``obs.metrics.label_overflow_total{metric=<name>}``. Pass ``None``
      to disable. Existing series are never evicted, so readers keep
      exact values for everything admitted before the cap.
    """

    def __init__(
        self,
        max_label_sets: int | None = 256,
        tenant_labels: bool = True,
    ):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}
        self._listeners: list[UpdateListener] = []
        self.max_label_sets = max_label_sets
        self.tenant_labels = tenant_labels

    def _get_or_create(self, cls, name: str, description: str, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, description, **kwargs)
            metric._registry = self
            self._metrics[name] = metric
            return metric

    # -- live update listeners ----------------------------------------------
    def add_update_listener(self, listener: "UpdateListener") -> Callable[[], None]:
        """Call ``listener(name, kind, labels, value)`` after every write.

        The hook behind live telemetry streaming: the
        :class:`~repro.obs.stream.TelemetryBus` subscribes here to turn
        counter increments and gauge/histogram updates into bus events.
        Listeners run outside the instrument lock and must never raise
        (exceptions are swallowed — observability cannot break the
        operation it observes). Returns an unsubscribe callable.
        """
        with self._lock:
            self._listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._listeners.remove(listener)
                except ValueError:
                    pass

        return unsubscribe

    def _notify_update(
        self, name: str, kind: str, labels: dict[str, Any], value: float
    ) -> None:
        for listener in list(self._listeners):
            try:
                listener(name, kind, labels, value)
            except Exception:  # noqa: BLE001 - listeners must never break writes
                pass

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- reporting ----------------------------------------------------------
    def summarize(self) -> dict[str, Any]:
        """Flat dict of every series: ``{name{label=value}: reading}``.

        Counters/gauges map to their float; histograms to their
        :meth:`Histogram.snapshot` minus the bucket detail.
        """
        out: dict[str, Any] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            for labels, state in metric.series():
                label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                key = f"{metric.name}{{{label_str}}}" if label_str else metric.name
                if metric.kind == "histogram":
                    out[key] = {
                        "count": state.count,
                        "mean": (state.total / state.count) if state.count else 0.0,
                        "min": state.minimum if state.count else 0.0,
                        "max": state.maximum if state.count else 0.0,
                    }
                else:
                    out[key] = state[0]
        return out

    def format_table(self) -> str:
        """Console-friendly rendering of :meth:`summarize`."""
        summary = self.summarize()
        if not summary:
            return "(no metrics recorded)"
        width = max(len(k) for k in summary)
        lines = [f"{'metric'.ljust(width)}  value", f"{'-' * width}  {'-' * 5}"]
        for key in sorted(summary):
            reading = summary[key]
            if isinstance(reading, dict):
                rendered = (
                    f"count={reading['count']} mean={reading['mean']:.6f}s "
                    f"min={reading['min']:.6f}s max={reading['max']:.6f}s"
                )
            else:
                rendered = f"{reading:g}"
            lines.append(f"{key.ljust(width)}  {rendered}")
        return "\n".join(lines)
