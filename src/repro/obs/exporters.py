"""Span exporters and trace analysis.

Two sinks — a JSONL file (one span per line, the CI artifact format)
and a console table — plus the pure functions that read traces back
and summarize them for the benchmarks.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path
from typing import Any, IO, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Span


class JsonlSpanExporter:
    """Append each finished span as one JSON line.

    Pass an instance as ``Tracer(exporter=...)``; the file is opened
    lazily and flushed per span so a crashed run still leaves a usable
    trace. Thread-safe: spans finish on daemon connection threads,
    pipelined-reader threads and the caller's thread concurrently, so
    serialization *and* the write run under one lock — two JSONL lines
    can never interleave. Use as a context manager or call
    :meth:`close` (which flushes; a span exported after close reopens
    the file rather than being lost).

    With ``max_bytes`` set, the file rotates once a completed write
    crosses the cap: the current file is flushed, closed and renamed to
    ``<path>.1`` (existing rollovers shift to ``.2`` … ``.max_files``,
    the oldest is deleted) and a fresh file takes its place. Rotation
    happens on line boundaries only — no span is ever split across
    files — so a long-running gateway campaign keeps a bounded trace
    footprint of ``max_bytes * (max_files + 1)`` at the cost of losing
    only the oldest spans.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int | None = None,
        max_files: int = 5,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        if max_files < 1:
            raise ValueError("max_files must be at least 1")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._lock = threading.Lock()
        self._fh: IO[str] | None = None

    def __call__(self, span: "Span") -> None:
        # serialize inside the lock too: to_dict() reads mutable span
        # state, and interleaved write() calls from two threads would
        # corrupt the line-oriented format
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(json.dumps(span.to_dict(), default=str) + "\n")
            self._fh.flush()
            if self.max_bytes is not None and self._fh.tell() >= self.max_bytes:
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Roll the numbered files; caller holds the lock.

        The live handle is flushed and closed *before* any rename so the
        rolled file is always complete on disk (the flush-on-rotate
        guarantee); the next span lazily opens a fresh file.
        """
        assert self._fh is not None
        try:
            self._fh.flush()
        finally:
            self._fh.close()
            self._fh = None
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files}")
        if oldest.exists():
            oldest.unlink()
        for i in range(self.max_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        if self.path.exists():
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))

    def rollover_paths(self) -> list[Path]:
        """Existing rotated files, newest first (``.1`` before ``.2``)."""
        paths = []
        for i in range(1, self.max_files + 1):
            candidate = self.path.with_name(f"{self.path.name}.{i}")
            if candidate.exists():
                paths.append(candidate)
        return paths

    def close(self) -> None:
        """Flush and close; idempotent, and late spans reopen the file."""
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                finally:
                    self._fh.close()
                    self._fh = None

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ConsoleSpanExporter:
    """Print one line per finished span (debugging aid)."""

    def __init__(self, stream: IO[str] | None = None):
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def __call__(self, span: "Span") -> None:
        line = (
            f"[span] {span.name:<32} {span.duration_s * 1000:9.3f} ms "
            f"{span.status:<6} trace={span.trace_id[:8]} "
            f"span={span.span_id[:8]} "
            f"parent={span.parent_id[:8] if span.parent_id else '-':<8}"
        )
        with self._lock:
            print(line, file=self.stream)


def read_jsonl_spans(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace file back into span dicts (skips blank lines)."""
    spans: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _as_dicts(spans: Iterable[Any]) -> list[dict[str, Any]]:
    return [s if isinstance(s, dict) else s.to_dict() for s in spans]


def _durations_p95(durations: list[float]) -> float:
    """p95 of a duration list via the shared bucket interpolation."""
    from repro.obs.metrics import LATENCY_BUCKETS_S, bucket_quantile

    counts = [0] * (len(LATENCY_BUCKETS_S) + 1)
    for value in durations:
        idx = len(LATENCY_BUCKETS_S)
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if value <= bound:
                idx = i
                break
        counts[idx] += 1
    estimate = bucket_quantile(
        LATENCY_BUCKETS_S,
        counts,
        len(durations),
        0.95,
        min(durations),
        max(durations),
    )
    return estimate if estimate is not None else 0.0


def summarize_spans(spans: Iterable[Any]) -> dict[str, dict[str, float]]:
    """Per-name stats over spans (live :class:`Span` objects or dicts).

    Returns ``{name: {count, errors, total_s, mean_s, min_s, max_s,
    p95_s}}`` — the structure the overhead benchmark prints and asserts
    on. Timing stats come from the spans that actually carry a
    ``duration_s``; a group whose spans all lack one (e.g. spans read
    back from a foreign trace file) reports zeros — never ``inf``.
    """
    stats: dict[str, dict[str, float]] = {}
    timed: dict[str, list[float]] = {}
    for span in _as_dicts(spans):
        name = span["name"]
        entry = stats.setdefault(
            name,
            {
                "count": 0,
                "errors": 0,
                "total_s": 0.0,
                "mean_s": 0.0,
                "min_s": 0.0,
                "max_s": 0.0,
                "p95_s": 0.0,
            },
        )
        entry["count"] += 1
        if span.get("status") == "ERROR":
            entry["errors"] += 1
        duration = span.get("duration_s")
        if duration is not None:
            timed.setdefault(name, []).append(float(duration))
    for name, entry in stats.items():
        durations = timed.get(name)
        if not durations:
            continue
        entry["total_s"] = sum(durations)
        entry["mean_s"] = entry["total_s"] / len(durations)
        entry["min_s"] = min(durations)
        entry["max_s"] = max(durations)
        entry["p95_s"] = _durations_p95(durations)
    return stats


def format_span_table(spans: Iterable[Any]) -> str:
    """Console table of :func:`summarize_spans` output."""
    stats = summarize_spans(spans)
    if not stats:
        return "(no spans recorded)"
    name_w = max(len("span"), max(len(n) for n in stats))
    header = (
        f"{'span'.ljust(name_w)}  {'count':>6}  {'errors':>6}  "
        f"{'mean ms':>10}  {'min ms':>10}  {'p95 ms':>10}  {'max ms':>10}  "
        f"{'total s':>9}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(stats):
        e = stats[name]
        lines.append(
            f"{name.ljust(name_w)}  {int(e['count']):>6}  {int(e['errors']):>6}  "
            f"{e['mean_s'] * 1000:>10.3f}  {e['min_s'] * 1000:>10.3f}  "
            f"{e['p95_s'] * 1000:>10.3f}  {e['max_s'] * 1000:>10.3f}  "
            f"{e['total_s']:>9.3f}"
        )
    return "\n".join(lines)


def trace_tree(spans: Iterable[Any], trace_id: str | None = None) -> str:
    """Indented parent→child rendering of one trace (docs/debugging).

    Spans whose parent id is absent from the input — the normal case
    for partial or streamed captures, where the parent is still open or
    fell off a ring buffer — are rendered as synthetic roots marked
    ``…`` rather than silently merged with the true roots.
    """
    span_dicts = _as_dicts(spans)
    if trace_id is not None:
        span_dicts = [s for s in span_dicts if s["trace_id"] == trace_id]
    by_parent: dict[str | None, list[dict[str, Any]]] = {}
    ids = {s["span_id"] for s in span_dicts}
    orphans: set[str] = set()
    for s in span_dicts:
        parent = s.get("parent_id")
        if parent is not None and parent not in ids:
            orphans.add(s["span_id"])
            parent = None
        by_parent.setdefault(parent, []).append(s)
    for children in by_parent.values():
        children.sort(key=lambda s: s.get("start_time") or 0.0)
    lines: list[str] = []

    def render(parent_key: str | None, depth: int) -> None:
        for s in by_parent.get(parent_key, []):
            marker = "… " if s["span_id"] in orphans else ""
            lines.append(
                f"{'  ' * depth}{marker}{s['name']} "
                f"[{(s.get('duration_s') or 0.0) * 1000:.3f} ms, {s.get('status')}]"
            )
            render(s["span_id"], depth + 1)

    render(None, 0)
    return "\n".join(lines) if lines else "(no spans)"
