"""Trace analytics: per-trace indexing, critical-path blame, tail sampling.

PR 9 left the ops plane entirely *aggregate* — rollups, burn rates and
scrapes say "something is slow" but can never say "why was **this** job
slow". This module is the per-request half:

- :class:`TraceIndex` — a bounded in-memory table that assembles the
  finished spans flowing through a tracer's exporter slot into
  per-trace trees keyed by ``trace_id`` (schema ``repro-traceidx-1``),
  queryable by op, tenant, duration and error. Both facility halves
  land in one tree: in-process ICEs share the session tracer, and
  :meth:`TraceIndex.ingest` accepts remote span dicts (a flight-recorder
  dump, a JSONL file) merged by trace id exactly like
  :func:`~repro.obs.recorder.merge_snapshots`.
- :func:`critical_path` — walks a trace tree *backwards* from the root's
  end, attributing every instant of root wall time to the innermost
  span that was blocking right then (the last-finishing child wins at
  each step, which is what "blocking" means for synchronous RPC). The
  segments partition the root interval exactly, so the blame table's
  self-times sum to the root duration by construction.
- :class:`TraceSampler` — tail-based sampling. Spans buffer per trace
  until the root ends; traces with an error span, a slow root, or an
  SLO-style breach are always kept, and normal traces are kept at a
  per-tenant budgeted share (deterministic keep-one-in-N counters, with
  the tenant table folded into ``__overflow__`` under the same
  cardinality-cap rules as :class:`~repro.obs.metrics.MetricsRegistry`).
  Only *kept* traces are released downstream through the exporter-slot
  chain the sampler wrapped — dropped traces never reach the JSONL
  exporter, flight recorder or telemetry bus.

Everything here is passive and bounded: attach points use the same
single-exporter-slot chaining convention as the flight recorder, and
both the index and the sampler evict oldest-first under fixed caps.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Callable, Iterable

from repro.clock import Clock, WALL
from repro.obs.metrics import OVERFLOW_VALUE, MetricsRegistry
from repro.obs.trace import Span, SpanStatus, Tracer

#: Schema tag stamped on every :meth:`TraceIndex.get` document.
SCHEMA = "repro-traceidx-1"

#: Tenant key used for spans that carry no ``tenant`` attribute.
UNTAGGED = "-"

#: Counter of traces evicted from a full :class:`TraceIndex` (oldest
#: first; the index is a recent-history device, not an archive).
INDEX_EVICTED_METRIC = "obs.trace.index_evicted_total"

#: Counter (labelled ``reason=error|slow|breach|budget``) of traces the
#: sampler kept and released downstream.
SAMPLER_KEPT_METRIC = "obs.trace.sampler_kept_total"

#: Counter (labelled ``reason=budget|overflow``) of traces the sampler
#: dropped — over-budget normal traces, or buffer-cap evictions.
SAMPLER_DROPPED_METRIC = "obs.trace.sampler_dropped_total"


def _as_dict(span: Any) -> dict[str, Any]:
    return span if isinstance(span, dict) else span.to_dict()


def _span_tenant(span: dict[str, Any]) -> str | None:
    attrs = span.get("attributes")
    if isinstance(attrs, dict):
        tenant = attrs.get("tenant")
        if isinstance(tenant, str) and tenant:
            return tenant
    return None


# --------------------------------------------------------------------------
# Critical-path extraction
# --------------------------------------------------------------------------
def critical_path(spans: Iterable[Any]) -> dict[str, Any] | None:
    """Blame table for one trace: who was blocking, for how long.

    ``spans`` is any mix of :class:`~repro.obs.trace.Span` objects and
    span dicts belonging to one trace (client and daemon halves merged
    by trace id — orphan parents are tolerated, the widest rooted
    subtree wins). The walk runs backwards from the root's end time: at
    every instant the *last-finishing overlapping child* is the one the
    parent was blocked on, so the interval is attributed to that child's
    own critical path; gaps between children are the parent's self-time.
    Child intervals are clamped to their parent's, which keeps minor
    cross-process clock skew from double-counting.

    Returns ``None`` when no ended root span exists, otherwise::

        {"schema": ..., "trace_id": ..., "root": <root op>,
         "root_duration_s": ..., "coverage": <self-time sum / root>,
         "segments": [{"op", "service", "start", "end", "self_s"}, ...],
         "blame": [{"op", "service", "self_s", "pct", "count"}, ...]}

    ``blame`` is sorted worst-first and its ``self_s`` values sum to the
    root duration (``coverage`` ~= 1.0) by construction.
    """
    norm = [_as_dict(s) for s in spans]
    norm = [
        s
        for s in norm
        if s.get("span_id") and s.get("end_time") is not None
    ]
    if not norm:
        return None
    by_id = {s["span_id"]: s for s in norm}
    children: dict[str, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for s in norm:
        parent_id = s.get("parent_id")
        if parent_id and parent_id in by_id:
            children.setdefault(parent_id, []).append(s)
        else:
            # true root, or an orphan whose parent never arrived — the
            # same "…" tolerance as exporters.trace_tree
            roots.append(s)
    root = max(
        roots, key=lambda s: float(s["end_time"]) - float(s["start_time"])
    )
    root_start = float(root["start_time"])
    root_end = float(root["end_time"])
    segments: list[dict[str, Any]] = []
    _attribute(root, root_start, root_end, children, segments)
    segments.sort(key=lambda seg: seg["start"])

    blame: dict[tuple[str, str], dict[str, Any]] = {}
    for seg in segments:
        key = (seg["op"], seg["service"])
        row = blame.get(key)
        if row is None:
            row = {
                "op": seg["op"],
                "service": seg["service"],
                "self_s": 0.0,
                "count": 0,
            }
            blame[key] = row
        row["self_s"] += seg["self_s"]
        row["count"] += 1
    duration = max(root_end - root_start, 0.0)
    rows = sorted(blame.values(), key=lambda r: -r["self_s"])
    for row in rows:
        row["pct"] = (100.0 * row["self_s"] / duration) if duration > 0 else 0.0
    covered = sum(seg["self_s"] for seg in segments)
    return {
        "schema": SCHEMA,
        "trace_id": root.get("trace_id"),
        "root": root.get("name"),
        "root_duration_s": duration,
        "coverage": (covered / duration) if duration > 0 else 0.0,
        "span_count": len(norm),
        "segments": segments,
        "blame": rows,
    }


def _attribute(
    span: dict[str, Any],
    lo: float,
    hi: float,
    children: dict[str, list[dict[str, Any]]],
    segments: list[dict[str, Any]],
) -> None:
    """Attribute the interval ``[lo, hi]`` of ``span``'s wall time.

    Backward sweep: children sorted by end time descending; the stretch
    between a child's end and the cursor is the parent's own self-time,
    the child's interval recurses into the child's subtree.
    """
    if hi - lo <= 0.0:
        return
    cursor = hi
    kids = [
        c
        for c in children.get(span["span_id"], ())
        if c.get("end_time") is not None
    ]
    kids.sort(key=lambda c: float(c["end_time"]), reverse=True)
    for child in kids:
        child_end = min(float(child["end_time"]), cursor)
        child_start = max(float(child["start_time"]), lo)
        if child_end <= lo or child_end <= child_start:
            continue
        if child_end < cursor:
            segments.append(_segment(span, child_end, cursor))
        _attribute(child, child_start, child_end, children, segments)
        cursor = child_start
        if cursor <= lo:
            break
    if cursor > lo:
        segments.append(_segment(span, lo, cursor))


def _segment(span: dict[str, Any], start: float, end: float) -> dict[str, Any]:
    attrs = span.get("attributes")
    service = ""
    if isinstance(attrs, dict):
        service = str(attrs.get("service", "") or "")
    return {
        "op": span.get("name", "?"),
        "service": service,
        "span_id": span.get("span_id"),
        "start": start,
        "end": end,
        "self_s": end - start,
    }


def format_blame(result: dict[str, Any], top: int = 15) -> str:
    """Console rendering of a :func:`critical_path` result."""
    trace_id = result.get("trace_id") or "?"
    duration = result.get("root_duration_s", 0.0)
    lines = [
        f"trace {trace_id}  root={result.get('root', '?')}  "
        f"duration={duration:.3f}s  spans={result.get('span_count', 0)}  "
        f"coverage={result.get('coverage', 0.0) * 100.0:.1f}%",
        f"  {'op':<36} {'service':<12} {'self_s':>9} {'%root':>6} {'segs':>5}",
    ]
    for row in result.get("blame", [])[:top]:
        lines.append(
            f"  {row['op']:<36} {row['service']:<12} "
            f"{row['self_s']:>9.3f} {row['pct']:>6.1f} {row['count']:>5}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# The bounded trace index
# --------------------------------------------------------------------------
class TraceIndex:
    """Assembles finished spans into queryable per-trace trees.

    Args:
        max_traces: bound on retained traces; the oldest (by first-span
            arrival) are evicted first, counted on
            ``obs.trace.index_evicted_total``.
        clock: stamp source for :meth:`get` documents.
        metrics: optional registry for the eviction counter.
    """

    def __init__(
        self,
        max_traces: int = 512,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.max_traces = max_traces
        self.clock = clock or WALL
        self.metrics = metrics
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, dict[str, Any]]" = OrderedDict()

    # -- feeding ------------------------------------------------------------
    def attach(self, tracer: Tracer) -> None:
        """Chain onto the tracer's single exporter slot (recorder
        convention: the previous exporter runs first, then the index)."""
        previous = tracer.exporter

        def chained(span: Span) -> None:
            if previous is not None:
                try:
                    previous(span)
                except Exception:  # noqa: BLE001 - exporters never break runs
                    pass
            self.add_span(span)

        tracer.exporter = chained

    def add_span(self, span: Any) -> None:
        """Index one finished span (a :class:`Span` or its dict form)."""
        doc = _as_dict(span)
        trace_id = doc.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return
        evicted = 0
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                record = {"spans": [], "error": False, "root": None}
                self._traces[trace_id] = record
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
                    evicted += 1
            record["spans"].append(doc)
            if doc.get("status") == SpanStatus.ERROR:
                record["error"] = True
            if doc.get("parent_id") is None:
                record["root"] = doc
        if evicted and self.metrics is not None:
            self.metrics.counter(
                INDEX_EVICTED_METRIC,
                "traces evicted from the bounded trace index",
            ).inc(evicted)

    def ingest(
        self, spans: Iterable[Any], service: str | None = None
    ) -> int:
        """Merge remote span dicts (a recorder dump half, a JSONL file).

        The capturing half's ``service`` stamp is authoritative when the
        span carries none — the same convention as
        :func:`~repro.obs.recorder.merge_snapshots`. Returns how many
        spans were indexed.
        """
        count = 0
        for span in spans:
            doc = dict(_as_dict(span))
            if service:
                attrs = dict(doc.get("attributes") or {})
                attrs.setdefault("service", service)
                doc["attributes"] = attrs
            self.add_span(doc)
            count += 1
        return count

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def spans(self, trace_id: str) -> list[dict[str, Any]]:
        """The trace's span dicts in start-time order (empty if unknown)."""
        with self._lock:
            record = self._traces.get(trace_id)
            spans = list(record["spans"]) if record else []
        spans.sort(key=lambda s: float(s.get("start_time") or 0.0))
        return spans

    def _summary_locked(
        self, trace_id: str, record: dict[str, Any]
    ) -> dict[str, Any]:
        root = record["root"]
        tenants = sorted(
            {t for t in (_span_tenant(s) for s in record["spans"]) if t}
        )
        duration = 0.0
        if root is not None and root.get("end_time") is not None:
            duration = max(
                0.0, float(root["end_time"]) - float(root["start_time"])
            )
        return {
            "trace_id": trace_id,
            "root": root.get("name") if root else None,
            "duration_s": duration,
            "span_count": len(record["spans"]),
            "error": record["error"],
            "tenants": tenants,
            "started_at": (
                float(root["start_time"]) if root is not None else None
            ),
        }

    def get(self, trace_id: str) -> dict[str, Any] | None:
        """Full ``repro-traceidx-1`` document for one trace, or None."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return None
            summary = self._summary_locked(trace_id, record)
        return {
            "schema": SCHEMA,
            "captured_at": self.clock.now(),
            **summary,
            "spans": self.spans(trace_id),
        }

    def query(
        self,
        op: str | None = None,
        tenant: str | None = None,
        min_duration_s: float | None = None,
        error: bool | None = None,
        limit: int = 64,
    ) -> list[dict[str, Any]]:
        """Trace summaries matching every given filter, newest first.

        ``op`` matches any span name prefix in the trace; ``tenant``
        matches the span-attribute tenant; ``min_duration_s`` and
        ``error`` judge the root span / trace flags.
        """
        with self._lock:
            items = [
                (tid, {"spans": list(r["spans"]), "error": r["error"], "root": r["root"]})
                for tid, r in self._traces.items()
            ]
        out: list[dict[str, Any]] = []
        for trace_id, record in reversed(items):
            if op is not None and not any(
                str(s.get("name", "")).startswith(op) for s in record["spans"]
            ):
                continue
            if error is not None and record["error"] != error:
                continue
            summary = self._summary_locked(trace_id, record)
            if tenant is not None and tenant not in summary["tenants"]:
                continue
            if (
                min_duration_s is not None
                and summary["duration_s"] < min_duration_s
            ):
                continue
            out.append(summary)
            if len(out) >= limit:
                break
        return out

    def explain(self, trace_id: str) -> dict[str, Any] | None:
        """:func:`critical_path` over one indexed trace (None if unknown)."""
        spans = self.spans(trace_id)
        if not spans:
            return None
        return critical_path(spans)


# --------------------------------------------------------------------------
# Tail-based sampling
# --------------------------------------------------------------------------
class TraceSampler:
    """Buffers whole traces and releases only the ones worth keeping.

    Head sampling decides before the interesting part happens; tail
    sampling waits for the root span to end and judges the *whole*
    trace: any error span, a root slower than ``slow_threshold_s``, or
    a ``breach`` verdict always keeps the trace, and normal traces are
    kept at ``budget`` (a fraction) per tenant via deterministic
    counters — the k-th normal trace of a tenant is kept exactly when
    ``kept/seen`` would stay at or under the budget, so keep rates
    converge on the budget without randomness.

    Attach wraps the tracer's exporter slot: everything downstream of
    the sampler (JSONL exporter, flight recorder, telemetry bus —
    whatever was chained before :meth:`attach`) sees only kept traces,
    released in original end order once the verdict lands.

    The tenant counter table is capped at ``max_tenants`` — extra
    tenants fold into the shared ``__overflow__`` budget, mirroring the
    metrics registry's cardinality-cap rules — and the trace buffer at
    ``max_buffered`` traces (oldest dropped, counted as
    ``reason=overflow``).
    """

    def __init__(
        self,
        budget: float = 0.1,
        slow_threshold_s: float | None = 30.0,
        breach: Callable[[dict[str, Any]], bool] | None = None,
        metrics: MetricsRegistry | None = None,
        max_buffered: int = 512,
        max_tenants: int = 64,
        max_kept_ids: int = 1024,
    ):
        if not 0.0 <= budget <= 1.0:
            raise ValueError(f"budget must be in [0, 1], got {budget}")
        self.budget = budget
        self.slow_threshold_s = slow_threshold_s
        self.breach = breach
        self.metrics = metrics
        self.max_buffered = max_buffered
        self.max_tenants = max_tenants
        self._lock = threading.Lock()
        self._downstream: Callable[[Span], None] | None = None
        #: trace_id -> buffered spans, insertion-ordered for eviction
        self._buffer: "OrderedDict[str, list[Any]]" = OrderedDict()
        #: recent verdicts, so stragglers ending after their root follow
        #: the trace's fate instead of buffering forever
        self._verdicts: "OrderedDict[str, bool]" = OrderedDict()
        #: per-tenant [seen, kept] budget counters
        self._tenant_counts: dict[str, list[int]] = {}
        self._kept_ids: deque[tuple[str, str]] = deque(maxlen=max_kept_ids)
        self._kept_set: set[str] = set()

    # -- attachment ---------------------------------------------------------
    def attach(self, tracer: Tracer) -> None:
        """Take over the tracer's exporter slot; the previous chain
        becomes this sampler's downstream for *kept* traces."""
        self._downstream = tracer.exporter
        tracer.exporter = self._intake

    # -- span intake --------------------------------------------------------
    def _intake(self, span: Any) -> None:
        trace_id = getattr(span, "trace_id", None) or (
            span.get("trace_id") if isinstance(span, dict) else None
        )
        if not trace_id:
            return
        release: list[Any] | None = None
        kept = False
        reason = ""
        dropped_overflow = 0
        with self._lock:
            verdict = self._verdicts.get(trace_id)
            if verdict is not None:
                # late span of an already-judged trace: follow the verdict
                if verdict:
                    release, kept, reason = [span], True, "late"
            else:
                bucket = self._buffer.get(trace_id)
                if bucket is None:
                    bucket = []
                    self._buffer[trace_id] = bucket
                    while len(self._buffer) > self.max_buffered:
                        self._buffer.popitem(last=False)
                        dropped_overflow += 1
                bucket.append(span)
                if self._root_ended(span):
                    spans = self._buffer.pop(trace_id, [])
                    kept, reason = self._decide_locked(spans, span)
                    self._remember_verdict(trace_id, kept)
                    if kept:
                        release = spans
                        self._remember_kept(trace_id, self._trace_tenant(spans))
        if dropped_overflow and self.metrics is not None:
            self.metrics.counter(
                SAMPLER_DROPPED_METRIC, "traces dropped by the tail sampler"
            ).inc(dropped_overflow, reason="overflow")
        if release is not None and self._downstream is not None:
            for item in release:
                try:
                    self._downstream(item)
                except Exception:  # noqa: BLE001 - exporters never break runs
                    pass
        if kept and reason != "late" and self.metrics is not None:
            self.metrics.counter(
                SAMPLER_KEPT_METRIC, "traces kept by the tail sampler"
            ).inc(reason=reason)
        if (
            not kept
            and release is None
            and reason
            and self.metrics is not None
        ):
            self.metrics.counter(
                SAMPLER_DROPPED_METRIC, "traces dropped by the tail sampler"
            ).inc(reason=reason)

    @staticmethod
    def _root_ended(span: Any) -> bool:
        parent_id = (
            span.get("parent_id")
            if isinstance(span, dict)
            else getattr(span, "parent_id", None)
        )
        return parent_id is None

    @staticmethod
    def _span_view(span: Any) -> dict[str, Any]:
        return span if isinstance(span, dict) else span.to_dict()

    def _trace_tenant(self, spans: list[Any]) -> str:
        for span in spans:
            tenant = _span_tenant(self._span_view(span))
            if tenant:
                return tenant
        return UNTAGGED

    def _decide_locked(
        self, spans: list[Any], root: Any
    ) -> tuple[bool, str]:
        views = [self._span_view(s) for s in spans]
        if any(v.get("status") == SpanStatus.ERROR for v in views):
            return True, "error"
        root_view = self._span_view(root)
        duration = float(root_view.get("duration_s") or 0.0)
        if (
            self.slow_threshold_s is not None
            and duration >= self.slow_threshold_s
        ):
            return True, "slow"
        if self.breach is not None:
            try:
                if self.breach(root_view):
                    return True, "breach"
            except Exception:  # noqa: BLE001 - policy hooks never break runs
                pass
        tenant = self._trace_tenant(spans)
        counts = self._tenant_counts.get(tenant)
        if counts is None:
            if len(self._tenant_counts) >= self.max_tenants:
                tenant = OVERFLOW_VALUE
                counts = self._tenant_counts.setdefault(tenant, [0, 0])
            else:
                counts = self._tenant_counts[tenant] = [0, 0]
        counts[0] += 1
        if self.budget > 0 and (counts[1] + 1) / counts[0] <= self.budget:
            counts[1] += 1
            return True, "budget"
        return False, "budget"

    def _remember_verdict(self, trace_id: str, kept: bool) -> None:
        self._verdicts[trace_id] = kept
        while len(self._verdicts) > 4096:
            self._verdicts.popitem(last=False)

    def _remember_kept(self, trace_id: str, tenant: str) -> None:
        if len(self._kept_ids) == self._kept_ids.maxlen:
            oldest = self._kept_ids[0]
            self._kept_set.discard(oldest[0])
        self._kept_ids.append((trace_id, tenant))
        self._kept_set.add(trace_id)

    # -- the kept set -------------------------------------------------------
    def is_kept(self, trace_id: str) -> bool:
        with self._lock:
            return trace_id in self._kept_set

    def kept_trace_ids(
        self, tenant: str | None = None, limit: int | None = None
    ) -> list[str]:
        """Kept trace ids, most recent first, optionally one tenant's."""
        with self._lock:
            items = list(self._kept_ids)
        out: list[str] = []
        for trace_id, owner in reversed(items):
            if tenant is not None and owner != tenant:
                continue
            out.append(trace_id)
            if limit is not None and len(out) >= limit:
                break
        return out

    # -- introspection ------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Per-tenant seen/kept counters plus buffer occupancy."""
        with self._lock:
            return {
                "budget": self.budget,
                "buffered_traces": len(self._buffer),
                "tenants": {
                    tenant: {"seen": c[0], "kept": c[1]}
                    for tenant, c in self._tenant_counts.items()
                },
            }

    def flush(self) -> int:
        """Drop traces still buffered (roots that never ended); returns
        how many were discarded. Called on session teardown."""
        with self._lock:
            count = len(self._buffer)
            self._buffer.clear()
        return count
