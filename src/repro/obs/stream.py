"""Live telemetry streaming: the real-time half of the observability stack.

Everything before this module was post-hoc — traces, metrics, health
reports and flight-recorder dumps are read *after* a run. The paper's
point (§1, §4.2 step 7) is remote experiment *steering*, which needs the
DGX operator to see what the ACL is doing while acquisition is still in
flight. The pieces:

- :class:`TelemetryBus` — a bounded, lock-safe pub/sub hub. Producers
  (tracer span-ends, :class:`~repro.obs.metrics.MetricsRegistry` update
  listeners, :class:`~repro.logging_utils.EventLog` entries, health
  status transitions) ``publish()`` without ever blocking: each
  subscriber owns a drop-oldest ring, and overflow is counted in the
  ``obs.stream.dropped_total`` metric instead of applying backpressure.
- :class:`TelemetryServer` — the control-channel face of the
  daemon-side bus (object id ``"ACL_Telemetry"``; the verb is spelled
  ``Telemetry_Poll`` because the RPC layer structurally refuses
  underscore-prefixed names, the same constraint that shaped
  ``Recorder_Dump``). Polling is cursor-based: the client sends the
  last sequence number it has seen and receives everything newer, plus
  a ``gap`` count when its cursor has fallen off the retention ring.
- :class:`SessionStream` — what ``session.stream()`` returns: tails the
  local (dgx-session) bus and polls the remote (acl-daemon) bus, then
  merges both halves into one time-ordered feed so a workflow-task span
  appears next to the daemon dispatch span it caused. Remote-poll
  failures and cursor gaps surface as synthetic ``stream.*`` events in
  the same feed — a partition degrades the stream, it never hangs it.

Wire documents carry ``"schema": "repro-stream-1"``; the cursor
protocol is documented in ``docs/PROTOCOLS.md`` §1.5.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clock import Clock, WALL
from repro.logging_utils import Event, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, current_span
from repro.rpc.expose import expose

#: Schema tag stamped into every Telemetry_Poll reply.
SCHEMA = "repro-stream-1"

#: Metric-name prefix the bus's own bookkeeping lives under. The
#: metrics listener skips these, otherwise a dropped-event increment
#: would publish a metric event that can drop and increment again.
OWN_METRIC_PREFIX = "obs.stream."

#: Event kinds a bus can carry.
KIND_SPAN = "span"
KIND_METRIC = "metric"
KIND_EVENT = "event"
KIND_HEALTH = "health"
KIND_STREAM = "stream"
KIND_SLO = "slo"


@dataclass(frozen=True)
class TelemetryEvent:
    """One item on the live feed.

    Attributes:
        seq: bus-assigned monotonic sequence number (1-based, per bus);
            the cursor currency of :meth:`TelemetryBus.read_since`.
        timestamp: clock reading at publish time.
        kind: one of ``span`` / ``metric`` / ``event`` / ``health`` /
            ``stream`` (the last for the stream's own meta-events).
        name: what happened — a span name, metric name, event kind,
            ``health.status``, ``stream.cursor_gap`` ...
        service: which bus half published it (``dgx-session`` /
            ``acl-daemon``).
        trace_id: correlating trace, when the producer had one.
        data: kind-specific payload (JSON-safe).
    """

    seq: int
    timestamp: float
    kind: str
    name: str
    service: str
    trace_id: str | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "name": self.name,
            "service": self.service,
            "trace_id": self.trace_id,
            "data": self.data,
        }

    @classmethod
    def from_wire(cls, raw: Any) -> "TelemetryEvent | None":
        """Tolerant decode: malformed items become None, never raise."""
        if not isinstance(raw, dict):
            return None
        try:
            data = raw.get("data")
            return cls(
                seq=int(raw["seq"]),
                timestamp=float(raw["timestamp"]),
                kind=str(raw["kind"]),
                name=str(raw["name"]),
                service=str(raw.get("service", "?")),
                trace_id=raw.get("trace_id") or None,
                data=dict(data) if isinstance(data, dict) else {},
            )
        except (KeyError, TypeError, ValueError):
            return None


class TelemetrySubscription:
    """One subscriber's drop-oldest ring on a :class:`TelemetryBus`.

    ``poll()`` drains whatever has arrived since the last poll without
    blocking; a slow poller loses the *oldest* unread events first and
    sees how many via :attr:`dropped`. ``close()`` detaches from the
    bus (idempotent; also the context-manager exit).
    """

    def __init__(self, bus: "TelemetryBus", capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self._bus = bus
        self._ring: deque[TelemetryEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dropped = 0
        self._closed = False

    @property
    def dropped(self) -> int:
        """Events this subscriber lost to ring overflow so far."""
        with self._lock:
            return self._dropped

    @property
    def closed(self) -> bool:
        return self._closed

    def _offer(self, event: TelemetryEvent) -> bool:
        """Bus-side append. Returns True when an old event was evicted."""
        with self._lock:
            if self._closed:
                return False
            evicting = len(self._ring) == self._ring.maxlen
            if evicting:
                self._dropped += 1
            self._ring.append(event)
            return evicting

    def poll(self, max_events: int | None = None) -> list[TelemetryEvent]:
        """Drain up to ``max_events`` pending events (all, when None)."""
        out: list[TelemetryEvent] = []
        with self._lock:
            while self._ring and (max_events is None or len(out) < max_events):
                out.append(self._ring.popleft())
        return out

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._ring.clear()
        self._bus._remove_subscription(self)

    def __enter__(self) -> "TelemetrySubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TelemetryBus:
    """Bounded pub/sub hub for one half of the ecosystem.

    Args:
        service: which half this is (``"dgx-session"`` / ``"acl-daemon"``);
            stamped into every event.
        clock: time source for event stamps (share the session's).
        metrics: optional registry where ``obs.stream.*`` bookkeeping
            counters live. This is the registry the bus *writes*; what it
            *watches* is whatever :meth:`observe_metrics` is given.
        history: size of the global retention ring served to remote
            cursor polls (:meth:`read_since`). Local subscribers have
            their own rings and are unaffected.

    Publishing never blocks and never raises: slow consumers lose old
    events (counted), not the producer's time. A lock is held only for
    the ring appends themselves.
    """

    def __init__(
        self,
        service: str,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        history: int = 1024,
    ):
        if history <= 0:
            raise ValueError(f"history must be > 0, got {history}")
        self.service = service
        self.clock = clock or WALL
        self.metrics = metrics
        self._lock = threading.Lock()
        self._seq = 0
        self._history: deque[TelemetryEvent] = deque(maxlen=history)
        self._subscriptions: list[TelemetrySubscription] = []
        self._detach_fns: list[Callable[[], None]] = []
        self._dropped_counter = (
            metrics.counter(
                "obs.stream.dropped_total",
                "telemetry events lost to ring overflow",
            )
            if metrics is not None
            else None
        )
        self._published_counter = (
            metrics.counter(
                "obs.stream.published_total", "telemetry events published"
            )
            if metrics is not None
            else None
        )

    # -- publishing ---------------------------------------------------------
    def publish(
        self,
        kind: str,
        name: str,
        trace_id: str | None = None,
        timestamp: float | None = None,
        **data: Any,
    ) -> TelemetryEvent:
        """Put one event on the bus; returns it (mostly for tests)."""
        with self._lock:
            self._seq += 1
            event = TelemetryEvent(
                seq=self._seq,
                timestamp=(
                    timestamp if timestamp is not None else self.clock.now()
                ),
                kind=kind,
                name=name,
                service=self.service,
                trace_id=trace_id,
                data=data,
            )
            self._history.append(event)
            subscriptions = list(self._subscriptions)
        drops = sum(1 for sub in subscriptions if sub._offer(event))
        # counters are touched outside the bus lock: the increment runs
        # registry listeners, and one of them may be this very bus
        if self._published_counter is not None:
            self._published_counter.inc()
        if drops and self._dropped_counter is not None:
            self._dropped_counter.inc(drops, half=self.service)
        return event

    # -- subscribing --------------------------------------------------------
    def subscribe(self, capacity: int = 256) -> TelemetrySubscription:
        """A new drop-oldest ring fed by every subsequent publish."""
        sub = TelemetrySubscription(self, capacity)
        with self._lock:
            self._subscriptions.append(sub)
        return sub

    def _remove_subscription(self, sub: TelemetrySubscription) -> None:
        with self._lock:
            try:
                self._subscriptions.remove(sub)
            except ValueError:
                pass

    def read_since(
        self, cursor: int = 0, max_events: int = 256
    ) -> tuple[list[TelemetryEvent], int, int]:
        """Cursor read over the retention ring (the polling protocol).

        Args:
            cursor: highest sequence number the caller has already seen
                (0 on the first poll).
            max_events: page-size bound.

        Returns:
            ``(events, next_cursor, gap)`` — events with ``seq > cursor``
            in order; the cursor to send next time; and how many events
            the caller permanently missed because they fell off the ring
            before this poll (0 when none).
        """
        if max_events <= 0:
            return [], cursor, 0
        with self._lock:
            if not self._history:
                return [], max(cursor, self._seq), 0
            oldest = self._history[0].seq
            gap = max(0, oldest - cursor - 1) if cursor < oldest else 0
            events = [e for e in self._history if e.seq > cursor][:max_events]
        next_cursor = events[-1].seq if events else max(cursor, oldest - 1 + gap)
        return events, next_cursor, gap

    @property
    def latest_seq(self) -> int:
        with self._lock:
            return self._seq

    # -- producer attachments ----------------------------------------------
    def attach_tracer(
        self,
        tracer: Tracer,
        only: Callable[[Span], bool] | None = None,
    ) -> None:
        """Publish every finished span as a ``span`` event.

        Chains onto the tracer's single exporter slot (the flight
        recorder does the same; whoever attached first keeps being
        called). ``only`` filters which spans are streamed — the session
        and daemon halves use it to stay disjoint.
        """
        previous = tracer.exporter

        def chained(span: Span) -> None:
            if previous is not None:
                try:
                    previous(span)
                except Exception:  # noqa: BLE001 - match tracer's tolerance
                    pass
            if only is None or only(span):
                self.publish(
                    KIND_SPAN,
                    span.name,
                    trace_id=span.trace_id,
                    span_id=span.span_id,
                    parent_id=span.parent_id,
                    duration_s=span.duration_s,
                    status=span.status,
                    attributes=dict(span.attributes),
                )

        tracer.exporter = chained

        def detach() -> None:
            if tracer.exporter is chained:
                tracer.exporter = previous

        self._detach_fns.append(detach)

    def attach_event_log(self, log: EventLog) -> None:
        """Publish every emitted :class:`Event` as an ``event`` event.

        The subscriber runs synchronously in the emitting thread, so the
        current span (if any) supplies the trace id.
        """

        def on_event(event: Event) -> None:
            span = current_span()
            self.publish(
                KIND_EVENT,
                f"{event.source}:{event.kind}",
                trace_id=span.trace_id if span is not None else None,
                timestamp=event.timestamp,
                source=event.source,
                event_kind=event.kind,
                message=event.message,
                data=dict(event.data),
            )

        self._detach_fns.append(log.subscribe(on_event))

    def observe_metrics(self, registry: MetricsRegistry) -> None:
        """Publish every metric write as a ``metric`` event.

        The bus's own ``obs.stream.*`` counters are skipped — they may be
        incremented *by* a publish, and streaming them back would recurse.
        """

        def on_update(
            name: str, kind: str, labels: dict[str, Any], value: float
        ) -> None:
            if name.startswith(OWN_METRIC_PREFIX):
                return
            span = current_span()
            self.publish(
                KIND_METRIC,
                name,
                trace_id=span.trace_id if span is not None else None,
                metric_kind=kind,
                labels={k: str(v) for k, v in labels.items()},
                value=value,
            )

        self._detach_fns.append(registry.add_update_listener(on_update))

    def detach(self) -> None:
        """Undo every tracer/event-log/metrics attachment."""
        for fn in self._detach_fns:
            try:
                fn()
            except Exception:  # noqa: BLE001
                pass
        self._detach_fns.clear()


@expose
class TelemetryServer:
    """Control-channel face of the daemon-side bus.

    Registered on the control daemon (object id ``"ACL_Telemetry"``)
    next to the workstation and flight-recorder servers, so a client
    holding the control URI can tail ACL-side telemetry while a run is
    in flight. Cursor-based rather than push-based: the simulated (and
    real) control channel is request/reply, so the client polls with the
    last sequence number it saw and the reply carries only newer events
    plus a ``gap`` count when the cursor fell off the retention ring.
    """

    OBJECT_ID = "ACL_Telemetry"

    def __init__(self, bus: TelemetryBus):
        self._bus = bus

    def Telemetry_Poll(
        self, cursor: int = 0, max_events: int = 256
    ) -> dict[str, Any]:
        """Events newer than ``cursor``, the next cursor, and any gap."""
        events, next_cursor, gap = self._bus.read_since(
            int(cursor), int(max_events)
        )
        return {
            "schema": SCHEMA,
            "service": self._bus.service,
            "cursor": next_cursor,
            "gap": gap,
            "events": [e.to_wire() for e in events],
        }


class SessionStream:
    """The merged live feed behind ``session.stream()``.

    Tails the local bus through a private subscription and the remote
    bus through ``Telemetry_Poll``, merging each :meth:`drain` batch
    into one time-ordered list. Pull-based by design — no background
    thread; the caller's drain cadence is the refresh rate.

    Failure semantics (the steering loop must outlive the stream):

    - a remote poll that raises is swallowed and surfaced as a synthetic
      ``stream.remote_poll_failed`` event in the same feed;
    - a remote cursor gap (the daemon ring outran our polling, e.g.
      across a partition) becomes a ``stream.cursor_gap`` event carrying
      the missed count, and bumps ``obs.stream.dropped_total`` with
      ``half=remote``.

    Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        remote_client_fn: "Callable[[], Any] | None" = None,
        capacity: int = 1024,
        max_remote_events: int = 256,
    ):
        self._bus = bus
        self._subscription = bus.subscribe(capacity=capacity)
        self._remote_client_fn = remote_client_fn
        self._remote_client: Any | None = None
        self._remote_broken = False
        self._remote_cursor = 0
        self._max_remote_events = max_remote_events
        self.remote_gap_total = 0
        self.remote_poll_failures = 0

    @property
    def dropped(self) -> int:
        """Local events lost to this stream's own ring overflow."""
        return self._subscription.dropped

    def _poll_remote(self) -> list[TelemetryEvent]:
        if self._remote_client_fn is None or self._remote_broken:
            return []
        try:
            if self._remote_client is None:
                self._remote_client = self._remote_client_fn()
            reply = self._remote_client.Telemetry_Poll(
                cursor=self._remote_cursor,
                max_events=self._max_remote_events,
            )
        except Exception as exc:  # noqa: BLE001 - stream degrades, never hangs
            self.remote_poll_failures += 1
            # drop the proxy so the next drain reconnects from scratch;
            # the synthetic event reaches the caller through the local
            # subscription this very drain is about to poll
            self._close_remote()
            self._bus.publish(
                KIND_STREAM,
                "stream.remote_poll_failed",
                error_type=type(exc).__name__,
                message=str(exc),
                failures=self.remote_poll_failures,
            )
            return []
        if not isinstance(reply, dict):
            return []
        gap = int(reply.get("gap") or 0)
        if gap > 0:
            self.remote_gap_total += gap
            if self._bus.metrics is not None:
                self._bus.metrics.counter("obs.stream.dropped_total").inc(
                    gap, half="remote"
                )
            self._bus.publish(
                KIND_STREAM,
                "stream.cursor_gap",
                missed=gap,
                service=str(reply.get("service", "?")),
            )
        self._remote_cursor = int(reply.get("cursor") or self._remote_cursor)
        out: list[TelemetryEvent] = []
        for raw in reply.get("events", []):
            event = TelemetryEvent.from_wire(raw)
            if event is not None:
                out.append(event)
        return out

    def drain(self, max_events: int | None = None) -> list[TelemetryEvent]:
        """Everything new on both halves, merged in time order.

        The remote poll runs first so the synthetic ``stream.*`` events
        it publishes land in the local subscription polled right after.
        """
        remote = self._poll_remote()
        local = self._subscription.poll(max_events=max_events)
        merged = local + remote
        merged.sort(key=lambda e: (e.timestamp, e.service, e.seq))
        return merged

    def close(self) -> None:
        self._subscription.close()
        self._close_remote()

    def _close_remote(self) -> None:
        client = self._remote_client
        self._remote_client = None
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass

    def __enter__(self) -> "SessionStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
