"""Spans and tracers: who called what, where, and how long it took.

The model is deliberately small — a span is one timed operation with a
``trace_id`` shared by everything that happened on behalf of one logical
run, a ``span_id`` of its own, and a ``parent_id`` linking it to the
operation that caused it. Context propagates two ways:

- **in-process** through a :mod:`contextvars` variable, so a task span
  set current by the workflow engine automatically parents the RPC call
  spans made inside it (including across the per-connection threads of
  the daemon, each of which installs the remote parent explicitly);
- **across the control channel** through a ``trace`` field in the
  REQUEST body (see :func:`Tracer.inject` / :func:`extract_context` and
  ``docs/PROTOCOLS.md`` §1.2), so the daemon-side dispatch span carries
  the client span as its parent even though it lives in another process.

Timing runs on an injected :class:`~repro.clock.Clock`, which keeps
span durations deterministic under :class:`~repro.clock.VirtualClock`.
"""

from __future__ import annotations

import contextlib
import threading
import uuid
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.clock import Clock, WALL

#: Name of the optional REQUEST-body field that carries trace context
#: across the control channel (alongside ``idem``).
WIRE_FIELD = "trace"

_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_current_span", default=None)


class SpanStatus:
    """Span outcome constants (string-valued for cheap JSON export)."""

    UNSET = "UNSET"
    OK = "OK"
    ERROR = "ERROR"


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: just the two ids."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """Carrier dict for the ``trace`` REQUEST field."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


def _new_trace_id() -> str:
    return uuid.uuid4().hex  # 32 hex chars


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]  # 16 hex chars


#: Sentinel distinguishing "no parent given, use the current span" from
#: an explicit ``parent=None`` (start a new root trace).
_UNSET = object()


class Span:
    """One timed operation inside a trace.

    Spans are created by a :class:`Tracer`; use them as context managers
    (``with tracer.start_as_current_span("x") as span:``) or call
    :meth:`end` explicitly. Attribute/event mutation after :meth:`end`
    is ignored rather than raised — observability must never take down
    the operation it observes.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "end_time",
        "status",
        "attributes",
        "events",
        "tracer",
        "_token",
        "_ended",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start_time: float,
        tracer: "Tracer",
        attributes: dict[str, Any] | None = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_time = start_time
        self.end_time: float | None = None
        self.status = SpanStatus.UNSET
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.events: list[dict[str, Any]] = []
        self.tracer = tracer
        self._token = None
        self._ended = False

    # -- identity -----------------------------------------------------------
    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration_s(self) -> float:
        if self.end_time is None:
            return 0.0
        return max(0.0, self.end_time - self.start_time)

    @property
    def ended(self) -> bool:
        return self._ended

    # -- mutation -----------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> "Span":
        if not self._ended:
            self.attributes[key] = value
        return self

    def add_event(self, name: str, **attributes: Any) -> "Span":
        if not self._ended:
            self.events.append(
                {
                    "name": name,
                    "timestamp": self.tracer.clock.now(),
                    **({"attributes": attributes} if attributes else {}),
                }
            )
        return self

    def record_exception(self, exc: BaseException) -> "Span":
        self.add_event(
            "exception",
            error_type=type(exc).__name__,
            message=str(exc),
            code=getattr(exc, "code", None),
        )
        return self

    def end(self, status: str | None = None) -> None:
        """Finish the span: stamp the end time and hand it to the tracer."""
        if self._ended:
            return
        self._ended = True
        if status is not None:
            self.status = status
        elif self.status == SpanStatus.UNSET:
            self.status = SpanStatus.OK
        self.end_time = self.tracer.clock.now()
        profiler = self.tracer.profiler
        if profiler is not None:
            # before the contextvar reset below: the profiler reads the
            # current-span stack to attribute the closing interval
            try:
                profiler.on_end(self)
            except Exception:  # noqa: BLE001 - profiling must never break runs
                pass
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:
                # ended on a different thread than it was made current on;
                # the owning context unwinds its own variable
                pass
            self._token = None
        self.tracer._on_end(self)

    # -- context-manager sugar ---------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.record_exception(exc)
            self.end(SpanStatus.ERROR)
        else:
            self.end()

    # -- export -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": self.attributes,
            "events": self.events,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"span={self.span_id[:8]}, parent="
            f"{self.parent_id[:8] if self.parent_id else None}, "
            f"status={self.status})"
        )


class Tracer:
    """Produces spans and retains the finished ones.

    Args:
        service: label attached to every span (``service`` attribute),
            e.g. ``"dgx"`` or ``"acl-daemon"``; useful when client and
            daemon tracers export to separate files.
        clock: time source for start/end stamps.
        exporter: optional callable invoked with each finished
            :class:`Span` (e.g. a :class:`~repro.obs.exporters.JsonlSpanExporter`).
        max_spans: bound on the in-memory finished-span buffer; the
            oldest spans fall off first (exporters still saw them).
    """

    def __init__(
        self,
        service: str = "",
        clock: Clock | None = None,
        exporter: Callable[[Span], None] | None = None,
        max_spans: int = 20000,
    ):
        self.service = service
        self.clock = clock or WALL
        self.exporter = exporter
        #: Optional :class:`~repro.obs.profiler.SpanProfiler` sampling
        #: this tracer's span transitions; set via ``profiler.attach()``.
        #: One slot only — overlapping profilers would double-attribute.
        self.profiler: Any | None = None
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()

    # -- span creation ------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = _UNSET,  # type: ignore[assignment]
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        """Create a span without touching the current-span context.

        ``parent`` defaults to the current span; pass an explicit
        :class:`Span`/:class:`SpanContext` (e.g. one extracted from the
        wire) or ``None`` to start a new root trace.
        """
        if parent is _UNSET:
            parent = _CURRENT.get()
        if parent is None:
            trace_id, parent_id = _new_trace_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_new_span_id(),
            parent_id=parent_id,
            start_time=self.clock.now(),
            tracer=self,
            attributes=attributes,
        )
        if self.service:
            span.attributes.setdefault("service", self.service)
        profiler = self.profiler
        if profiler is not None:
            try:
                profiler.on_start(span)
            except Exception:  # noqa: BLE001 - profiling must never break runs
                pass
        return span

    def start_as_current_span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = _UNSET,  # type: ignore[assignment]
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        """Like :meth:`start_span`, but also install the span as current.

        The contextvar is restored when the span ends, so the usual shape
        is ``with tracer.start_as_current_span("op"):``.
        """
        span = self.start_span(name, parent=parent, attributes=attributes)
        span._token = _CURRENT.set(span)
        return span

    # -- wire propagation ---------------------------------------------------
    def inject(self, span: Span | None = None) -> dict[str, str] | None:
        """Carrier dict for a REQUEST's ``trace`` field (None = nothing
        to propagate)."""
        target = span if span is not None else _CURRENT.get()
        if target is None:
            return None
        return target.context.to_wire()

    # -- retention ----------------------------------------------------------
    def _on_end(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        if self.exporter is not None:
            try:
                self.exporter(span)
            except Exception:  # noqa: BLE001 - exporters must never break runs
                pass

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- analysis -----------------------------------------------------------
    def summarize(self) -> dict[str, dict[str, float]]:
        """Per-span-name timing stats (the benchmarks print this)."""
        from repro.obs.exporters import summarize_spans

        return summarize_spans(self.finished_spans())

    def find(self, name_prefix: str) -> list[Span]:
        """Finished spans whose name starts with ``name_prefix``."""
        return [s for s in self.finished_spans() if s.name.startswith(name_prefix)]


# --------------------------------------------------------------------------
# Module-level context helpers (no tracer required at the call site)
# --------------------------------------------------------------------------
def current_span() -> Span | None:
    """The span currently installed in this context, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_span(span: Span | None) -> Iterator[Span | None]:
    """Install ``span`` as current without owning its lifetime.

    This is how worker threads (daemon connection handlers, workflow
    watchdogs) adopt a span started elsewhere; the span is *not* ended
    on exit.
    """
    if span is None:
        yield None
        return
    token = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def child_span(name: str, **attributes: Any) -> Iterator[Span | None]:
    """Open a child of the *current* span using that span's own tracer.

    The ambient instrumentation primitive: deep layers (instrument
    drivers, the file share) call this without holding a tracer — when
    nothing upstream is tracing, it is a no-op costing one contextvar
    read.
    """
    parent = _CURRENT.get()
    if parent is None:
        yield None
        return
    span = parent.tracer.start_as_current_span(
        name, parent=parent, attributes=attributes or None
    )
    try:
        yield span
    except BaseException as exc:
        span.record_exception(exc)
        span.end(SpanStatus.ERROR)
        raise
    else:
        span.end()


def extract_context(carrier: Any) -> SpanContext | None:
    """Rebuild a :class:`SpanContext` from a wire carrier dict.

    Tolerant by design: anything malformed yields ``None`` (the request
    is served untraced) rather than an error — observability fields from
    unknown peers must never fail a call.
    """
    if not isinstance(carrier, dict):
        return None
    trace_id = carrier.get("trace_id")
    span_id = carrier.get("span_id")
    if (
        isinstance(trace_id, str)
        and isinstance(span_id, str)
        and trace_id
        and span_id
    ):
        return SpanContext(trace_id=trace_id, span_id=span_id)
    return None
