"""Declarative SLOs with per-tenant multi-window burn-rate alerting.

An :class:`SLObjective` states a target good-fraction for one metric —
either **availability** (a counter split by a bad-status label) or
**latency** (a histogram and a threshold; good means at-or-under it).
The :class:`SLOEngine` evaluates every objective against a
:class:`~repro.obs.timeseries.TimeSeriesStore`, once per tenant seen on
the metric, over a fast and a slow rolling window.

The alerting rule is the classic burn-rate pair: with error budget
``1 - objective``, the burn rate is ``bad_fraction / budget`` — the
multiple of the budget being spent right now. A fast window with a high
threshold catches sharp bursts in seconds; a slow window with a lower
threshold catches slow leaks. Alert transitions are published on the
``TelemetryBus`` as ``slo`` events (schema ``repro-slo-1``), current
burn rates are exported as ``obs.slo.*`` gauges (so they scrape across
facilities like any other metric), and :meth:`SLOEngine.attach_health`
surfaces firing alerts as the health engine's ``slo`` subsystem so
``require_healthy=`` gates and flight-recorder dumps pick them up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.clock import Clock, WallClock
from repro.obs.health import DEGRADED, UNHEALTHY, HealthEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import KIND_SLO
from repro.obs.timeseries import TimeSeriesStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.stream import TelemetryBus

#: Schema tag stamped on every alert/resolve event's data.
ALERT_SCHEMA = "repro-slo-1"

AVAILABILITY = "availability"
LATENCY = "latency"


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective over one metric.

    ``availability``: ``metric`` is a counter; samples whose
    ``bad_label == bad_value`` are the bad events, everything on the
    metric is the total. ``latency``: ``metric`` is a histogram and a
    sample is bad when it exceeds ``threshold_s`` (judged from rollup
    bucket deltas, so the verdict is bucket-resolution accurate).

    ``fast_burn``/``slow_burn`` are the page thresholds for the two
    windows; the defaults (14x over 1 min, 6x over 10 min) follow the
    usual multiwindow guidance scaled to bench-length runs. Windows with
    fewer than ``min_events`` samples abstain rather than alert.
    """

    name: str
    metric: str
    objective: float = 0.99
    kind: str = AVAILABILITY
    threshold_s: float | None = None
    bad_label: str = "status"
    bad_value: str = "error"
    per_tenant: bool = True
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    fast_burn: float = 14.0
    slow_burn: float = 6.0
    min_events: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.kind not in (AVAILABILITY, LATENCY):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == LATENCY and self.threshold_s is None:
            raise ValueError("latency objectives need threshold_s")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


def default_objectives() -> list[SLObjective]:
    """The stock session objectives: RPC availability and latency.

    Thresholds are deliberately loose (30 s covers the paper's
    multi-second CV techniques and file-arrival waits) so a clean
    baseline run always reports healthy; tighten per deployment via
    ``SLOEngine.add``.
    """
    return [
        SLObjective(
            name="rpc-availability",
            metric="rpc.client.calls_total",
            objective=0.99,
        ),
        SLObjective(
            name="rpc-latency",
            metric="rpc.client.call_latency_s",
            kind=LATENCY,
            objective=0.95,
            threshold_s=30.0,
        ),
    ]


@dataclass
class _WindowStats:
    total: float = 0.0
    bad: float = 0.0

    @property
    def bad_fraction(self) -> float:
        return (self.bad / self.total) if self.total > 0 else 0.0


class SLOEngine:
    """Evaluates objectives per tenant and raises burn-rate alerts."""

    def __init__(
        self,
        store: TimeSeriesStore,
        clock: Clock | None = None,
        bus: "TelemetryBus | None" = None,
        metrics: MetricsRegistry | None = None,
    ):
        self._store = store
        self._clock = clock or WallClock()
        self._bus = bus
        self._metrics = metrics
        self._sampler: Any = None
        self._objectives: list[SLObjective] = []
        self._firing: dict[tuple[str, str | None], tuple[str, ...]] = {}
        self._last_statuses: list[dict[str, Any]] = []

    def attach_sampler(self, sampler: Any) -> None:
        """Link a :class:`~repro.obs.analysis.TraceSampler` so alert
        events can name offending traces (``exemplar_trace_ids``)."""
        self._sampler = sampler

    def add(self, objective: SLObjective) -> SLObjective:
        if any(o.name == objective.name for o in self._objectives):
            raise ValueError(f"objective {objective.name!r} already registered")
        self._objectives.append(objective)
        return objective

    def objectives(self) -> list[SLObjective]:
        return list(self._objectives)

    # -- evaluation ---------------------------------------------------------
    def _window(
        self,
        objective: SLObjective,
        tenant: str | None,
        window_s: float,
        now: float,
    ) -> _WindowStats:
        selector: dict[str, Any] = {}
        if tenant is not None:
            selector["tenant"] = tenant
        stats = self._store.window_stats(
            objective.metric, selector or None, window_s=window_s, now=now
        )
        if objective.kind == AVAILABILITY:
            bad_selector = dict(selector)
            bad_selector[objective.bad_label] = objective.bad_value
            bad = self._store.window_stats(
                objective.metric, bad_selector, window_s=window_s, now=now
            )
            return _WindowStats(total=stats["sum"], bad=bad["sum"])
        # latency: judge from bucket deltas (last bucket is +Inf overflow)
        total = float(stats["count"])
        buckets = stats["buckets"]
        bounds = self._store.bucket_bounds(objective.metric)
        if buckets is None or bounds is None:
            return _WindowStats(total=total, bad=0.0)
        good = sum(
            buckets[i]
            for i, bound in enumerate(bounds)
            if bound <= objective.threshold_s
        )
        return _WindowStats(total=total, bad=max(0.0, total - good))

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """Evaluate every objective; returns one status dict per
        (objective, tenant) and publishes alert transitions on the bus."""
        now = self._clock.now() if now is None else now
        statuses: list[dict[str, Any]] = []
        for objective in self._objectives:
            tenants: list[str | None]
            if objective.per_tenant:
                tenants = list(self._store.tenants(objective.metric)) or [None]
            else:
                tenants = [None]
            for tenant in tenants:
                fast = self._window(objective, tenant, objective.fast_window_s, now)
                slow = self._window(objective, tenant, objective.slow_window_s, now)
                budget = objective.budget
                burn_fast = fast.bad_fraction / budget
                burn_slow = slow.bad_fraction / budget
                alerts: list[str] = []
                if fast.total >= objective.min_events and burn_fast > objective.fast_burn:
                    alerts.append("fast")
                if slow.total >= objective.min_events and burn_slow > objective.slow_burn:
                    alerts.append("slow")
                status = {
                    "objective": objective.name,
                    "metric": objective.metric,
                    "kind": objective.kind,
                    "tenant": tenant,
                    "target": objective.objective,
                    "sli_fast": 1.0 - fast.bad_fraction,
                    "sli_slow": 1.0 - slow.bad_fraction,
                    "events_fast": fast.total,
                    "events_slow": slow.total,
                    "burn_fast": burn_fast,
                    "burn_slow": burn_slow,
                    "alerts": alerts,
                    "status": "alerting" if alerts else "ok",
                }
                statuses.append(status)
                self._export_gauges(status)
                self._publish_transition(objective, tenant, status)
        self._last_statuses = statuses
        return statuses

    def active_alerts(self) -> list[dict[str, Any]]:
        """Firing statuses from the most recent :meth:`evaluate`."""
        return [s for s in self._last_statuses if s["alerts"]]

    def _export_gauges(self, status: dict[str, Any]) -> None:
        if self._metrics is None:
            return
        tenant = status["tenant"] or ""
        burn = self._metrics.gauge(
            "obs.slo.burn_rate", "current error-budget burn-rate multiple"
        )
        burn.set(status["burn_fast"], objective=status["objective"], tenant=tenant, window="fast")
        burn.set(status["burn_slow"], objective=status["objective"], tenant=tenant, window="slow")
        self._metrics.gauge(
            "obs.slo.alerting", "1 while a burn-rate alert is firing"
        ).set(1.0 if status["alerts"] else 0.0, objective=status["objective"], tenant=tenant)

    def _publish_transition(
        self,
        objective: SLObjective,
        tenant: str | None,
        status: dict[str, Any],
    ) -> None:
        key = (objective.name, tenant)
        previous = self._firing.get(key, ())
        current = tuple(status["alerts"])
        if current == previous:
            return
        self._firing[key] = current
        if self._bus is None:
            return
        self._bus.publish(
            KIND_SLO,
            "slo.alert" if current else "slo.resolved",
            schema=ALERT_SCHEMA,
            objective=objective.name,
            metric=objective.metric,
            tenant=tenant,
            windows=list(current),
            burn_fast=status["burn_fast"],
            burn_slow=status["burn_slow"],
            sli_fast=status["sli_fast"],
            sli_slow=status["sli_slow"],
            exemplar_trace_ids=(
                self._exemplar_trace_ids(objective, tenant) if current else []
            ),
        )

    def _exemplar_trace_ids(
        self, objective: SLObjective, tenant: str | None, limit: int = 3
    ) -> list[str]:
        """Up to ``limit`` kept traces implicated in an alert.

        Preference order: the objective metric's own histogram bucket
        exemplars (the observation that landed in the offending series)
        when the tail sampler kept their trace, padded from the
        sampler's recent kept set for the tenant. Empty when sampling is
        off — consumers must treat the field as advisory (``repro-slo-1``
        stays tolerant).
        """
        sampler = self._sampler
        if sampler is None:
            return []
        seen: set[str] = set()
        ids: list[str] = []
        metric = (
            self._metrics.get(objective.metric)
            if self._metrics is not None
            else None
        )
        if metric is not None and hasattr(metric, "exemplars"):
            selector = {"tenant": tenant} if tenant else {}
            for ex in reversed(metric.exemplars(**selector)):
                trace_id = ex.get("trace_id")
                if (
                    isinstance(trace_id, str)
                    and trace_id not in seen
                    and sampler.is_kept(trace_id)
                ):
                    seen.add(trace_id)
                    ids.append(trace_id)
                if len(ids) >= limit:
                    return ids
        for trace_id in sampler.kept_trace_ids(tenant=tenant, limit=limit):
            if trace_id not in seen:
                seen.add(trace_id)
                ids.append(trace_id)
            if len(ids) >= limit:
                break
        return ids[:limit]

    # -- health surfacing ---------------------------------------------------
    def attach_health(self, engine: HealthEngine) -> None:
        """Register the ``slo`` subsystem probe on a health engine.

        Any firing alert degrades the subsystem; an objective burning
        through both windows at once (sustained, not just a blip) marks
        it unhealthy. The probe re-evaluates on every health check so
        gates always see current burn rates.
        """

        def probe() -> tuple[str, str] | None:
            firing = sorted(
                (s for s in self.evaluate() if s["alerts"]),
                key=lambda s: -len(s["alerts"]),
            )
            if not firing:
                return None
            status = (
                UNHEALTHY
                if any(len(s["alerts"]) == 2 for s in firing)
                else DEGRADED
            )
            worst = firing[0]
            reason = (
                f"{len(firing)} SLO alert(s); worst {worst['objective']}"
                f"[{worst['tenant'] or 'global'}] burning "
                f"{worst['burn_fast']:.1f}x fast / {worst['burn_slow']:.1f}x slow"
            )
            return status, reason

        engine.register_probe("slo", probe)
