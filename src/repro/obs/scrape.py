"""Cross-facility scraping: the ``ACL_Observability`` service object and
the tenant-keyed aggregator behind ``repro-ice top``.

One :class:`ObservabilityServer` sits on each facility's control daemon
and pages out that facility's :class:`TimeSeriesStore` rollup rows over
the ``Obs_Scrape`` verb — the same cursor/gap polling contract as
``Telemetry_Poll`` (PROTOCOLS.md §1.9). An :class:`ObsAggregator` holds
one cursor per source (in-process stores and remote daemons mix
freely), pulls whatever is new on each :meth:`ObsAggregator.refresh`,
and folds the rows into a single tenant-keyed view: per-tenant rates,
error rates, queue depth and which facilities contributed. The
``repro-ice top`` subcommand and ``Session.top()`` render that view —
optionally joined with live SLO burn rates — via :func:`format_top`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

from repro.rpc.expose import expose
from repro.obs.timeseries import SCHEMA, TimeSeriesStore

#: Schema tag of the merged aggregator view.
VIEW_SCHEMA = "repro-obsview-1"

#: Tenant key used for rows carrying no tenant label (untagged traffic).
UNTAGGED = "-"


@expose
class ObservabilityServer:
    """Control-channel face of one facility's time-series store.

    Registered on the control daemon (object id ``"ACL_Observability"``)
    next to the telemetry and flight-recorder servers. Cursor-based like
    ``Telemetry_Poll``: the caller sends the highest row sequence it has
    seen and receives only newer rollup rows plus a ``gap`` count when
    its cursor fell off the export ring.
    """

    OBJECT_ID = "ACL_Observability"

    def __init__(self, store: TimeSeriesStore, service: str = "acl-daemon"):
        self._store = store
        self._service = service

    def Obs_Scrape(
        self,
        cursor: int = 0,
        selectors: dict[str, Any] | None = None,
        max_rows: int = 512,
    ) -> dict[str, Any]:
        """Rollup rows newer than ``cursor``, the next cursor, any gap."""
        rows, next_cursor, gap = self._store.scrape(
            int(cursor), selectors, int(max_rows)
        )
        return {
            "schema": SCHEMA,
            "service": self._service,
            "cursor": next_cursor,
            "gap": gap,
            "rows": rows,
        }


class _Source:
    __slots__ = ("fetch", "cursor", "gap", "failures")

    def __init__(self, fetch: Callable[[int, dict | None, int], dict[str, Any]]):
        self.fetch = fetch
        self.cursor = 0
        self.gap = 0
        self.failures = 0


class ObsAggregator:
    """Merges scrapes from N facilities into one tenant-keyed view.

    Sources are named; each keeps its own cursor so facilities can be
    polled at different cadences and a flapping link only costs that
    source a ``gap``, never a stall of the others. Rows are retained in
    a bounded ring — the view is a sliding recent-history summary, not
    an archive.
    """

    def __init__(self, retain_rows: int = 8192):
        self._lock = threading.Lock()
        self._sources: dict[str, _Source] = {}
        self._rows: deque[dict[str, Any]] = deque(maxlen=retain_rows)

    def add_store(self, name: str, store: TimeSeriesStore) -> None:
        """Scrape an in-process store (the local half of an ICE)."""

        def fetch(cursor: int, selectors: dict | None, max_rows: int) -> dict:
            rows, next_cursor, gap = store.scrape(cursor, selectors, max_rows)
            return {"rows": rows, "cursor": next_cursor, "gap": gap}

        with self._lock:
            self._sources[name] = _Source(fetch)

    def add_remote(self, name: str, client: Any) -> None:
        """Scrape a remote daemon via its ``ACL_Observability`` proxy."""

        def fetch(cursor: int, selectors: dict | None, max_rows: int) -> dict:
            return client.Obs_Scrape(
                cursor=cursor, selectors=selectors, max_rows=max_rows
            )

        with self._lock:
            self._sources[name] = _Source(fetch)

    def sources(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    def refresh(
        self,
        selectors: dict[str, Any] | None = None,
        max_rows: int = 512,
    ) -> int:
        """Pull new rows from every source; returns how many arrived.

        A source that raises is skipped (its ``failures`` count grows)
        and retried on the next refresh — one dead facility must never
        hide the others.
        """
        with self._lock:
            sources = list(self._sources.items())
        pulled = 0
        for name, source in sources:
            try:
                reply = source.fetch(source.cursor, selectors, max_rows)
            except Exception:  # noqa: BLE001 - a dead facility is data, not a crash
                source.failures += 1
                continue
            rows = reply.get("rows", [])
            source.cursor = int(reply.get("cursor", source.cursor))
            source.gap += int(reply.get("gap", 0))
            with self._lock:
                for row in rows:
                    row = dict(row)
                    row["facility"] = name
                    self._rows.append(row)
            pulled += len(rows)
        return pulled

    def view(self) -> dict[str, Any]:
        """Tenant-keyed summary of the retained rows.

        ``tenants[tenant][metric]`` carries ``sum``, ``count``,
        ``error_sum`` (rows labelled ``status=error`` or
        ``state=failed``), ``rate_per_s``/``error_rate_per_s`` over the
        rows' covered time span, the latest sample, and the set of
        facilities that contributed.
        """
        with self._lock:
            rows = list(self._rows)
            gaps = {name: s.gap for name, s in self._sources.items()}
            failures = {name: s.failures for name, s in self._sources.items()}
            facilities = sorted(self._sources)
        tenants: dict[str, dict[str, dict[str, Any]]] = {}
        for row in rows:
            labels = row.get("labels", {})
            tenant = labels.get("tenant") or UNTAGGED
            entry = tenants.setdefault(tenant, {}).setdefault(
                row["name"],
                {
                    "sum": 0.0,
                    "count": 0,
                    "error_sum": 0.0,
                    "last": 0.0,
                    "first_start": row["start"],
                    "last_end": row["start"] + row["res"],
                    "facilities": set(),
                },
            )
            entry["sum"] += row["sum"]
            entry["count"] += row["count"]
            if labels.get("status") == "error" or labels.get("state") == "failed":
                entry["error_sum"] += row["sum"]
            entry["last"] = row["last"]
            entry["first_start"] = min(entry["first_start"], row["start"])
            entry["last_end"] = max(entry["last_end"], row["start"] + row["res"])
            entry["facilities"].add(row["facility"])
        for per_metric in tenants.values():
            for entry in per_metric.values():
                span = max(entry["last_end"] - entry["first_start"], 1e-9)
                entry["rate_per_s"] = entry["sum"] / span
                entry["error_rate_per_s"] = entry["error_sum"] / span
                entry["facilities"] = sorted(entry["facilities"])
        return {
            "schema": VIEW_SCHEMA,
            "facilities": facilities,
            "gaps": gaps,
            "failures": failures,
            "tenants": tenants,
        }


def _fmt(value: float) -> str:
    return f"{value:.1f}"


def format_top(
    view: dict[str, Any],
    slo_statuses: list[dict[str, Any]] | None = None,
) -> str:
    """Render an aggregator view (plus SLO statuses) as a console table.

    One row per tenant: RPC call and error rates summed across
    facilities, current gateway queue depth, the worst burn-rate pair
    among that tenant's objectives, and either ``ok`` or the firing
    alert windows. Used by ``repro-ice top`` and ``Session.top()``.
    """
    slo_by_tenant: dict[str, list[dict[str, Any]]] = {}
    for status in slo_statuses or []:
        slo_by_tenant.setdefault(status["tenant"] or UNTAGGED, []).append(status)
    tenants = sorted(set(view["tenants"]) | set(slo_by_tenant))
    header = (
        f"{'TENANT':<14}{'CALLS/S':>9}{'ERR/S':>8}{'QUEUE':>7}"
        f"{'BURN f/s':>12}  SLO"
    )
    lines = [
        "facilities: "
        + (", ".join(view["facilities"]) or "(none)")
        + "".join(
            f"  [{name}: gap={gap}]"
            for name, gap in sorted(view.get("gaps", {}).items())
            if gap
        ),
        header,
        "-" * len(header),
    ]
    for tenant in tenants:
        metrics = view["tenants"].get(tenant, {})
        calls = err = 0.0
        for name, entry in metrics.items():
            if name in ("rpc.client.calls_total", "rpc.daemon.calls_total"):
                calls += entry["rate_per_s"]
                err += entry["error_rate_per_s"]
        queue = metrics.get("gateway.queue_depth", {}).get("last", 0.0)
        statuses = slo_by_tenant.get(tenant, [])
        burn_fast = max((s["burn_fast"] for s in statuses), default=0.0)
        burn_slow = max((s["burn_slow"] for s in statuses), default=0.0)
        alerting = [s for s in statuses if s["alerts"]]
        if alerting:
            windows = sorted({w for s in alerting for w in s["alerts"]})
            names = ",".join(sorted({s["objective"] for s in alerting}))
            slo_cell = f"ALERT[{'+'.join(windows)}] {names}"
        else:
            slo_cell = "ok"
        lines.append(
            f"{tenant:<14}{_fmt(calls):>9}{_fmt(err):>8}{queue:>7.0f}"
            f"{_fmt(burn_fast) + 'x/' + _fmt(burn_slow) + 'x':>12}  {slo_cell}"
        )
    if len(tenants) == 0:
        lines.append("(no tenant-attributed rows yet)")
    return "\n".join(lines)
