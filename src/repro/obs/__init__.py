"""Observability: dependency-free tracing and metrics for the ICE.

The paper's cross-facility runs span a control channel (Pyro RPC), a
deliberately separate data channel (the CIFS share), and instrument
serial links — and the companion framework paper (arXiv:2307.06883)
stresses *per-segment* latency measurement across exactly that path.
This package is the measurement substrate:

- :mod:`repro.obs.trace` — spans (trace_id/span_id/parent_id) produced
  by a :class:`Tracer`, with context propagation both in-process (a
  contextvar) and across the control channel (a ``trace`` REQUEST
  field), so a workflow-task span on the DGX parents the daemon-side
  dispatch span and the instrument-command span at ACL;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms shared by every layer;
- :mod:`repro.obs.exporters` — JSONL span files, console tables, and
  the ``summarize`` API the benchmarks print;
- :mod:`repro.obs.health` — the :class:`HealthEngine` that turns the
  raw telemetry into per-subsystem healthy/degraded/unhealthy verdicts
  (``session.health()`` and the ``require_healthy=True`` gate);
- :mod:`repro.obs.recorder` — the :class:`FlightRecorder` black box
  dumped on safe-state teardowns, abnormal rounds, breaker trips and
  fleet-cell failures (schema ``repro-flightrec-1``);
- :mod:`repro.obs.stream` — the :class:`TelemetryBus` live feed
  (``session.stream()`` merges the dgx-session and acl-daemon halves;
  the daemon half is polled via ``Telemetry_Poll``);
- :mod:`repro.obs.profiler` — the :class:`SpanProfiler` transition
  sampler behind ``profile=True`` (schema ``repro-profile-1``);
- :mod:`repro.obs.baseline` — the :class:`BaselineStore` perf baselines
  feeding the ``perf`` health subsystem and ``BENCH_profile.json``;
- :mod:`repro.obs.timeseries` — the :class:`TimeSeriesStore` of
  fixed-memory multi-resolution rollup rings over the metric update
  stream (schema ``repro-tsdb-1``);
- :mod:`repro.obs.slo` — the :class:`SLOEngine` evaluating declarative
  per-tenant objectives with fast/slow burn-rate alert pairs (the
  ``slo`` health subsystem);
- :mod:`repro.obs.scrape` — the ``ACL_Observability`` service object and
  the :class:`ObsAggregator` merging N facilities' scrapes into the
  tenant-keyed view ``repro-ice top`` renders;
- :mod:`repro.obs.analysis` — the per-request half of the ops plane:
  the bounded :class:`TraceIndex` (schema ``repro-traceidx-1``),
  :func:`critical_path` blame extraction behind ``repro-ice explain``,
  and the tail-based :class:`TraceSampler` whose kept set feeds SLO
  alert exemplars.

Everything is optional and off by default: components accept
``tracer=None`` / ``metrics=None`` and skip all bookkeeping when unset,
so the untraced hot path stays untouched.
"""

from repro.obs.trace import (
    Span,
    SpanContext,
    SpanStatus,
    Tracer,
    child_span,
    current_span,
    extract_context,
    use_span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    bucket_quantile,
)
from repro.obs.health import (
    HealthEngine,
    HealthReport,
    HealthThresholds,
    SubsystemHealth,
)
from repro.obs.recorder import (
    FlightRecorder,
    FlightRecorderServer,
    merge_snapshots,
)
from repro.obs.exporters import (
    ConsoleSpanExporter,
    JsonlSpanExporter,
    format_span_table,
    read_jsonl_spans,
    summarize_spans,
    trace_tree,
)
from repro.obs.stream import (
    SessionStream,
    TelemetryBus,
    TelemetryEvent,
    TelemetryServer,
    TelemetrySubscription,
)
from repro.obs.profiler import SpanProfiler, profile_tracer
from repro.obs.baseline import BaselineStore
from repro.obs.timeseries import TimeSeriesStore, is_daemon_side_metric
from repro.obs.slo import SLOEngine, SLObjective, default_objectives
from repro.obs.scrape import ObsAggregator, ObservabilityServer, format_top
from repro.obs.analysis import (
    TraceIndex,
    TraceSampler,
    critical_path,
    format_blame,
)

__all__ = [
    "Span",
    "SpanContext",
    "SpanStatus",
    "Tracer",
    "child_span",
    "current_span",
    "extract_context",
    "use_span",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "bucket_quantile",
    "HealthEngine",
    "HealthReport",
    "HealthThresholds",
    "SubsystemHealth",
    "FlightRecorder",
    "FlightRecorderServer",
    "merge_snapshots",
    "ConsoleSpanExporter",
    "JsonlSpanExporter",
    "format_span_table",
    "read_jsonl_spans",
    "summarize_spans",
    "trace_tree",
    "SessionStream",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetryServer",
    "TelemetrySubscription",
    "SpanProfiler",
    "profile_tracer",
    "BaselineStore",
    "TimeSeriesStore",
    "is_daemon_side_metric",
    "SLOEngine",
    "SLObjective",
    "default_objectives",
    "ObsAggregator",
    "ObservabilityServer",
    "format_top",
    "TraceIndex",
    "TraceSampler",
    "critical_path",
    "format_blame",
]
