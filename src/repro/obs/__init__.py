"""Observability: dependency-free tracing and metrics for the ICE.

The paper's cross-facility runs span a control channel (Pyro RPC), a
deliberately separate data channel (the CIFS share), and instrument
serial links — and the companion framework paper (arXiv:2307.06883)
stresses *per-segment* latency measurement across exactly that path.
This package is the measurement substrate:

- :mod:`repro.obs.trace` — spans (trace_id/span_id/parent_id) produced
  by a :class:`Tracer`, with context propagation both in-process (a
  contextvar) and across the control channel (a ``trace`` REQUEST
  field), so a workflow-task span on the DGX parents the daemon-side
  dispatch span and the instrument-command span at ACL;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms shared by every layer;
- :mod:`repro.obs.exporters` — JSONL span files, console tables, and
  the ``summarize`` API the benchmarks print.

Everything is optional and off by default: components accept
``tracer=None`` / ``metrics=None`` and skip all bookkeeping when unset,
so the untraced hot path stays untouched.
"""

from repro.obs.trace import (
    Span,
    SpanContext,
    SpanStatus,
    Tracer,
    child_span,
    current_span,
    extract_context,
    use_span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.exporters import (
    ConsoleSpanExporter,
    JsonlSpanExporter,
    format_span_table,
    read_jsonl_spans,
    summarize_spans,
)

__all__ = [
    "Span",
    "SpanContext",
    "SpanStatus",
    "Tracer",
    "child_span",
    "current_span",
    "extract_context",
    "use_span",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "ConsoleSpanExporter",
    "JsonlSpanExporter",
    "format_span_table",
    "read_jsonl_spans",
    "summarize_spans",
]
