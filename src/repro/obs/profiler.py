"""Continuous span profiling: where does a run actually spend its time?

Traces say *what ran and for how long*; the profiler says *which
operation owned the clock* — self-time, with the children's share
subtracted out. A timer-interrupt sampler would be nondeterministic
under :class:`~repro.clock.VirtualClock`, so this one samples at span
*transitions* instead: every span start and span end closes the
interval since the previous transition on that thread and attributes it
to the span that was innermost (the tracer's contextvar stack) during
the interval. Under the simulated clock the attribution is exact and
reproducible; under the wall clock it is standard sampling with
transition-aligned sample points. CPU self-time rides along via
:func:`time.thread_time` deltas (always wall-based — the virtual clock
has no CPU notion).

Attach with :meth:`SpanProfiler.attach` (or just pass ``profile=True``
to ``run_cv_workflow`` / ``Session.run_workflow`` / a campaign). The
aggregated document — per-operation self/total time, sample counts and
the hot-path tree — carries ``"schema": "repro-profile-1"`` and is what
``BENCH_profile.json`` embeds.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.clock import Clock
from repro.obs.trace import Span, Tracer, current_span

#: Schema tag stamped into every profile document.
SCHEMA = "repro-profile-1"

#: Bound on the span-id -> path index (evicted oldest-first). Paths are
#: registered at span start and looked up at most a few transitions
#: later, so even a tiny fraction of this is ample.
_MAX_INDEX = 50000

#: Depth bound when recording a hot path (defensive: recursive span
#: nests deeper than this are truncated at the root end).
_MAX_PATH = 64


class _OpStats:
    __slots__ = ("count", "errors", "self_s", "cpu_self_s", "total_s", "samples")

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.self_s = 0.0
        self.cpu_self_s = 0.0
        self.total_s = 0.0
        self.samples = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "errors": self.errors,
            "self_s": self.self_s,
            "cpu_self_s": self.cpu_self_s,
            "total_s": self.total_s,
            "samples": self.samples,
        }


class _TreeNode:
    __slots__ = ("name", "self_s", "cpu_self_s", "samples", "children")

    def __init__(self, name: str):
        self.name = name
        self.self_s = 0.0
        self.cpu_self_s = 0.0
        self.samples = 0
        self.children: dict[str, _TreeNode] = {}

    def child(self, name: str) -> "_TreeNode":
        node = self.children.get(name)
        if node is None:
            node = _TreeNode(name)
            self.children[name] = node
        return node

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "self_s": self.self_s,
            "cpu_self_s": self.cpu_self_s,
            "samples": self.samples,
            "children": [
                child.to_dict()
                for child in sorted(
                    self.children.values(), key=lambda n: -n.self_s
                )
            ],
        }


class SpanProfiler:
    """Transition-sampling profiler hooked into one :class:`Tracer`.

    Thread-safe: each thread keeps its own last-transition stamps (a
    worker's interval is attributed to *that worker's* current span),
    and the shared aggregates sit behind one lock taken per transition
    — two clock reads, two dict updates. The sampling hooks themselves
    live in ``Tracer.start_span`` / ``Span.end`` and cost one attribute
    read when no profiler is attached.
    """

    def __init__(self, clock: Clock | None = None):
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ops: dict[str, _OpStats] = {}
        self._root = _TreeNode("<root>")
        self._paths: dict[str, tuple[str, ...]] = {}
        self._samples_total = 0
        self._started_at: float | None = None
        self._tracer: Tracer | None = None

    # -- attach / detach ----------------------------------------------------
    def attach(self, tracer: Tracer) -> bool:
        """Install as ``tracer.profiler``; False when the slot is taken.

        The tracer has one profiler slot (unlike the chainable exporter
        slot): overlapping profiles of the same tracer would double-
        attribute every interval, so a second attach is refused and the
        caller should share the one already installed.
        """
        if tracer.profiler is not None and tracer.profiler is not self:
            return False
        if self._clock is None:
            self._clock = tracer.clock
        if self._started_at is None:
            self._started_at = self._clock.now()
        self._tracer = tracer
        tracer.profiler = self
        return True

    def detach(self, tracer: Tracer | None = None) -> None:
        """Remove from the tracer (only if still ours); keeps the data."""
        target = tracer or self._tracer
        if target is not None and target.profiler is self:
            target.profiler = None
        if target is self._tracer:
            self._tracer = None

    def __enter__(self) -> "SpanProfiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- sampling hooks (called by the tracer) ------------------------------
    def _thread_state(self):
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = {"wall": None, "cpu": None}
        return state

    def _sample(self, owner: Span | None) -> None:
        """Close this thread's open interval, attributing it to ``owner``."""
        clock = self._clock
        if clock is None:  # never attached; nothing meaningful to stamp
            return
        now_wall = clock.now()
        try:
            now_cpu = time.thread_time()
        except (AttributeError, OSError):  # pragma: no cover - exotic platforms
            now_cpu = 0.0
        state = self._thread_state()
        last_wall, last_cpu = state["wall"], state["cpu"]
        state["wall"], state["cpu"] = now_wall, now_cpu
        if last_wall is None or owner is None:
            return
        elapsed = max(0.0, now_wall - last_wall)
        cpu = max(0.0, now_cpu - (last_cpu or 0.0))
        with self._lock:
            self._samples_total += 1
            stats = self._ops.get(owner.name)
            if stats is None:
                stats = self._ops[owner.name] = _OpStats()
            stats.self_s += elapsed
            stats.cpu_self_s += cpu
            stats.samples += 1
            node = self._root
            for name in self._paths.get(owner.span_id, (owner.name,)):
                node = node.child(name)
            node.self_s += elapsed
            node.cpu_self_s += cpu
            node.samples += 1

    def on_start(self, span: Span) -> None:
        """Tracer hook: a span was created (not yet necessarily current)."""
        # the interval that just ended belongs to whatever was innermost
        self._sample(current_span())
        parent_path = ()
        if span.parent_id is not None:
            with self._lock:
                parent_path = self._paths.get(span.parent_id, ())
        path = (parent_path + (span.name,))[-_MAX_PATH:]
        with self._lock:
            self._paths[span.span_id] = path
            while len(self._paths) > _MAX_INDEX:
                self._paths.pop(next(iter(self._paths)))

    def on_end(self, span: Span) -> None:
        """Tracer hook: a span ended (contextvar not yet restored)."""
        # prefer the innermost current span; fall back to the ending one
        # (spans ended off-thread or never made current)
        self._sample(current_span() or span)
        with self._lock:
            stats = self._ops.get(span.name)
            if stats is None:
                stats = self._ops[span.name] = _OpStats()
            stats.count += 1
            stats.total_s += span.duration_s
            if span.status == "ERROR":
                stats.errors += 1

    # -- reporting ----------------------------------------------------------
    def profile(self) -> dict[str, Any]:
        """The aggregated ``repro-profile-1`` document (JSON-safe)."""
        now = self._clock.now() if self._clock is not None else 0.0
        with self._lock:
            operations = {
                name: stats.to_dict() for name, stats in self._ops.items()
            }
            tree = self._root.to_dict()
            samples_total = self._samples_total

        hot_paths: list[dict[str, Any]] = []

        def walk(node: dict[str, Any], path: tuple[str, ...]) -> None:
            for child in node["children"]:
                child_path = path + (child["name"],)
                if child["samples"] > 0:
                    hot_paths.append(
                        {
                            "path": list(child_path),
                            "self_s": child["self_s"],
                            "cpu_self_s": child["cpu_self_s"],
                            "samples": child["samples"],
                        }
                    )
                walk(child, child_path)

        walk(tree, ())
        hot_paths.sort(key=lambda p: -p["self_s"])
        started = self._started_at if self._started_at is not None else now
        return {
            "schema": SCHEMA,
            "captured_at": now,
            "wall_s": max(0.0, now - started),
            "samples_total": samples_total,
            "operations": operations,
            "hot_paths": hot_paths[:10],
            "tree": tree,
        }

    def format_table(self, top: int = 15) -> str:
        """Console rendering, hottest self-time first."""
        doc = self.profile()
        ops = sorted(
            doc["operations"].items(), key=lambda kv: -kv[1]["self_s"]
        )[:top]
        if not ops:
            return "(no profile samples)"
        name_w = max(len("operation"), max(len(n) for n, _ in ops))
        header = (
            f"{'operation'.ljust(name_w)}  {'count':>6}  {'self s':>9}  "
            f"{'cpu s':>9}  {'total s':>9}  {'samples':>7}"
        )
        lines = [header, "-" * len(header)]
        for name, e in ops:
            lines.append(
                f"{name.ljust(name_w)}  {int(e['count']):>6}  "
                f"{e['self_s']:>9.3f}  {e['cpu_self_s']:>9.3f}  "
                f"{e['total_s']:>9.3f}  {int(e['samples']):>7}"
            )
        return "\n".join(lines)


def profile_tracer(tracer: Tracer) -> "SpanProfiler | None":
    """Attach a fresh profiler to ``tracer``; None when one is active.

    The convenience entry the ``profile=True`` paths use: callers that
    get None should read the already-attached profiler instead of
    stacking a second one.
    """
    profiler = SpanProfiler(clock=tracer.clock)
    return profiler if profiler.attach(tracer) else None
