"""Health verdicts: turning raw telemetry into judgments.

The paper's operators cannot watch the cell — the ecosystem must notice
on its own when it is not fit to run. :class:`HealthEngine` evaluates
rolling-window rules over the session's
:class:`~repro.obs.metrics.MetricsRegistry` and renders one
``healthy`` / ``degraded`` / ``unhealthy`` verdict per subsystem, each
with human-readable reasons:

- **rpc** — control-channel error rate over the window and aggregate
  p95 call latency (interpolated from the histogram buckets);
- **resilience** — circuit-breaker open/half-open state and the retry
  volume in the window;
- **datachannel** — mount checksum-verify failures, watcher poll
  failures, and (via :meth:`HealthEngine.watch`) live watcher
  ``failure_streak`` readings;
- **workflow** — failed/skipped task outcomes;
- **fleet** — crashed fleet cells;
- **chaos** — injected faults (a reminder that observed trouble may be
  an experiment, not an outage).

Counters are *windowed*: each :meth:`HealthEngine.evaluate` snapshots
every counter series and rates are computed against the oldest snapshot
still inside ``window_s`` (the construction-time snapshot seeds the
window, so a single end-of-run evaluation judges the whole run).
Gauges are read live; histogram quantiles are lifetime aggregates.

``session.health()`` is the one-call surface; ``require_healthy=True``
on workflows and campaigns turns the verdict into a pre-flight gate
(:class:`~repro.errors.HealthGateError` on ``unhealthy``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clock import Clock, WALL
from repro.obs.metrics import MetricsRegistry, bucket_quantile

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_SEVERITY = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}

#: Subsystems every report covers, in display order, even when idle.
SUBSYSTEMS = (
    "rpc",
    "resilience",
    "datachannel",
    "workflow",
    "fleet",
    "chaos",
    "durability",
    "perf",
    "gateway",
    "slo",
)

#: A probe returns None (nothing to report) or a (status, reason) pair.
Probe = Callable[[], "tuple[str, str] | None"]


@dataclass(frozen=True)
class HealthThresholds:
    """Rule thresholds; defaults sized for the simulated ICE.

    Attributes:
        rpc_min_calls: below this many windowed calls the error-rate
            rule abstains (two calls, one failed, is not a 50% outage).
        rpc_error_rate_degraded / rpc_error_rate_unhealthy: windowed
            client error-rate bounds.
        rpc_p95_degraded_s / rpc_p95_unhealthy_s: aggregate p95 call
            latency bounds. Generous by default: a clean run legitimately
            contains one multi-second acquisition wait among many
            sub-millisecond calls.
        retries_degraded: windowed resilience retries that flag the
            control channel as degraded (the calls succeeded — but only
            through the retry machinery).
        watcher_streak_degraded / watcher_streak_unhealthy: consecutive
            failing polls of a watched directory (see
            :meth:`HealthEngine.watch`).
        perf_ratio_degraded / perf_ratio_unhealthy: how far an
            operation's mean latency may grow past its recorded baseline
            before the ``perf`` subsystem flags it (see
            :meth:`HealthEngine.track_baseline`).
    """

    rpc_min_calls: int = 5
    rpc_error_rate_degraded: float = 0.05
    rpc_error_rate_unhealthy: float = 0.5
    rpc_p95_degraded_s: float = 10.0
    rpc_p95_unhealthy_s: float = 60.0
    retries_degraded: int = 3
    watcher_streak_degraded: int = 1
    watcher_streak_unhealthy: int = 5
    perf_ratio_degraded: float = 1.5
    perf_ratio_unhealthy: float = 3.0


def worst(*statuses: str) -> str:
    """The most severe of the given statuses (healthy when empty)."""
    return max(statuses, key=_SEVERITY.__getitem__, default=HEALTHY)


@dataclass
class SubsystemHealth:
    """One subsystem's verdict plus the evidence behind it."""

    subsystem: str
    status: str = HEALTHY
    reasons: list[str] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    def merge(self, status: str, reason: str = "") -> None:
        """Fold one rule's outcome in; reasons accumulate, status worsens."""
        if _SEVERITY[status] > _SEVERITY[self.status]:
            self.status = status
        if reason and status != HEALTHY:
            self.reasons.append(reason)

    def to_dict(self) -> dict[str, Any]:
        return {
            "subsystem": self.subsystem,
            "status": self.status,
            "reasons": list(self.reasons),
            "details": dict(self.details),
        }


@dataclass
class HealthReport:
    """The whole ecosystem's verdict at one evaluation instant."""

    status: str
    subsystems: dict[str, SubsystemHealth]
    window_s: float
    evaluated_at: float

    @property
    def healthy(self) -> bool:
        return self.status == HEALTHY

    @property
    def unhealthy(self) -> bool:
        return self.status == UNHEALTHY

    def reasons(self) -> list[str]:
        """Every non-healthy reason, prefixed by its subsystem."""
        out: list[str] = []
        for sub in self.subsystems.values():
            out.extend(f"{sub.subsystem}: {r}" for r in sub.reasons)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "window_s": self.window_s,
            "evaluated_at": self.evaluated_at,
            "subsystems": {
                name: sub.to_dict() for name, sub in self.subsystems.items()
            },
        }

    def format_table(self) -> str:
        """Console verdict table (the ``repro health`` output)."""
        rows = [
            (name, sub.status, "; ".join(sub.reasons) or "-")
            for name, sub in self.subsystems.items()
        ]
        rows.append(("overall", self.status, "; ".join(self.reasons()) or "-"))
        name_w = max(len("subsystem"), max(len(r[0]) for r in rows))
        status_w = max(len("status"), max(len(r[1]) for r in rows))
        header = f"{'subsystem'.ljust(name_w)}  {'status'.ljust(status_w)}  reasons"
        lines = [header, "-" * len(header)]
        for name, status, reasons in rows:
            lines.append(f"{name.ljust(name_w)}  {status.ljust(status_w)}  {reasons}")
        return "\n".join(lines)


class HealthEngine:
    """Evaluates the health rules over a metrics registry.

    Args:
        metrics: the registry every layer reports into.
        clock: time source for window bookkeeping (share the session's).
        window_s: rolling-window width for counter-rate rules.
        thresholds: rule bounds; defaults in :class:`HealthThresholds`.

    A construction-time counter snapshot seeds the window, so an engine
    built at session start and evaluated once at session end judges the
    whole run — and an engine evaluated periodically judges only the
    recent window.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock: Clock | None = None,
        window_s: float = 300.0,
        thresholds: HealthThresholds | None = None,
        bus: Any | None = None,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.metrics = metrics
        self.clock = clock or WALL
        self.window_s = window_s
        self.thresholds = thresholds or HealthThresholds()
        #: Optional :class:`~repro.obs.stream.TelemetryBus`; when set,
        #: every *change* of the overall status publishes a ``health``
        #: event, so the live feed shows the flip the moment it happens.
        self.bus = bus
        self._lock = threading.Lock()
        self._history: deque[tuple[float, dict[Any, float]]] = deque()
        self._probes: list[tuple[str, Probe]] = []
        self._last_status: str | None = None
        self._history.append((self.clock.now(), self._snapshot_counters()))

    # -- live-object probes -------------------------------------------------
    def register_probe(self, subsystem: str, probe: Probe) -> None:
        """Attach a live check merged into ``subsystem``'s verdict.

        The probe returns None when it has nothing to report, or a
        ``(status, reason)`` pair. A raising probe is itself reported as
        degraded rather than crashing the evaluation.
        """
        with self._lock:
            self._probes.append((subsystem, probe))

    def watch(self, watcher: Any, subsystem: str = "datachannel") -> None:
        """Track a :class:`~repro.datachannel.watcher.MeasurementWatcher`.

        Its worst per-directory ``failure_streak`` feeds the subsystem
        verdict against the watcher-streak thresholds.
        """
        thresholds = self.thresholds

        def probe() -> tuple[str, str] | None:
            streak = int(getattr(watcher, "failure_streak", 0))
            if streak >= thresholds.watcher_streak_unhealthy:
                return UNHEALTHY, f"watcher failure streak at {streak}"
            if streak >= thresholds.watcher_streak_degraded:
                return DEGRADED, f"watcher failure streak at {streak}"
            return None

        self.register_probe(subsystem, probe)

    def track_baseline(
        self,
        store: Any,
        tracer: Any,
        subsystem: str = "perf",
    ) -> None:
        """Judge span timings against a recorded perf baseline.

        Registers a probe that summarizes ``tracer``'s finished spans,
        compares them with ``store``
        (:class:`~repro.obs.baseline.BaselineStore`), and merges the
        worst regression into the ``perf`` subsystem: ``degraded`` past
        ``perf_ratio_degraded`` x baseline, ``unhealthy`` past
        ``perf_ratio_unhealthy`` x. No baselines or no regressions means
        nothing to report.
        """
        thresholds = self.thresholds

        def probe() -> tuple[str, str] | None:
            if len(store) == 0:
                return None
            verdicts = store.compare(
                tracer.summarize(),
                ratio_degraded=thresholds.perf_ratio_degraded,
                ratio_unhealthy=thresholds.perf_ratio_unhealthy,
            )
            regressions = store.regressions(verdicts)
            if not regressions:
                return None
            name, verdict = regressions[0]
            status = (
                UNHEALTHY if verdict.get("severity") == "unhealthy" else DEGRADED
            )
            extra = len(regressions) - 1
            suffix = f" (+{extra} more)" if extra else ""
            return status, (
                f"{name} mean latency {verdict['ratio']:.1f}x its baseline "
                f"({verdict['current_mean_s']:.4f}s vs "
                f"{verdict['baseline_mean_s']:.4f}s){suffix}"
            )

        self.register_probe(subsystem, probe)

    # -- windowed counter bookkeeping ---------------------------------------
    def _snapshot_counters(self) -> dict[Any, float]:
        readings: dict[Any, float] = {}
        for name in self.metrics.names():
            metric = self.metrics.get(name)
            if metric is None or metric.kind != "counter":
                continue
            for labels, state in metric.series():
                readings[(name, tuple(sorted(labels.items())))] = state[0]
        return readings

    @staticmethod
    def _delta_sum(
        current: dict[Any, float],
        baseline: dict[Any, float],
        name: str,
        **label_filter: Any,
    ) -> float:
        """Windowed increase of ``name``, summed over matching label sets."""
        total = 0.0
        for key, value in current.items():
            metric_name, label_key = key
            if metric_name != name:
                continue
            labels = dict(label_key)
            if any(labels.get(k) != str(v) for k, v in label_filter.items()):
                continue
            total += value - baseline.get(key, 0.0)
        return total

    def _aggregate_quantile(self, name: str, q: float) -> float | None:
        """Quantile of a histogram merged across all its label sets."""
        metric = self.metrics.get(name)
        if metric is None or metric.kind != "histogram":
            return None
        combined: list[int] | None = None
        count = 0
        minimum = float("inf")
        maximum = float("-inf")
        for _labels, state in metric.series():
            if combined is None:
                combined = [0] * len(state.bucket_counts)
            for i, bucket_count in enumerate(state.bucket_counts):
                combined[i] += bucket_count
            count += state.count
            minimum = min(minimum, state.minimum)
            maximum = max(maximum, state.maximum)
        if combined is None or count == 0:
            return None
        return bucket_quantile(metric.buckets, combined, count, q, minimum, maximum)

    # -- evaluation ---------------------------------------------------------
    def evaluate(self) -> HealthReport:
        """Run every rule; returns the per-subsystem verdict report."""
        now = self.clock.now()
        current = self._snapshot_counters()
        with self._lock:
            # keep at least one snapshot older than now as the baseline;
            # drop older ones only when a newer in-window baseline exists
            while (
                len(self._history) >= 2
                and self._history[1][0] <= now - self.window_s
            ):
                self._history.popleft()
            baseline = self._history[0][1] if self._history else {}
            self._history.append((now, current))
            probes = list(self._probes)

        subsystems = {name: SubsystemHealth(name) for name in SUBSYSTEMS}
        self._rule_rpc(subsystems["rpc"], current, baseline)
        self._rule_resilience(subsystems["resilience"], current, baseline)
        self._rule_datachannel(subsystems["datachannel"], current, baseline)
        self._rule_workflow(subsystems["workflow"], current, baseline)
        self._rule_fleet(subsystems["fleet"], current, baseline)
        self._rule_chaos(subsystems["chaos"], current, baseline)
        self._rule_durability(subsystems["durability"], current, baseline)
        self._rule_gateway(subsystems["gateway"], current, baseline)

        for subsystem, probe in probes:
            target = subsystems.setdefault(subsystem, SubsystemHealth(subsystem))
            try:
                outcome = probe()
            except Exception as exc:  # noqa: BLE001 - probes must not crash health
                target.merge(DEGRADED, f"health probe raised: {exc}")
                continue
            if outcome is not None:
                target.merge(*outcome)

        overall = worst(*(sub.status for sub in subsystems.values()))
        report = HealthReport(
            status=overall,
            subsystems=subsystems,
            window_s=self.window_s,
            evaluated_at=now,
        )
        with self._lock:
            previous = self._last_status
            self._last_status = overall
        if self.bus is not None and overall != previous:
            try:
                self.bus.publish(
                    "health",
                    "health.status",
                    status=overall,
                    previous=previous,
                    reasons=report.reasons(),
                )
            except Exception:  # noqa: BLE001 - streaming must not break health
                pass
        return report

    # -- rules --------------------------------------------------------------
    def _rule_rpc(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        t = self.thresholds
        calls = self._delta_sum(current, baseline, "rpc.client.calls_total")
        errors = self._delta_sum(
            current, baseline, "rpc.client.calls_total", status="error"
        )
        sub.details["calls"] = calls
        sub.details["errors"] = errors
        if calls >= t.rpc_min_calls:
            rate = errors / calls
            sub.details["error_rate"] = rate
            if rate >= t.rpc_error_rate_unhealthy:
                sub.merge(
                    UNHEALTHY,
                    f"client error rate {rate:.0%} "
                    f"({errors:.0f}/{calls:.0f} calls in window)",
                )
            elif rate >= t.rpc_error_rate_degraded:
                sub.merge(
                    DEGRADED,
                    f"client error rate {rate:.0%} "
                    f"({errors:.0f}/{calls:.0f} calls in window)",
                )
        p95 = self._aggregate_quantile("rpc.client.call_latency_s", 0.95)
        if p95 is not None:
            sub.details["p95_latency_s"] = p95
            if p95 >= t.rpc_p95_unhealthy_s:
                sub.merge(UNHEALTHY, f"p95 call latency {p95:.2f}s")
            elif p95 >= t.rpc_p95_degraded_s:
                sub.merge(DEGRADED, f"p95 call latency {p95:.2f}s")

    def _rule_resilience(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        gauge = self.metrics.get("resilience.breaker.state")
        if gauge is not None and gauge.kind == "gauge":
            for labels, state in gauge.series():
                breaker = labels.get("breaker", "?")
                value = state[0]
                if value == 1:
                    sub.merge(UNHEALTHY, f"breaker {breaker!r} open")
                elif value == 2:
                    sub.merge(DEGRADED, f"breaker {breaker!r} half-open (probing)")
        retries = self._delta_sum(current, baseline, "resilience.retries_total")
        sub.details["retries"] = retries
        if retries >= self.thresholds.retries_degraded:
            sub.merge(DEGRADED, f"{retries:.0f} call retries in window")

    def _rule_datachannel(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        verify_failures = self._delta_sum(
            current, baseline, "datachannel.verify_failures_total"
        )
        sub.details["verify_failures"] = verify_failures
        if verify_failures > 0:
            sub.merge(
                UNHEALTHY,
                f"{verify_failures:.0f} checksum verify failure(s) "
                "on the mount",
            )
        poll_failures = self._delta_sum(
            current, baseline, "datachannel.watcher.poll_failures_total"
        )
        sub.details["poll_failures"] = poll_failures
        if poll_failures > 0:
            sub.merge(
                DEGRADED, f"{poll_failures:.0f} failed directory poll(s)"
            )

    def _rule_workflow(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        failed = self._delta_sum(
            current, baseline, "workflow.tasks_total", state="failed"
        )
        skipped = self._delta_sum(
            current, baseline, "workflow.tasks_total", state="skipped"
        )
        sub.details["failed_tasks"] = failed
        sub.details["skipped_tasks"] = skipped
        if failed > 0:
            sub.merge(UNHEALTHY, f"{failed:.0f} failed workflow task(s)")
        if skipped > 0:
            sub.merge(DEGRADED, f"{skipped:.0f} skipped workflow task(s)")

    def _rule_fleet(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        errored = self._delta_sum(
            current, baseline, "fleet.cells_total", status="error"
        )
        sub.details["cells_errored"] = errored
        if errored > 0:
            sub.merge(UNHEALTHY, f"{errored:.0f} fleet cell(s) crashed")

    def _rule_chaos(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        faults = self._delta_sum(current, baseline, "chaos.faults_total")
        sub.details["faults_injected"] = faults
        if faults > 0:
            sub.merge(
                DEGRADED, f"{faults:.0f} chaos fault(s) injected in window"
            )

    def _rule_durability(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        # fencing rejections mean a zombie predecessor is still issuing
        # commands — exactly the split-brain the lease exists to stop,
        # but a sign the operator should find and kill the old process
        fenced = self._delta_sum(
            current, baseline, "durability.lease_fenced_total"
        )
        sub.details["lease_fenced"] = fenced
        if fenced > 0:
            sub.merge(
                DEGRADED, f"{fenced:.0f} stale-lease call(s) fenced in window"
            )
        torn = self._delta_sum(current, baseline, "durability.torn_tails_total")
        sub.details["torn_tails"] = torn
        if torn > 0:
            sub.merge(
                DEGRADED,
                f"{torn:.0f} torn journal tail(s) detected (crash mid-append)",
            )
        restarts = self._delta_sum(
            current, baseline, "recovery.daemon_restarts_total"
        )
        resumes = self._delta_sum(current, baseline, "recovery.resumes_total")
        sub.details["daemon_restarts"] = restarts
        sub.details["campaign_resumes"] = resumes
        if restarts > 0:
            sub.merge(
                DEGRADED,
                f"{restarts:.0f} daemon restart(s) in window (recovering)",
            )

    def _rule_gateway(
        self,
        sub: SubsystemHealth,
        current: dict[Any, float],
        baseline: dict[Any, float],
    ) -> None:
        failed = self._delta_sum(
            current, baseline, "gateway.jobs_finished_total", status="failed"
        )
        sub.details["jobs_failed"] = failed
        if failed > 0:
            sub.merge(DEGRADED, f"{failed:.0f} gateway job(s) failed in window")
        auth_rejects = self._delta_sum(
            current, baseline, "gateway.rejects_total", reason="auth"
        )
        sub.details["auth_rejects"] = auth_rejects
        if auth_rejects > 0:
            sub.merge(
                DEGRADED,
                f"{auth_rejects:.0f} tenant auth rejection(s) in window",
            )
        # a cell skipped for health is the scheduler *working*, but a
        # window full of skips means capacity is down — the operator
        # should know before the queue does
        skips = self._delta_sum(
            current, baseline, "gateway.scheduler_skips_total"
        )
        sub.details["unhealthy_cell_skips"] = skips
        if skips > 0:
            sub.merge(
                DEGRADED,
                f"{skips:.0f} placement(s) skipped an unhealthy cell in window",
            )


def require_healthy(
    engine: HealthEngine | None, what: str = "run"
) -> HealthReport | None:
    """The pre-flight gate: raise when the ecosystem is unhealthy.

    Shared by ``Session.run_workflow``/``workflow`` and the campaign
    classes. No engine means no opinion (returns None rather than
    blocking a caller who never wired health up).

    Raises:
        HealthGateError: the report came back ``unhealthy``; the message
            carries every reason.
    """
    if engine is None:
        return None
    report = engine.evaluate()
    if report.unhealthy:
        from repro.errors import HealthGateError

        reasons = "; ".join(report.reasons()) or "no reasons recorded"
        raise HealthGateError(
            f"pre-flight health gate refused to start {what}: {reasons}"
        )
    return report
