"""Fixed-memory multi-resolution time-series rollups over the metrics plane.

The :class:`MetricsRegistry` answers "what is the value now"; this module
answers "how did it move". A :class:`TimeSeriesStore` subscribes to the
registry's update-listener hook and folds every write into per-series
rollup rings at several resolutions (1 s / 10 s / 60 s by default). Each
rollup cell keeps ``sum``, ``count``, ``min``, ``max``, the last sample,
and — for histograms — per-bucket count deltas, so rates, averages and
latency-threshold fractions can be asked for any recent window without
ever storing raw samples.

Memory is fixed by construction: bounded ring per (series, resolution),
a bounded export ring of closed base-resolution cells (the scrape feed,
cursor/gap contract identical to ``TelemetryBus.read_since``), and a cap
on the number of distinct series. Everything beyond a cap is dropped and
counted, never buffered.

Wire schema for scraped rows: ``repro-tsdb-1`` (PROTOCOLS.md §1.9).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Iterable

from repro.clock import Clock, WallClock
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    OVERFLOW_VALUE,
    _label_key,
)

#: Wire schema tag stamped on every scrape reply.
SCHEMA = "repro-tsdb-1"

#: The store's own bookkeeping metrics live under this prefix and are
#: never rolled up — the listener skipping them is what keeps the store
#: from feeding on itself.
OWN_METRIC_PREFIX = "obs.timeseries."

#: Default rollup resolutions in seconds, finest first. The finest one
#: feeds the scrape/export ring.
DEFAULT_RESOLUTIONS: tuple[float, ...] = (1.0, 10.0, 60.0)

#: Metric-name prefixes considered the *daemon* (facility) half of an
#: ICE. When one process hosts both halves on a shared registry, the
#: facility store attaches with ``only=is_daemon_side_metric`` and the
#: session store with its complement, so an aggregator that scrapes both
#: never double-counts a write.
DAEMON_METRIC_PREFIXES: tuple[str, ...] = (
    "rpc.daemon.",
    "rpc.server.",
    "net.",
    "chaos.",
    "datachannel.share.",
    "durability.",
)


def is_daemon_side_metric(name: str) -> bool:
    return name.startswith(DAEMON_METRIC_PREFIXES)


class _Rollup:
    """One aggregation cell: ``[start, start + res)``."""

    __slots__ = ("start", "sum", "count", "minimum", "maximum", "last", "buckets")

    def __init__(self, start: float, n_buckets: int = 0):
        self.start = start
        self.sum = 0.0
        self.count = 0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.last = 0.0
        self.buckets = [0] * n_buckets if n_buckets else None

    def add(self, value: float, bucket_idx: int | None = None) -> None:
        self.sum += value
        self.count += 1
        self.last = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if bucket_idx is not None and self.buckets is not None:
            self.buckets[bucket_idx] += 1


class _Series:
    """Rollup state for one (metric name, label set)."""

    __slots__ = ("name", "kind", "labels", "bounds", "last_raw", "open", "rings")

    def __init__(
        self,
        name: str,
        kind: str,
        labels: dict[str, str],
        bounds: tuple[float, ...] | None,
        resolutions: Iterable[float],
        capacity: int,
    ):
        self.name = name
        self.kind = kind
        self.labels = labels
        self.bounds = bounds
        self.last_raw = 0.0
        self.open: dict[float, _Rollup] = {}
        self.rings: dict[float, deque[_Rollup]] = {
            res: deque(maxlen=capacity) for res in resolutions
        }


def _matches(labels: dict[str, str], selector: dict[str, Any] | None) -> bool:
    """Label-equality subset match (the ``name`` key is handled upstream)."""
    if not selector:
        return True
    for k, v in selector.items():
        if k == "name":
            continue
        if labels.get(k) != str(v):
            return False
    return True


class TimeSeriesStore:
    """Rollup rings + scrape ring over one registry's update stream.

    Thread-safe; the listener path is the metric hot path, so it does
    one lock acquire, one dict lookup and one rollup update per
    configured resolution. Attach with ``only=`` to take a name-filtered
    slice of a shared registry (see :func:`is_daemon_side_metric`).
    """

    def __init__(
        self,
        clock: Clock | None = None,
        resolutions: tuple[float, ...] = DEFAULT_RESOLUTIONS,
        ring_capacity: int = 240,
        export_capacity: int = 4096,
        max_series: int = 1024,
    ):
        if not resolutions:
            raise ValueError("need at least one resolution")
        self.clock = clock or WallClock()
        self._resolutions = tuple(sorted(resolutions))
        self.base_resolution = self._resolutions[0]
        self._ring_capacity = ring_capacity
        self._max_series = max_series
        self._lock = threading.Lock()
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], _Series] = {}
        self._export: deque[dict[str, Any]] = deque(maxlen=export_capacity)
        self._export_seq = 0
        self._registry: MetricsRegistry | None = None
        self._only: Callable[[str], bool] | None = None
        self._unsubscribe: Callable[[], None] | None = None

    # -- attachment ---------------------------------------------------------
    def attach(
        self,
        registry: MetricsRegistry,
        only: Callable[[str], bool] | None = None,
    ) -> None:
        """Subscribe to ``registry`` writes (optionally name-filtered).

        Counter series that already exist are seeded with their current
        cumulative reading so the first post-attach increment rolls up
        as its true delta, not the lifetime total.
        """
        if self._unsubscribe is not None:
            raise RuntimeError("store is already attached")
        self._registry = registry
        self._only = only
        with self._lock:
            for name in registry.names():
                metric = registry.get(name)
                if metric is None or metric.kind != "counter":
                    continue
                if name.startswith(OWN_METRIC_PREFIX):
                    continue
                if only is not None and not only(name):
                    continue
                for labels, state in metric.series():
                    series = self._get_series(name, "counter", labels, None)
                    if series is not None:
                        series.last_raw = state[0]
        self._unsubscribe = registry.add_update_listener(self._on_update)

    @property
    def attached(self) -> bool:
        return self._unsubscribe is not None

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- ingest -------------------------------------------------------------
    def _get_series(
        self,
        name: str,
        kind: str,
        labels: dict[str, Any],
        bounds: tuple[float, ...] | None,
    ) -> _Series | None:
        """Get-or-create under the caller-held lock; None once capped."""
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self._max_series:
                return None
            series = _Series(
                name,
                kind,
                {k: str(v) for k, v in labels.items()},
                bounds,
                self._resolutions,
                self._ring_capacity,
            )
            self._series[key] = series
        return series

    def _on_update(
        self, name: str, kind: str, labels: dict[str, Any], value: float
    ) -> None:
        if name.startswith(OWN_METRIC_PREFIX):
            return
        if self._only is not None and not self._only(name):
            return
        now = self.clock.now()
        dropped = False
        with self._lock:
            bounds = None
            if kind == "histogram":
                metric = (
                    self._registry.get(name) if self._registry is not None else None
                )
                if isinstance(metric, Histogram):
                    bounds = metric.buckets
            series = self._get_series(name, kind, labels, bounds)
            if series is None:
                dropped = True
            else:
                if kind == "counter":
                    delta = value - series.last_raw
                    series.last_raw = value
                    if delta > 0:
                        self._record(series, now, delta, None)
                else:
                    bucket_idx = None
                    if kind == "histogram" and series.bounds:
                        bucket_idx = len(series.bounds)
                        for i, bound in enumerate(series.bounds):
                            if value <= bound:
                                bucket_idx = i
                                break
                    self._record(series, now, value, bucket_idx)
        if dropped and self._registry is not None:
            self._registry.counter(
                "obs.timeseries.series_dropped_total",
                "metric writes dropped because the store's series cap was hit",
            ).inc(metric=name)

    def _record(
        self, series: _Series, t: float, value: float, bucket_idx: int | None
    ) -> None:
        n_buckets = len(series.bounds) + 1 if series.bounds else 0
        for res in self._resolutions:
            start = t - (t % res)
            cell = series.open.get(res)
            if cell is not None and cell.start != start:
                self._close_cell(series, res, cell)
                cell = None
            if cell is None:
                cell = _Rollup(start, n_buckets)
                series.open[res] = cell
            cell.add(value, bucket_idx)

    def _close_cell(self, series: _Series, res: float, cell: _Rollup) -> None:
        """Retire one cell into its ring (and the scrape feed at base res)."""
        series.rings[res].append(cell)
        if res == self.base_resolution:
            self._export_seq += 1
            row: dict[str, Any] = {
                "seq": self._export_seq,
                "name": series.name,
                "kind": series.kind,
                "labels": dict(series.labels),
                "res": res,
                "start": cell.start,
                "sum": cell.sum,
                "count": cell.count,
                "min": cell.minimum,
                "max": cell.maximum,
                "last": cell.last,
            }
            if cell.buckets is not None:
                row["buckets"] = list(cell.buckets)
            self._export.append(row)

    def flush(self, now: float | None = None, force: bool = False) -> int:
        """Close open cells whose window has ended (all of them if forced).

        A forced flush may retire a partial cell; later samples in the
        same wall-clock window simply open a fresh cell with the same
        ``start``, so sums over scraped rows stay exact (readers merging
        by ``start`` see at most a few cells per window). Returns the
        number of cells closed.
        """
        now = self.clock.now() if now is None else now
        closed = 0
        with self._lock:
            for series in self._series.values():
                for res in self._resolutions:
                    cell = series.open.get(res)
                    if cell is None or cell.count == 0:
                        continue
                    if force or cell.start + res <= now:
                        self._close_cell(series, res, cell)
                        del series.open[res]
                        closed += 1
        return closed

    # -- queries ------------------------------------------------------------
    def query(
        self,
        name: str,
        selector: dict[str, Any] | None = None,
        window_s: float | None = None,
        resolution: float | None = None,
        now: float | None = None,
    ) -> list[dict[str, Any]]:
        """Merged rollup points for one metric, oldest first.

        Series whose labels subset-match ``selector`` are merged per
        cell-start; open (still-filling) cells are included. Each point:
        ``{"start", "sum", "count", "min", "max", "last", "buckets"?}``.
        """
        res = resolution if resolution is not None else self.base_resolution
        if res not in self._resolutions:
            raise ValueError(f"unknown resolution {res!r}; have {self._resolutions}")
        now = self.clock.now() if now is None else now
        cutoff = None if window_s is None else now - window_s
        merged: dict[float, dict[str, Any]] = {}
        with self._lock:
            for series in self._series.values():
                if series.name != name or not _matches(series.labels, selector):
                    continue
                cells = list(series.rings[res])
                open_cell = series.open.get(res)
                if open_cell is not None and open_cell.count:
                    cells.append(open_cell)
                for cell in cells:
                    if cutoff is not None and cell.start + res <= cutoff:
                        continue
                    point = merged.get(cell.start)
                    if point is None:
                        point = {
                            "start": cell.start,
                            "sum": 0.0,
                            "count": 0,
                            "min": float("inf"),
                            "max": float("-inf"),
                            "last": cell.last,
                        }
                        merged[cell.start] = point
                    point["sum"] += cell.sum
                    point["count"] += cell.count
                    point["min"] = min(point["min"], cell.minimum)
                    point["max"] = max(point["max"], cell.maximum)
                    point["last"] = cell.last
                    if cell.buckets is not None:
                        buckets = point.setdefault("buckets", [0] * len(cell.buckets))
                        for i, n in enumerate(cell.buckets):
                            buckets[i] += n
        return [merged[start] for start in sorted(merged)]

    def resolution_for(self, window_s: float) -> float:
        """Finest resolution whose ring retention covers ``window_s``.

        The 1 s ring holds ``ring_capacity`` cells (240 s by default),
        so a 600 s window read at base resolution would silently
        truncate to the retained tail; long windows must read the
        coarser rings instead.
        """
        for res in self._resolutions:
            if res * self._ring_capacity >= window_s:
                return res
        return self._resolutions[-1]

    def window_stats(
        self,
        name: str,
        selector: dict[str, Any] | None = None,
        window_s: float = 60.0,
        now: float | None = None,
        resolution: float | None = None,
    ) -> dict[str, Any]:
        """Aggregate of :meth:`query` over one window: sum/count/buckets.

        ``resolution`` defaults to :meth:`resolution_for` the window, so
        windows longer than the base ring's retention stay accurate.
        """
        res = resolution if resolution is not None else self.resolution_for(window_s)
        points = self.query(name, selector, window_s=window_s, resolution=res, now=now)
        total = sum(p["sum"] for p in points)
        count = sum(p["count"] for p in points)
        buckets: list[int] | None = None
        for p in points:
            if "buckets" in p:
                if buckets is None:
                    buckets = [0] * len(p["buckets"])
                for i, n in enumerate(p["buckets"]):
                    buckets[i] += n
        return {"sum": total, "count": count, "buckets": buckets}

    def tenants(self, name: str | None = None) -> list[str]:
        """Distinct ``tenant`` label values seen (overflow excluded)."""
        seen: set[str] = set()
        with self._lock:
            for series in self._series.values():
                if name is not None and series.name != name:
                    continue
                tenant = series.labels.get("tenant")
                if tenant is not None and tenant != OVERFLOW_VALUE:
                    seen.add(tenant)
        return sorted(seen)

    def bucket_bounds(self, name: str) -> tuple[float, ...] | None:
        """Histogram bucket upper bounds for ``name`` (None if unseen)."""
        with self._lock:
            for series in self._series.values():
                if series.name == name and series.bounds:
                    return series.bounds
        return None

    def series_count(self) -> int:
        with self._lock:
            return len(self._series)

    def names(self) -> list[str]:
        with self._lock:
            return sorted({series.name for series in self._series.values()})

    # -- scrape feed --------------------------------------------------------
    def scrape(
        self,
        cursor: int = 0,
        selectors: dict[str, Any] | None = None,
        max_rows: int = 512,
        flush: bool = True,
    ) -> tuple[list[dict[str, Any]], int, int]:
        """Cursor read over the export ring (the ``Obs_Scrape`` contract).

        Same shape as ``TelemetryBus.read_since``: rows with ``seq >
        cursor`` oldest-first, the cursor to send next time, and how
        many rows fell off the ring unseen. ``selectors`` filters rows
        without stalling the cursor (filtered-out rows still advance
        it): the ``name`` key prefix-matches the metric name, every
        other key is exact label equality. A scrape force-flushes open
        cells first so bursts younger than one resolution are visible.
        """
        if flush:
            self.flush(force=True)
        if max_rows <= 0:
            return [], cursor, 0
        name_sel = selectors.get("name") if selectors else None
        with self._lock:
            if not self._export:
                return [], max(cursor, self._export_seq), 0
            oldest = self._export[0]["seq"]
            gap = max(0, oldest - cursor - 1) if cursor < oldest else 0
            rows: list[dict[str, Any]] = []
            scanned_to = max(cursor, oldest - 1 + gap)
            for row in self._export:
                if row["seq"] <= cursor:
                    continue
                scanned_to = row["seq"]
                if name_sel is not None and not row["name"].startswith(name_sel):
                    continue
                if not _matches(row["labels"], selectors):
                    continue
                rows.append(dict(row))
                if len(rows) >= max_rows:
                    break
        return rows, scanned_to, gap
