"""Per-operation latency baselines and regression verdicts.

PR 3 made the control channel ~3x faster under WAN latency — and
nothing in the repo would notice if a later change gave it all back.
This module closes that loop: :meth:`BaselineStore.record_baseline`
freezes the per-operation timing profile of a known-good run (from
:func:`~repro.obs.exporters.summarize_spans` output), and
:meth:`BaselineStore.compare` judges a later run against it with ratio
thresholds — ``ok`` / ``regressed`` per operation, plus ``new`` for
operations the baseline has never seen.

Wired two ways:

- ``HealthEngine.track_baseline(store, tracer)`` registers a ``perf``
  health probe, so a regressed operation degrades the ecosystem verdict
  exactly like a flaky watcher does;
- the profiling benchmark emits the baselines (with the
  ``repro-profile-1`` document) into ``BENCH_profile.json``, seeding the
  release-to-release perf trajectory CI uploads as an artifact.

Store documents carry ``"schema": "repro-baseline-1"``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any

from repro.clock import Clock, WALL

#: Schema tag stamped into every saved store.
SCHEMA = "repro-baseline-1"

OK = "ok"
REGRESSED = "regressed"
NEW = "new"


class BaselineStore:
    """Named per-operation latency baselines with ratio comparisons.

    Args:
        clock: stamps ``recorded_at`` on baselines.
        min_count: operations with fewer windowed spans than this are
            not judged (two samples do not make a distribution).
        min_floor_s: operations whose baseline *and* current mean are
            both under this are never flagged — a 50 µs dict lookup
            doubling is noise, not a regression.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        min_count: int = 3,
        min_floor_s: float = 0.001,
    ):
        self.clock = clock or WALL
        self.min_count = min_count
        self.min_floor_s = min_floor_s
        self._lock = threading.Lock()
        self._baselines: dict[str, dict[str, Any]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._baselines)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._baselines)

    def get(self, operation: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._baselines.get(operation)
            return dict(entry) if entry else None

    # -- recording ----------------------------------------------------------
    def record_baseline(
        self, summary: dict[str, dict[str, float]]
    ) -> dict[str, dict[str, Any]]:
        """Freeze a run's per-operation stats as the new baseline.

        ``summary`` is :func:`~repro.obs.exporters.summarize_spans`
        output (``tracer.summarize()``). Operations below ``min_count``
        are skipped — they would make meaningless denominators later.
        Returns what was recorded.
        """
        now = self.clock.now()
        recorded: dict[str, dict[str, Any]] = {}
        for name, stats in summary.items():
            count = int(stats.get("count", 0))
            if count < self.min_count:
                continue
            recorded[name] = {
                "mean_s": float(stats.get("mean_s", 0.0)),
                "p95_s": float(stats.get("p95_s", 0.0)),
                "count": count,
                "recorded_at": now,
            }
        with self._lock:
            self._baselines.update(recorded)
        return recorded

    # -- judging ------------------------------------------------------------
    def compare(
        self,
        summary: dict[str, dict[str, float]],
        ratio_degraded: float = 1.5,
        ratio_unhealthy: float = 3.0,
    ) -> dict[str, dict[str, Any]]:
        """Judge a run against the recorded baselines.

        Returns per-operation verdicts::

            {name: {"status": "ok"|"regressed"|"new",
                    "ratio": current_mean / baseline_mean,
                    "severity": "degraded"|"unhealthy" (regressed only),
                    "baseline_mean_s": ..., "current_mean_s": ...}}

        ``regressed`` means the mean grew past ``ratio_degraded`` x the
        baseline (``severity`` says how far); operations under the noise
        floor or below ``min_count`` current samples are reported ``ok``
        with their ratio for context.
        """
        with self._lock:
            baselines = {k: dict(v) for k, v in self._baselines.items()}
        verdicts: dict[str, dict[str, Any]] = {}
        for name, stats in summary.items():
            current_mean = float(stats.get("mean_s", 0.0))
            count = int(stats.get("count", 0))
            base = baselines.get(name)
            if base is None:
                verdicts[name] = {
                    "status": NEW,
                    "ratio": None,
                    "baseline_mean_s": None,
                    "current_mean_s": current_mean,
                }
                continue
            base_mean = float(base.get("mean_s", 0.0))
            ratio = (current_mean / base_mean) if base_mean > 0 else None
            verdict: dict[str, Any] = {
                "status": OK,
                "ratio": ratio,
                "baseline_mean_s": base_mean,
                "current_mean_s": current_mean,
            }
            judgeable = (
                ratio is not None
                and count >= self.min_count
                and max(base_mean, current_mean) >= self.min_floor_s
            )
            if judgeable and ratio >= ratio_degraded:
                verdict["status"] = REGRESSED
                verdict["severity"] = (
                    "unhealthy" if ratio >= ratio_unhealthy else "degraded"
                )
            verdicts[name] = verdict
        return verdicts

    @staticmethod
    def regressions(
        verdicts: dict[str, dict[str, Any]]
    ) -> list[tuple[str, dict[str, Any]]]:
        """The regressed entries, worst ratio first."""
        out = [
            (name, v) for name, v in verdicts.items() if v["status"] == REGRESSED
        ]
        out.sort(key=lambda item: -(item[1]["ratio"] or 0.0))
        return out

    # -- persistence --------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "schema": SCHEMA,
                "min_count": self.min_count,
                "min_floor_s": self.min_floor_s,
                "baselines": {k: dict(v) for k, v in self._baselines.items()},
            }

    def save(self, path: str | Path) -> Path:
        from repro.durability.atomic import atomic_write_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # temp + fsync + rename: a crash mid-save leaves the previous
        # baseline intact instead of a truncated JSON document
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True)
        )
        return path

    @classmethod
    def from_dict(cls, doc: dict[str, Any], clock: Clock | None = None) -> "BaselineStore":
        """Rebuild a store from :meth:`to_dict` output (tolerant)."""
        store = cls(
            clock=clock,
            min_count=int(doc.get("min_count", 3)),
            min_floor_s=float(doc.get("min_floor_s", 0.001)),
        )
        baselines = doc.get("baselines")
        if isinstance(baselines, dict):
            with store._lock:
                for name, entry in baselines.items():
                    if isinstance(entry, dict):
                        store._baselines[str(name)] = dict(entry)
        return store

    @classmethod
    def load(cls, path: str | Path, clock: Clock | None = None) -> "BaselineStore":
        doc = json.loads(Path(path).read_text())
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"{path} is not a {SCHEMA} document "
                f"(schema={doc.get('schema')!r})"
            )
        return cls.from_dict(doc, clock=clock)
