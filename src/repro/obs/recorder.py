"""The flight recorder: a black box for cross-facility runs.

When a run at the ACL ends in a safe-state teardown, an abnormal-round
abort, a breaker trip, or a crashed fleet cell, the operator at the
other facility gets exactly one artifact to open: a correlated JSON
dump of what both ends of the ecosystem saw just before the event.

Each process keeps its own :class:`FlightRecorder` — a set of bounded
ring buffers holding recent finished spans (chained onto the tracer's
exporter slot so nothing else changes), recent :class:`EventLog`
entries (via subscription), and periodic metric snapshots. ``dump()``
writes one file merging the local half with any remote halves pulled
over the control channel; spans from both sides share trace ids (the
``trace`` REQUEST field propagated them at call time), so the merged
document groups client and daemon spans under the same trace.

The ISSUE's "exposed ``_recorder_dump`` verb" cannot literally start
with an underscore — the RPC layer structurally refuses underscore
names on both ends (see :func:`repro.rpc.expose.is_exposed`). The
daemon half is therefore served by :class:`FlightRecorderServer`, a
separately registered exposed object whose public ``Recorder_Dump``
verb returns the daemon-side snapshot for the client to merge.

Dump documents carry ``"schema": "repro-flightrec-1"``; the layout is
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import threading
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Callable

from repro.clock import Clock, WALL
from repro.logging_utils import Event, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.rpc.expose import expose

#: Schema tag stamped into every dump document.
SCHEMA = "repro-flightrec-1"

#: Span-name prefixes produced on the ACL (daemon) side of the control
#: channel. When one tracer serves both facilities in-process, these
#: decide which half of a merged dump a span belongs to.
DAEMON_SPAN_PREFIXES = ("rpc.dispatch.", "instrument.")


def is_daemon_side_span(span: Span) -> bool:
    """Does this span belong to the ACL (daemon) half of the trace?"""
    return span.name.startswith(DAEMON_SPAN_PREFIXES)


class FlightRecorder:
    """Bounded ring buffers of recent telemetry, dumpable on demand.

    Args:
        service: which half this is (``"dgx-session"``, ``"acl-daemon"``);
            stamped into snapshots so merged dumps say who saw what.
        clock: time source for snapshot/dump stamps.
        max_spans / max_events / max_metric_snapshots: ring sizes. The
            recorder is a *recent-history* device, not an archive — old
            entries fall off silently.
    """

    def __init__(
        self,
        service: str,
        clock: Clock | None = None,
        max_spans: int = 2000,
        max_events: int = 2000,
        max_metric_snapshots: int = 64,
    ):
        self.service = service
        self.clock = clock or WALL
        self._lock = threading.Lock()
        self._spans: deque[dict[str, Any]] = deque(maxlen=max_spans)
        self._events: deque[dict[str, Any]] = deque(maxlen=max_events)
        self._metric_snapshots: deque[dict[str, Any]] = deque(
            maxlen=max_metric_snapshots
        )
        self._notes: deque[dict[str, Any]] = deque(maxlen=max_events)
        self._registry: MetricsRegistry | None = None
        self._detach_fns: list[Callable[[], None]] = []
        self.last_dump: Path | None = None

    # -- capture ------------------------------------------------------------
    def record_span(self, span: Span) -> None:
        """Capture one finished span (normally via :meth:`attach_tracer`)."""
        try:
            as_dict = span.to_dict()
        except Exception:  # noqa: BLE001 - recording must never break runs
            return
        with self._lock:
            self._spans.append(as_dict)

    def attach_tracer(
        self,
        tracer: Tracer,
        only: Callable[[Span], bool] | None = None,
    ) -> None:
        """Chain onto ``tracer.exporter`` so finished spans land here too.

        The tracer has a single exporter slot; any exporter already
        installed keeps being called first. ``only`` filters which spans
        are captured (e.g. the daemon half records only dispatch and
        instrument spans so the two halves stay disjoint).
        """
        previous = tracer.exporter

        def chained(span: Span) -> None:
            if previous is not None:
                try:
                    previous(span)
                except Exception:  # noqa: BLE001 - match tracer's own tolerance
                    pass
            if only is None or only(span):
                self.record_span(span)

        tracer.exporter = chained

        def detach() -> None:
            if tracer.exporter is chained:
                tracer.exporter = previous

        self._detach_fns.append(detach)

    def attach_event_log(self, log: EventLog) -> None:
        """Subscribe so every emitted event lands in the ring buffer."""

        def on_event(event: Event) -> None:
            with self._lock:
                self._events.append(
                    {
                        "timestamp": event.timestamp,
                        "source": event.source,
                        "kind": event.kind,
                        "message": event.message,
                        "data": dict(event.data),
                    }
                )

        self._detach_fns.append(log.subscribe(on_event))

    def observe_metrics(self, registry: MetricsRegistry) -> None:
        """Remember the registry so snapshots can read it."""
        self._registry = registry

    def snapshot_metrics(self) -> None:
        """Append one metric snapshot to the ring (call periodically or
        at interesting moments — round boundaries, before teardown)."""
        if self._registry is None:
            return
        try:
            summary = self._registry.summarize()
        except Exception:  # noqa: BLE001 - recording must never break runs
            return
        with self._lock:
            self._metric_snapshots.append(
                {"timestamp": self.clock.now(), "metrics": summary}
            )

    def note(self, message: str, **data: Any) -> None:
        """Annotate the recording (trigger context, operator remarks)."""
        with self._lock:
            self._notes.append(
                {"timestamp": self.clock.now(), "message": message, "data": data}
            )

    def detach(self) -> None:
        """Undo every tracer/event-log attachment."""
        for fn in self._detach_fns:
            try:
                fn()
            except Exception:  # noqa: BLE001
                pass
        self._detach_fns.clear()

    # -- export -------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """This half's recording as one JSON-safe dict.

        Takes a fresh metric snapshot first so the dump always carries
        the final readings.
        """
        self.snapshot_metrics()
        with self._lock:
            return {
                "schema": SCHEMA,
                "service": self.service,
                "captured_at": self.clock.now(),
                "spans": list(self._spans),
                "events": list(self._events),
                "metric_snapshots": list(self._metric_snapshots),
                "notes": list(self._notes),
            }

    def dump(
        self,
        directory: str | Path,
        trigger: str,
        remote_snapshots: "list[dict[str, Any]] | None" = None,
    ) -> Path:
        """Write the merged black box and return its path.

        Merges this half with any ``remote_snapshots`` (dicts returned by
        :meth:`FlightRecorderServer.Recorder_Dump` on the other side),
        via :func:`merge_snapshots`. Each call writes a distinct file
        (``flightrec-<trigger>-<nonce>.json``).
        """
        halves = [self.snapshot()]
        for remote in remote_snapshots or []:
            if isinstance(remote, dict):
                halves.append(remote)
        doc = merge_snapshots(halves, trigger=trigger)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        safe_trigger = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in trigger
        )
        path = directory / f"flightrec-{safe_trigger}-{uuid.uuid4().hex[:8]}.json"
        # dumps happen when things are already going wrong; write through
        # a fsync'd temp + rename so a crash mid-dump never leaves a
        # half-written black box masquerading as evidence
        from repro.durability.atomic import atomic_write_text

        atomic_write_text(
            path, json.dumps(doc, indent=2, default=str, sort_keys=False)
        )
        self.last_dump = path
        return path


def merge_snapshots(
    snapshots: "list[dict[str, Any]]", trigger: str
) -> dict[str, Any]:
    """Correlate several recorder halves into one dump document.

    Spans keep their originating service, are pooled in start-time order,
    and are additionally grouped by ``trace_id`` under ``traces`` — the
    merged view an operator reads first: one workflow trace showing the
    client task span next to the daemon dispatch span it caused.
    """
    spans: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    notes: list[dict[str, Any]] = []
    halves: list[dict[str, Any]] = []
    for snap in snapshots:
        service = snap.get("service", "?")
        halves.append(
            {
                "service": service,
                "captured_at": snap.get("captured_at"),
                "span_count": len(snap.get("spans", [])),
                "event_count": len(snap.get("events", [])),
                "metric_snapshots": snap.get("metric_snapshots", []),
            }
        )
        for span in snap.get("spans", []):
            # the capturing half is authoritative: with one in-process
            # tracer serving both facilities, the span's own ``service``
            # attribute names the tracer, not the side that did the work
            spans.append({**span, "service": service})
        for event in snap.get("events", []):
            events.append({**event, "service": service})
        for note in snap.get("notes", []):
            notes.append({**note, "service": service})
    spans.sort(key=lambda s: s.get("start_time") or 0.0)
    events.sort(key=lambda e: e.get("timestamp") or 0.0)

    traces: dict[str, dict[str, Any]] = {}
    for span in spans:
        trace_id = span.get("trace_id") or "?"
        group = traces.setdefault(
            trace_id, {"services": [], "span_count": 0, "spans": []}
        )
        group["span_count"] += 1
        group["spans"].append(
            {
                "name": span.get("name"),
                "service": span.get("service"),
                "span_id": span.get("span_id"),
                "parent_id": span.get("parent_id"),
                "duration_s": span.get("duration_s"),
                "status": span.get("status"),
            }
        )
        service = span.get("service")
        if service not in group["services"]:
            group["services"].append(service)

    return {
        "schema": SCHEMA,
        "trigger": trigger,
        "halves": halves,
        "spans": spans,
        "events": events,
        "notes": notes,
        "traces": traces,
    }


@expose
class FlightRecorderServer:
    """Control-channel face of the daemon-side recorder.

    Registered on the control daemon (object id ``"ACL_FlightRecorder"``
    by convention) next to the workstation server, so a client holding
    the control URI can pull the remote half of the black box even when
    the run itself just failed. This realises the ISSUE's
    ``_recorder_dump`` verb — spelled ``Recorder_Dump`` because the RPC
    layer refuses underscore-prefixed method names on principle.
    """

    OBJECT_ID = "ACL_FlightRecorder"

    def __init__(self, recorder: FlightRecorder):
        self._recorder = recorder

    def Recorder_Dump(self) -> dict[str, Any]:
        """Return the daemon half's snapshot for client-side merging."""
        return self._recorder.snapshot()

    def Recorder_Note(self, message: str) -> bool:
        """Let the client annotate the daemon-side recording."""
        self._recorder.note(str(message), origin="remote")
        return True
