"""The full instrument-computing ecosystem (paper Figs 1 and 4).

``ElectrochemistryICE.build()`` stands up, in one process, everything the
paper deployed across two ORNL buildings:

- the **ACL facility**: the workstation on its control agent (Windows in
  the paper), an instrument hub network, and a gateway computer;
- the **K200 facility**: the DGX analysis host on the site WAN;
- the **control channel**: a daemon on the control agent serving the
  :class:`~repro.facility.servers.ACLWorkstationServer` at port 9690
  (the port visible in Fig 6b);
- the **data channel**: a second daemon at port 9700 exporting the
  measurement directory through the file share, routed over dedicated
  hub networks when ``separate_channels`` is on;
- **firewall rules**: ingress ports opened exactly for the K200 facility,
  mirroring §4.1's "open ingress TCP ports on workstation firewalls";
- an optional **name server** on the gateway, so remote code can resolve
  ``acl.workstation``/``acl.share`` instead of hard-coding ports.

Two transports: ``"sim"`` (default) routes every byte through the
modelled topology with latency/bandwidth/contention; ``"tcp"`` uses real
loopback sockets (no topology, same software stack).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.clock import Clock, WALL
from repro.durability.dedup_journal import DedupJournal
from repro.durability.lease import LeaseRegistry, LeaseServer
from repro.errors import NetworkError
from repro.logging_utils import EventLog
from repro.net.links import (
    CROSS_FACILITY,
    LAN_HUB,
    LinkSpec,
)
from repro.net.simtransport import SimNetwork
from repro.net.topology import Topology
from repro.obs.recorder import (
    FlightRecorder,
    FlightRecorderServer,
    is_daemon_side_span,
)
from repro.obs.scrape import ObservabilityServer
from repro.obs.stream import TelemetryBus, TelemetryServer
from repro.obs.timeseries import TimeSeriesStore, is_daemon_side_metric
from repro.rpc.daemon import Daemon
from repro.rpc.naming import NameServer
from repro.rpc.proxy import Proxy
from repro.rpc.transport import connect_tcp
from repro.datachannel.mount import Mount
from repro.datachannel.share import FileShareService
from repro.facility.characterization import (
    CharacterizationServer,
    CharacterizationStation,
)
from repro.facility.client import ACLPyroClient
from repro.facility.servers import ACLWorkstationServer
from repro.facility.workstation import (
    ElectrochemistryWorkstation,
    WorkstationConfig,
)

CONTROL_PORT = 9690  # the port in Fig 6b's URI
DATA_PORT = 9700
CHARACTERIZATION_PORT = 9710
NAMESERVER_PORT = 9680

HOST_AGENT = "acl-control-agent"
HOST_GATEWAY = "acl-gateway"
HOST_HPLC_AGENT = "acl-hplc-agent"
HOST_DGX = "k200-dgx"


@dataclass(frozen=True)
class ICEConfig:
    """Ecosystem parameters.

    Attributes:
        workstation: bench configuration (measurement dir is overridden
            with the ICE-owned directory when left None).
        separate_channels: dedicate hub networks to the data channel
            (paper design); False forces data onto the control path for
            the CH1 contention study.
        channel_mode: overrides ``separate_channels`` when set —
            ``"separate"`` (paper design), ``"shared"`` (one FCFS path),
            or ``"priority"`` (one path with preemptive-priority links:
            control frames priority 0, data priority 1 — the QoS
            alternative CH1 ablates).
        transport: ``"sim"`` or ``"tcp"``.
        hub_link: instrument-hub link spec.
        wan_link: cross-facility link spec.
        with_name_server: serve a name server on the gateway.
        control_secret: when set, the control-plane daemons (workstation
            and characterization) require the HMAC challenge-response and
            the ICE's own clients present it — paper §5's "security
            posture" hardening beyond firewall rules.
        durability_dir: where the control daemon's durable state lives
            (dedup journal, lease epochs). None uses a private temp
            directory — never the measurement share, whose listing must
            show measurements only; this state
            deliberately survives :meth:`ElectrochemistryICE.crash_control_daemon`
            with ``keep_disk=True`` and is what a restarted daemon
            replays.
        daemon_workers: dispatch worker threads per daemon. 0 (default)
            executes handlers inline on the reactor thread — fastest
            for the short, non-blocking instrument verbs; N > 0 moves
            execution to a small pool so a slow handler cannot stall
            the event loop (per-connection ordering is preserved).
    """

    workstation: WorkstationConfig = field(default_factory=WorkstationConfig)
    separate_channels: bool = True
    transport: str = "sim"
    hub_link: LinkSpec = LAN_HUB
    wan_link: LinkSpec = CROSS_FACILITY
    with_name_server: bool = True
    control_secret: bytes | None = None
    channel_mode: str = ""
    durability_dir: Path | None = None
    daemon_workers: int = 0

    def __post_init__(self) -> None:
        if self.transport not in ("sim", "tcp"):
            raise NetworkError(f"unknown transport {self.transport!r}")
        if self.daemon_workers < 0:
            raise NetworkError(
                f"daemon_workers must be >= 0, got {self.daemon_workers}"
            )
        if not self.channel_mode:
            object.__setattr__(
                self,
                "channel_mode",
                "separate" if self.separate_channels else "shared",
            )
        if self.channel_mode not in ("separate", "shared", "priority"):
            raise NetworkError(f"unknown channel mode {self.channel_mode!r}")


class ElectrochemistryICE:
    """Handles to the running ecosystem; use :meth:`build`."""

    def __init__(self, **parts):
        self.config: ICEConfig = parts["config"]
        self.workstation: ElectrochemistryWorkstation = parts["workstation"]
        self.topology: Topology | None = parts["topology"]
        self.simnet: SimNetwork | None = parts["simnet"]
        self.control_daemon: Daemon = parts["control_daemon"]
        self.data_daemon: Daemon = parts["data_daemon"]
        self.ns_daemon: Daemon | None = parts["ns_daemon"]
        self.name_server: NameServer | None = parts["name_server"]
        self.characterization: CharacterizationStation = parts["characterization"]
        self.characterization_daemon: Daemon = parts["characterization_daemon"]
        self.characterization_uri: str = parts["characterization_uri"]
        self.share: FileShareService = parts["share"]
        self.control_uri: str = parts["control_uri"]
        self.share_uri: str = parts["share_uri"]
        self.measurement_dir: Path = parts["measurement_dir"]
        self.event_log: EventLog = parts["event_log"]
        self._tempdir = parts["tempdir"]
        self._durability_tempdir = parts["durability_tempdir"]
        self.control_networks: set[str] | None = parts["control_networks"]
        self.data_networks: set[str] | None = parts["data_networks"]
        #: transmission priorities per channel (only meaningful in the
        #: "priority" channel mode; harmless FCFS no-ops otherwise)
        self.control_priority: int = 0
        self.data_priority: int = 1
        #: session observability — wired by :meth:`attach_observability`
        self.tracer = None
        self.metrics = None
        #: daemon-half flight recorder, served over the control channel
        #: (``FlightRecorderServer.OBJECT_ID``); :meth:`attach_observability`
        #: chains it onto the tracer for daemon-side spans
        self.recorder: FlightRecorder = parts["recorder"]
        self.recorder_uri: str = parts["recorder_uri"]
        #: daemon-half live telemetry bus, served over the control
        #: channel (``TelemetryServer.OBJECT_ID``) for cursor polling;
        #: :meth:`attach_observability` feeds it daemon-side spans
        self.telemetry_bus: TelemetryBus = parts["telemetry_bus"]
        self.telemetry_uri: str = parts["telemetry_uri"]
        #: daemon-half time-series rollups, scrapeable over the control
        #: channel (``ObservabilityServer.OBJECT_ID``);
        #: :meth:`attach_observability` subscribes it to the registry's
        #: daemon-side metric slice
        self.obs_store: TimeSeriesStore = parts["obs_store"]
        self.obs_uri: str = parts["obs_uri"]
        #: durable control-daemon state (dedup journal + lease epochs);
        #: survives crash_control_daemon(keep_disk=True) by design
        self.durability_dir: Path = parts["durability_dir"]
        self.lease_registry: LeaseRegistry = parts["lease_registry"]
        self.lease_uri: str = parts["lease_uri"]
        self._ws_server = parts["ws_server"]
        self._recorder_server = parts["recorder_server"]
        self._telemetry_server = parts["telemetry_server"]
        self._obs_server = parts["obs_server"]

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, config: ICEConfig | None = None, clock: Clock | None = None
    ) -> "ElectrochemistryICE":
        """Stand the ecosystem up; callers own :meth:`shutdown`."""
        config = config or ICEConfig()
        clock = clock or WALL
        log = EventLog()

        tempdir = None
        measurement_dir = config.workstation.measurement_dir
        if measurement_dir is None:
            tempdir = tempfile.TemporaryDirectory(prefix="acl-measurements-")
            measurement_dir = Path(tempdir.name)
        measurement_dir = Path(measurement_dir)
        measurement_dir.mkdir(parents=True, exist_ok=True)

        ws_config = WorkstationConfig(
            ferrocene_mm=config.workstation.ferrocene_mm,
            stock_volume_ml=config.workstation.stock_volume_ml,
            cell_capacity_ml=config.workstation.cell_capacity_ml,
            measurement_dir=measurement_dir,
            time_scale=config.workstation.time_scale,
            noise=config.workstation.noise,
            serial_timeout_s=config.workstation.serial_timeout_s,
        )
        workstation = ElectrochemistryWorkstation.build(
            ws_config, clock=clock, event_log=log
        )

        topology: Topology | None = None
        simnet: SimNetwork | None = None
        control_networks: set[str] | None = None
        data_networks: set[str] | None = None

        if config.transport == "sim":
            topology, control_networks, data_networks = cls._build_topology(
                config, clock
            )
            simnet = SimNetwork(topology, clock=clock)
            control_listener = simnet.listen(HOST_AGENT, CONTROL_PORT)
            data_listener = simnet.listen(HOST_AGENT, DATA_PORT)
            characterization_listener = simnet.listen(
                HOST_HPLC_AGENT, CHARACTERIZATION_PORT
            )
            ns_listener = (
                simnet.listen(HOST_GATEWAY, NAMESERVER_PORT)
                if config.with_name_server
                else None
            )
        else:
            from repro.rpc.transport import TCPListener

            control_listener = TCPListener("127.0.0.1", 0)
            data_listener = TCPListener("127.0.0.1", 0)
            characterization_listener = TCPListener("127.0.0.1", 0)
            ns_listener = (
                TCPListener("127.0.0.1", 0) if config.with_name_server else None
            )

        # durable daemon state must live OUTSIDE the exported share:
        # the data channel lists measurement_dir verbatim, and journals
        # are not measurements
        durability_tempdir = None
        if config.durability_dir is not None:
            durability_dir = Path(config.durability_dir)
        else:
            durability_tempdir = tempfile.TemporaryDirectory(
                prefix="acl-durability-"
            )
            durability_dir = Path(durability_tempdir.name)
        durability_dir.mkdir(parents=True, exist_ok=True)
        lease_registry = LeaseRegistry(durability_dir / "leases.json")
        control_daemon = Daemon(
            listener=control_listener,
            event_log=log,
            secret=config.control_secret,
            dedup_journal=DedupJournal(durability_dir / "control-dedup.jsonl"),
            lease_registry=lease_registry,
            workers=config.daemon_workers,
        )
        ws_server = ACLWorkstationServer(workstation)
        control_uri = control_daemon.register(
            ws_server, object_id="ACL_Workstation"
        )
        lease_uri = control_daemon.register(
            LeaseServer(lease_registry), object_id=LeaseServer.OBJECT_ID
        )
        # daemon-half black box: captures ACL-side events now and ACL-side
        # spans once attach_observability() wires a tracer; the client pulls
        # it over the control channel via Recorder_Dump when dumping
        recorder = FlightRecorder("acl-daemon", clock=clock)
        recorder.attach_event_log(log)
        recorder_server = FlightRecorderServer(recorder)
        recorder_uri = control_daemon.register(
            recorder_server,
            object_id=FlightRecorderServer.OBJECT_ID,
        )
        # daemon-half live feed: ACL-side events stream from build time,
        # ACL-side spans join once attach_observability() wires a tracer;
        # the DGX tails it over the control channel via Telemetry_Poll
        telemetry_bus = TelemetryBus("acl-daemon", clock=clock)
        telemetry_bus.attach_event_log(log)
        telemetry_server = TelemetryServer(telemetry_bus)
        telemetry_uri = control_daemon.register(
            telemetry_server,
            object_id=TelemetryServer.OBJECT_ID,
        )
        # daemon-half rollup store: empty until attach_observability()
        # wires a metrics registry; the DGX scrapes it over the control
        # channel via Obs_Scrape and merges it with its own half
        obs_store = TimeSeriesStore(clock=clock)
        obs_server = ObservabilityServer(obs_store, service="acl-daemon")
        obs_uri = control_daemon.register(
            obs_server,
            object_id=ObservabilityServer.OBJECT_ID,
        )
        control_daemon.start_background()

        share = FileShareService(measurement_dir, share_name="acl-measurements")
        data_daemon = Daemon(
            listener=data_listener, event_log=log, workers=config.daemon_workers
        )
        share_uri = data_daemon.register(share, object_id="ACL_Share")
        data_daemon.start_background()

        characterization = CharacterizationStation(
            workstation.collector,
            clock=clock,
            event_log=log,
            time_scale=config.workstation.time_scale,
        )
        characterization_daemon = Daemon(
            listener=characterization_listener,
            event_log=log,
            secret=config.control_secret,
            workers=config.daemon_workers,
        )
        characterization_uri = characterization_daemon.register(
            CharacterizationServer(characterization),
            object_id="ACL_Characterization",
        )
        characterization_daemon.start_background()

        ns_daemon = None
        name_server = None
        if ns_listener is not None:
            name_server = NameServer()
            name_server.register("acl.workstation", control_uri)
            name_server.register("acl.share", share_uri)
            name_server.register("acl.characterization", characterization_uri)
            ns_daemon = Daemon(listener=ns_listener, event_log=log)
            ns_daemon.register(name_server, object_id="NameServer")
            ns_daemon.start_background()

        log.emit(
            "ice",
            "lifecycle",
            f"ICE up: control={control_uri} data={share_uri} "
            f"transport={config.transport} "
            f"separate_channels={config.separate_channels}",
        )
        return cls(
            config=config,
            workstation=workstation,
            topology=topology,
            simnet=simnet,
            control_daemon=control_daemon,
            data_daemon=data_daemon,
            ns_daemon=ns_daemon,
            name_server=name_server,
            share=share,
            control_uri=control_uri,
            share_uri=share_uri,
            characterization=characterization,
            characterization_daemon=characterization_daemon,
            characterization_uri=characterization_uri,
            measurement_dir=measurement_dir,
            event_log=log,
            tempdir=tempdir,
            durability_tempdir=durability_tempdir,
            control_networks=control_networks,
            data_networks=data_networks,
            recorder=recorder,
            recorder_uri=recorder_uri,
            telemetry_bus=telemetry_bus,
            telemetry_uri=telemetry_uri,
            obs_store=obs_store,
            obs_uri=obs_uri,
            obs_server=obs_server,
            durability_dir=durability_dir,
            lease_registry=lease_registry,
            lease_uri=lease_uri,
            ws_server=ws_server,
            recorder_server=recorder_server,
            telemetry_server=telemetry_server,
        )

    @staticmethod
    def _build_topology(
        config: ICEConfig, clock: Clock
    ) -> tuple[Topology, set[str], set[str]]:
        """ACL + K200 with hub networks; optionally duplicated for data."""
        topology = Topology(clock=clock)
        topology.add_facility("ACL", "Autonomous Chemistry Laboratory")
        topology.add_facility("K200", "K200 computing and data facility")
        topology.add_host(HOST_AGENT, "ACL", platform="windows")
        topology.add_host(HOST_GATEWAY, "ACL", is_gateway=True)
        topology.add_host(HOST_HPLC_AGENT, "ACL", platform="windows")
        topology.add_host(HOST_DGX, "K200", platform="linux")

        qos = config.channel_mode == "priority"
        topology.add_network("acl-hub", "ACL", "instrument hub network")
        topology.add_network("ornl-wan", "K200", "cross-facility backbone")
        topology.attach(HOST_AGENT, "acl-hub", config.hub_link, priority_queuing=qos)
        topology.attach(HOST_GATEWAY, "acl-hub", config.hub_link, priority_queuing=qos)
        topology.attach(HOST_HPLC_AGENT, "acl-hub", config.hub_link, priority_queuing=qos)
        topology.attach(HOST_GATEWAY, "ornl-wan", config.wan_link, priority_queuing=qos)
        topology.attach(HOST_DGX, "ornl-wan", config.wan_link, priority_queuing=qos)
        control_networks = {"acl-hub", "ornl-wan"}

        if config.channel_mode == "separate":
            topology.add_network("acl-hub-data", "ACL", "data-channel hub")
            topology.add_network("ornl-wan-data", "K200", "data-channel backbone")
            topology.attach(HOST_AGENT, "acl-hub-data", config.hub_link)
            topology.attach(HOST_GATEWAY, "acl-hub-data", config.hub_link)
            topology.attach(HOST_GATEWAY, "ornl-wan-data", config.wan_link)
            topology.attach(HOST_DGX, "ornl-wan-data", config.wan_link)
            data_networks = {"acl-hub-data", "ornl-wan-data"}
        else:
            data_networks = set(control_networks)

        # §4.1: open ingress TCP ports for the remote facility only
        agent_fw = topology.host(HOST_AGENT).firewall
        agent_fw.allow_port(CONTROL_PORT, src_facility="K200", comment="pyro control")
        agent_fw.allow_port(DATA_PORT, src_facility="K200", comment="cifs data")
        topology.host(HOST_HPLC_AGENT).firewall.allow_port(
            CHARACTERIZATION_PORT, src_facility="K200", comment="pyro hplc"
        )
        # the gateway itself accepts name-server lookups
        topology.host(HOST_GATEWAY).firewall.allow_port(
            NAMESERVER_PORT, src_facility="K200", comment="name server"
        )
        return topology, control_networks, data_networks

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_observability(self, tracer=None, metrics=None) -> None:
        """Wire a tracer/metrics registry through every in-process part.

        Because the ICE hosts both "facilities" in one process, a single
        tracer sees client-side call spans *and* daemon-side dispatch
        spans — the wire context joins them into one trace. Clients and
        mounts created *after* this call inherit the pair by default.
        """
        self.tracer = tracer
        self.metrics = metrics
        for daemon in (
            self.control_daemon,
            self.data_daemon,
            self.characterization_daemon,
            self.ns_daemon,
        ):
            if daemon is not None:
                daemon.tracer = tracer
                daemon.metrics = metrics
        self.share.metrics = metrics
        if self.simnet is not None:
            self.simnet.metrics = metrics
        # the single in-process tracer sees both facilities' spans; the
        # daemon-half recorder keeps only the ACL-side ones so the two
        # halves of a merged dump stay disjoint
        if tracer is not None:
            self.recorder.clock = tracer.clock
            self.recorder.attach_tracer(tracer, only=is_daemon_side_span)
            # same split for the live feed: the daemon bus streams only
            # ACL-side spans, the session bus only DGX-side ones, so the
            # merged session.stream() never sees a span twice
            self.telemetry_bus.clock = tracer.clock
            self.telemetry_bus.attach_tracer(tracer, only=is_daemon_side_span)
        if metrics is not None:
            self.recorder.observe_metrics(metrics)
            # the shared in-process registry is split by metric-name
            # prefix: this store rolls up only the daemon-side slice,
            # the session store takes the complement, so a two-source
            # aggregator never counts a write twice
            if not self.obs_store.attached:
                if tracer is not None:
                    self.obs_store.clock = tracer.clock
                self.obs_store.attach(metrics, only=is_daemon_side_metric)

    # ------------------------------------------------------------------
    # Remote-side helpers (what runs on the DGX)
    # ------------------------------------------------------------------
    def _factory(self, networks: set[str] | None, priority: int = 0):
        if self.simnet is not None:
            return self.simnet.connection_factory(HOST_DGX, networks, priority)
        return lambda host, port: connect_tcp(host, port, timeout=30.0)

    def client(
        self,
        timeout: float | None = 120.0,
        resilient: bool = False,
        retry_policy: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        tracer=None,
        metrics=None,
        idem_prefix: str | None = None,
        max_inflight: int = 1,
        binary: bool | str = "auto",
    ) -> ACLPyroClient:
        """A control-channel client dialled from the DGX.

        With ``resilient=True`` (or an explicit ``retry_policy`` /
        ``breaker``) calls reconnect and retry across link flaps and
        connection resets, carrying idempotency keys so the daemon
        replays rather than re-executes anything already done.

        ``idem_prefix`` replays a crashed predecessor's idempotency-key
        sequence (journaled by the campaign layer), so a resumed round's
        already-executed calls come back from the daemon's dedup journal
        instead of touching the instrument again.

        ``max_inflight`` opens the control-channel pipelining window
        (PROTOCOLS §1.4); ``binary`` sets the wire-format negotiation
        policy (PROTOCOLS §1.7).
        """
        from repro.resilience import RetryPolicy

        if resilient and retry_policy is None:
            retry_policy = RetryPolicy()
        if idem_prefix is not None and retry_policy is None:
            retry_policy = RetryPolicy()
        return ACLPyroClient.from_uri(
            self.control_uri,
            connection_factory=self._factory(self.control_networks),
            timeout=timeout,
            secret=self.config.control_secret,
            retry_policy=retry_policy,
            breaker=breaker,
            event_log=self.event_log,
            tracer=tracer if tracer is not None else self.tracer,
            metrics=metrics if metrics is not None else self.metrics,
            idem_prefix=idem_prefix,
            max_inflight=max_inflight,
            binary=binary,
        )

    def characterization_client(self, timeout: float | None = 120.0) -> ACLPyroClient:
        """Control-channel client to the characterization station."""
        return ACLPyroClient.from_uri(
            self.characterization_uri,
            connection_factory=self._factory(self.control_networks),
            timeout=timeout,
            secret=self.config.control_secret,
        )

    def mount(
        self,
        cache_dir: str | Path | None = None,
        tracer=None,
        metrics=None,
        pipeline_depth: int = 1,
        binary: bool | str = "auto",
    ) -> Mount:
        """Mount the measurement share on the DGX over the data channel.

        ``pipeline_depth > 1`` builds the share proxy with that many
        in-flight requests allowed, so multi-chunk reads pipeline their
        ``read_chunk`` calls instead of paying one WAN round trip per
        chunk (PROTOCOLS §1.4). ``binary`` controls wire-format
        negotiation (PROTOCOLS §1.7): against a v2 daemon the chunk
        payloads travel as raw blobs instead of base64-inside-JSON.
        """
        proxy = Proxy(
            self.share_uri,
            timeout=120.0,
            connection_factory=self._factory(
                self.data_networks, self.data_priority
            ),
            tracer=tracer if tracer is not None else self.tracer,
            metrics=metrics if metrics is not None else self.metrics,
            max_inflight=pipeline_depth,
            binary=binary,
        )
        return Mount(
            proxy,
            cache_dir=cache_dir,
            metrics=metrics if metrics is not None else self.metrics,
        )

    def recorder_client(self, timeout: float | None = 10.0) -> Proxy:
        """Control-channel proxy to the daemon-half flight recorder.

        Deliberately short default timeout: recorder pulls happen inside
        failure-path teardowns and must not stall a safe-state sequence
        when the channel is partitioned.
        """
        return Proxy(
            self.recorder_uri,
            timeout=timeout,
            connection_factory=self._factory(self.control_networks),
            secret=self.config.control_secret,
        )

    def telemetry_client(self, timeout: float | None = 10.0) -> Proxy:
        """Control-channel proxy to the daemon-half telemetry bus.

        Short default timeout like :meth:`recorder_client`: live-feed
        polls run inside a steering loop and must surface a partition as
        a fast failure, never as a hung subscriber.
        """
        return Proxy(
            self.telemetry_uri,
            timeout=timeout,
            connection_factory=self._factory(self.control_networks),
            secret=self.config.control_secret,
        )

    def obs_client(self, timeout: float | None = 10.0) -> Proxy:
        """Control-channel proxy to the daemon-half time-series store.

        Short default timeout like :meth:`telemetry_client`: scrape
        polls run inside an aggregator loop and a partitioned facility
        must show up as a gap on the next poll, not a hang.
        """
        return Proxy(
            self.obs_uri,
            timeout=timeout,
            connection_factory=self._factory(self.control_networks),
            secret=self.config.control_secret,
        )

    def lease_client(self, timeout: float | None = 10.0) -> Proxy:
        """Control-channel proxy to the lease (fencing-token) service.

        Short default timeout like :meth:`recorder_client`: lease
        acquisition happens during session attach/reattach and must fail
        fast when the control channel is down.
        """
        return Proxy(
            self.lease_uri,
            timeout=timeout,
            connection_factory=self._factory(self.control_networks),
            secret=self.config.control_secret,
        )

    # ------------------------------------------------------------------
    # Process-level fault domain (used by ChaosController)
    # ------------------------------------------------------------------
    def crash_control_daemon(self, keep_disk: bool = True) -> None:
        """Abruptly kill the control daemon (no joins, no flushes).

        ``keep_disk=True`` models ``kill -9``: in-memory state dies, the
        fsync'd dedup journal and lease epochs survive for the next
        incarnation. ``keep_disk=False`` models losing the disk too
        (reprovisioned host) — restart then starts from nothing.
        """
        self.control_daemon.crash()
        if not keep_disk:
            for name in ("control-dedup.jsonl", "leases.json"):
                try:
                    (self.durability_dir / name).unlink()
                except FileNotFoundError:
                    pass
        self.event_log.emit(
            "ice",
            "crash",
            f"control daemon crashed (keep_disk={keep_disk})",
        )

    def restart_control_daemon(self) -> Daemon:
        """Bring a crashed control daemon back on the same address.

        The instrument side (workstation, recorder, telemetry bus) is a
        different "machine" and survives; the daemon process is rebuilt
        from scratch — its dedup cache preloads from the dedup journal
        and its lease registry reloads persisted epochs, which is the
        whole durability contract under test.
        """
        if self.control_daemon._running.is_set():
            raise NetworkError(
                "control daemon is still running; crash or shut it down first"
            )
        host, port = self.control_daemon.address
        if self.simnet is not None:
            listener = self.simnet.listen(host, port)
        else:
            from repro.rpc.transport import TCPListener

            listener = TCPListener(host, port)
        self.lease_registry = LeaseRegistry(self.durability_dir / "leases.json")
        daemon = Daemon(
            listener=listener,
            event_log=self.event_log,
            secret=self.config.control_secret,
            dedup_journal=DedupJournal(self.durability_dir / "control-dedup.jsonl"),
            lease_registry=self.lease_registry,
            tracer=self.tracer,
            metrics=self.metrics,
            workers=self.config.daemon_workers,
        )
        daemon.register(self._ws_server, object_id="ACL_Workstation")
        daemon.register(
            LeaseServer(self.lease_registry), object_id=LeaseServer.OBJECT_ID
        )
        daemon.register(
            self._recorder_server, object_id=FlightRecorderServer.OBJECT_ID
        )
        daemon.register(
            self._telemetry_server, object_id=TelemetryServer.OBJECT_ID
        )
        daemon.register(
            self._obs_server, object_id=ObservabilityServer.OBJECT_ID
        )
        daemon.start_background()
        self.control_daemon = daemon
        if self.metrics is not None:
            self.metrics.counter(
                "recovery.daemon_restarts_total", "control daemon restarts"
            ).inc()
            if daemon.dedup_preloaded:
                self.metrics.counter(
                    "recovery.dedup_preloaded_total",
                    "idempotent outcomes restored from the dedup journal",
                ).inc(daemon.dedup_preloaded)
        self.event_log.emit(
            "ice",
            "restart",
            f"control daemon restarted at {host}:{port} "
            f"({daemon.dedup_preloaded} dedup outcomes preloaded)",
        )
        return daemon

    def lookup(self, name: str) -> str:
        """Resolve a logical name via the gateway's name server."""
        if self.ns_daemon is None:
            raise NetworkError("ICE was built without a name server")
        host, port = self.ns_daemon.address
        ns_proxy = Proxy(
            f"PYRO:NameServer@{host}:{port}",
            connection_factory=self._factory(self.control_networks),
        )
        try:
            return ns_proxy.lookup(name)
        finally:
            ns_proxy.close()

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop daemons, the SBC thread, and remove the temp directory."""
        self.control_daemon.shutdown()
        self.data_daemon.shutdown()
        self.characterization_daemon.shutdown()
        if self.ns_daemon is not None:
            self.ns_daemon.shutdown()
        self.workstation.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()
        if self._durability_tempdir is not None:
            self._durability_tempdir.cleanup()

    def __enter__(self) -> "ElectrochemistryICE":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
