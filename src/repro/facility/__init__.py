"""Facility assembly: the ACL workstation, Pyro servers, and the full ICE.

This package is the wiring diagram of the paper made executable:

- :class:`ElectrochemistryWorkstation` builds the bench of Fig 2 — cell,
  reservoirs, J-Kem devices behind their single-board computer and serial
  link, SP200 with its EC-Lab driver;
- :class:`ACLWorkstationServer` is the Pyro server object of Fig 3,
  exposing the instrument commands under the names the paper's notebook
  calls (``Initialize_SP200_API``, ``Set_Rate_SyringePump``, ...);
- :class:`ACLPyroClient` is the matching client wrapper
  (``call_Initialize_SP200_API`` and friends);
- :class:`ElectrochemistryICE` assembles the cross-facility picture of
  Figs 1/4: ACL and K200 facilities, hub networks behind a gateway,
  firewall ingress rules, the control daemon, and the data-channel share
  — over the simulated network by default, over real TCP on request.
"""

from repro.facility.workstation import ElectrochemistryWorkstation, WorkstationConfig
from repro.facility.servers import ACLWorkstationServer
from repro.facility.client import ACLPyroClient
from repro.facility.ice import ElectrochemistryICE, ICEConfig

__all__ = [
    "ElectrochemistryWorkstation",
    "WorkstationConfig",
    "ACLWorkstationServer",
    "ACLPyroClient",
    "ElectrochemistryICE",
    "ICEConfig",
]
