"""The ACL electrochemistry workstation (paper Fig 2), fully wired.

One call to :func:`ElectrochemistryWorkstation.build` produces the bench:

- an electrochemical cell with the three-electrode set;
- a ferrocene stock vial in the fraction collector, plus solvent and
  waste plumbing on the syringe-pump valve;
- the J-Kem single-board computer serving its serial protocol, with the
  Python front-end API on the control-agent side of the cable;
- the SP200 potentiostat wired to the same cell, with its EC-Lab driver
  writing ``.mpt`` files into the agent's measurement directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.clock import Clock, WALL
from repro.logging_utils import EventLog
from repro.chemistry.cell import ElectrochemicalCell
from repro.chemistry.noise import BENCH_NOISE, NoiseModel
from repro.chemistry.species import Solution, ferrocene_solution
from repro.instruments.jkem import (
    Chiller,
    FractionCollector,
    JKemAPI,
    JKemSBC,
    MassFlowController,
    PeristalticPump,
    PHProbe,
    PortMap,
    Reservoir,
    SyringePump,
    TemperatureController,
    WASTE,
)
from repro.instruments.potentiostat import ECLabAPI, SP200
from repro.serialio import create_port_pair

#: Valve plumbing used throughout: port 1 reaches the fraction-collector
#: needle (stock vials), port 2 the solvent bottle, port 8 the cell, port
#: 9 waste. Port 8 matches the ``SYRINGEPUMP_PORT(1,8)`` line in Fig 5b.
PORT_COLLECTOR = 1
PORT_SOLVENT = 2
PORT_CELL = 8
PORT_WASTE = 9


@dataclass(frozen=True)
class WorkstationConfig:
    """Bench parameters.

    Attributes:
        ferrocene_mm: stock concentration (the paper uses 2 mM).
        stock_volume_ml: how much stock is in the collector vial.
        cell_capacity_ml: cell size.
        measurement_dir: where the SP200 driver writes ``.mpt`` files.
        time_scale: instrument operation time scaling (0 = instant).
        noise: measurement noise model for acquisitions.
        serial_timeout_s: J-Kem driver response deadline.
    """

    ferrocene_mm: float = 2.0
    stock_volume_ml: float = 50.0
    cell_capacity_ml: float = 20.0
    measurement_dir: str | Path | None = None
    time_scale: float = 0.0
    noise: NoiseModel | None = BENCH_NOISE
    serial_timeout_s: float = 30.0


class ElectrochemistryWorkstation:
    """Handles to every piece of the bench.

    Use :meth:`build`; the constructor only stores what build wired up.
    """

    def __init__(self, **parts):
        self.cell: ElectrochemicalCell = parts["cell"]
        self.stock: Reservoir = parts["stock"]
        self.solvent: Reservoir = parts["solvent"]
        self.syringe_pump: SyringePump = parts["syringe_pump"]
        self.peristaltic_pump: PeristalticPump = parts["peristaltic_pump"]
        self.mfc: MassFlowController = parts["mfc"]
        self.collector: FractionCollector = parts["collector"]
        self.temperature: TemperatureController = parts["temperature"]
        self.chiller: Chiller = parts["chiller"]
        self.ph_probe: PHProbe = parts["ph_probe"]
        self.sbc: JKemSBC = parts["sbc"]
        self.jkem_api: JKemAPI = parts["jkem_api"]
        self.potentiostat: SP200 = parts["potentiostat"]
        self.eclab: ECLabAPI = parts["eclab"]
        self.event_log: EventLog = parts["event_log"]
        self.config: WorkstationConfig = parts["config"]

    @classmethod
    def build(
        cls,
        config: WorkstationConfig | None = None,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
    ) -> "ElectrochemistryWorkstation":
        """Construct and start the whole bench."""
        config = config or WorkstationConfig()
        clock = clock or WALL
        log = event_log if event_log is not None else EventLog()

        cell = ElectrochemicalCell(capacity_ml=config.cell_capacity_ml)
        solution = ferrocene_solution(config.ferrocene_mm)
        stock = Reservoir("ferrocene-stock", solution, config.stock_volume_ml)
        solvent_solution = Solution(
            solvent=solution.solvent,
            species={},
            supporting_electrolyte=solution.supporting_electrolyte,
            label="blank MeCN / 0.1 M TBAOTf",
        )
        solvent = Reservoir("solvent", solvent_solution, 250.0)

        collector = FractionCollector(clock=clock, event_log=log)
        collector.load_vial("BOTTOM", stock)

        ports = PortMap()
        ports.connect(PORT_COLLECTOR, collector)
        ports.connect(PORT_SOLVENT, solvent)
        ports.connect(PORT_CELL, cell)
        ports.connect(PORT_WASTE, WASTE)
        syringe_pump = SyringePump(
            ports=ports, clock=clock, event_log=log, time_scale=config.time_scale
        )
        peristaltic_pump = PeristalticPump(
            source=cell,
            destination=WASTE,
            clock=clock,
            event_log=log,
            time_scale=config.time_scale,
        )
        mfc = MassFlowController(cell=cell, clock=clock, event_log=log)
        temperature = TemperatureController(cell=cell, clock=clock, event_log=log)
        chiller = Chiller(clock=clock, event_log=log)
        ph_probe = PHProbe(clock=clock, event_log=log)

        host_port, device_port = create_port_pair(
            "COM3", timeout=config.serial_timeout_s
        )
        sbc = JKemSBC(port=device_port, clock=clock, event_log=log)
        sbc.attach_syringe_pump(1, syringe_pump)
        sbc.attach_peristaltic_pump(1, peristaltic_pump)
        sbc.attach_mfc(1, mfc)
        sbc.attach_fraction_collector(1, collector)
        sbc.attach_temperature_controller(1, temperature)
        sbc.attach_chiller(1, chiller)
        sbc.attach_ph_probe(1, ph_probe)
        sbc.start()

        jkem_api = JKemAPI(
            host_port, timeout_s=config.serial_timeout_s, event_log=log
        )

        potentiostat = SP200(
            cell=cell,
            noise=config.noise,
            time_scale=config.time_scale,
            clock=clock,
            event_log=log,
        )
        eclab = ECLabAPI(
            potentiostat,
            measurement_dir=config.measurement_dir,
            event_log=log,
        )

        return cls(
            cell=cell,
            stock=stock,
            solvent=solvent,
            syringe_pump=syringe_pump,
            peristaltic_pump=peristaltic_pump,
            mfc=mfc,
            collector=collector,
            temperature=temperature,
            chiller=chiller,
            ph_probe=ph_probe,
            sbc=sbc,
            jkem_api=jkem_api,
            potentiostat=potentiostat,
            eclab=eclab,
            event_log=log,
            config=config,
        )

    def shutdown(self) -> None:
        """Stop background threads (the SBC serve loop)."""
        self.sbc.stop()
