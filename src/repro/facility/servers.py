"""The Pyro server object on the control agent (paper Fig 3, server side).

``ACLWorkstationServer`` wraps the two local drivers (EC-Lab and J-Kem
APIs) and exposes their commands under the exact names the paper's
notebook calls in Figs 5a/6a. Return values are the confirmation strings
the notebook prints ("OK", "Initialization is done", ...); measurement
data travels as plain dicts the serializer handles.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any

from repro.obs.trace import child_span
from repro.rpc.expose import expose
from repro.facility.workstation import ElectrochemistryWorkstation


def _traced(func):
    """Run a command inside an ``instrument.<Name>`` span.

    ``child_span`` is ambient: when the daemon dispatch span is current
    (the normal remote-call path) the command span nests under it; with
    no tracer in play it is a single contextvar read and a no-op.
    """

    @functools.wraps(func)
    def wrapper(self, *args, **kwargs):
        with child_span(f"instrument.{func.__name__}"):
            return func(self, *args, **kwargs)

    return wrapper


def _trace_commands(cls):
    """Wrap every public command method of ``cls`` with :func:`_traced`.

    ``functools.wraps`` keeps names/docstrings, and exposure is a
    class-level attribute (``@expose`` on the class), so wrapped methods
    stay remotely callable.
    """
    for name, attr in list(vars(cls).items()):
        if not name.startswith("_") and inspect.isfunction(attr):
            setattr(cls, name, _traced(attr))
    return cls


@_trace_commands
@expose
class ACLWorkstationServer:
    """Remote face of the whole workstation.

    Args:
        workstation: the locally built bench.
    """

    def __init__(self, workstation: ElectrochemistryWorkstation):
        self._ws = workstation

    # ------------------------------------------------------------------
    # SP200 pipeline (Fig 6a, steps 1-7; step 8 is automatic)
    # ------------------------------------------------------------------
    def Initialize_SP200_API(self, params: dict[str, Any] | None = None) -> str:
        """Step 1: system/firmware/connection parameters."""
        return self._ws.eclab.initialize(params)

    def Connect_SP200(self) -> str:
        """Step 2: open the instrument session."""
        return self._ws.eclab.connect()

    def Load_Firmware_SP200(self) -> str:
        """Step 3: load kernel4.bin."""
        return self._ws.eclab.load_firmware()

    def Initialize_CV_Tech_SP200(self, params: dict[str, Any] | None = None) -> str:
        """Step 4: configure the CV technique."""
        return self._ws.eclab.init_cv_technique(params)

    def Initialize_CA_Tech_SP200(self, params: dict[str, Any] | None = None) -> str:
        """CA variant of step 4."""
        return self._ws.eclab.init_ca_technique(params)

    def Initialize_OCV_Tech_SP200(self, params: dict[str, Any] | None = None) -> str:
        """OCV variant of step 4."""
        return self._ws.eclab.init_ocv_technique(params)

    def Initialize_LSV_Tech_SP200(self, params: dict[str, Any] | None = None) -> str:
        """LSV variant of step 4."""
        return self._ws.eclab.init_lsv_technique(params)

    def Initialize_DPV_Tech_SP200(self, params: dict[str, Any] | None = None) -> str:
        """DPV variant of step 4."""
        return self._ws.eclab.init_dpv_technique(params)

    def Load_Technique_SP200(self) -> str:
        """Step 5: push technique firmware + parameters to the channel."""
        return self._ws.eclab.load_technique()

    def Start_Channel_SP200(self) -> str:
        """Step 6: begin acquiring."""
        return self._ws.eclab.start_channel()

    def Probe_Status_SP200(self) -> dict[str, Any]:
        """Poll the acquisition (samples so far, channel state)."""
        return self._ws.eclab.probe_progress()

    def Get_Tech_Path_Rslt(
        self, wait: bool = True, save_as: str | None = None
    ) -> dict[str, Any]:
        """Step 7: collect the measurements.

        Returns the trace as a plain dict plus the share-relative file
        name the ``.mpt`` was written to (the client fetches the file over
        the *data* channel — measurements do not ride the control channel
        unless the caller opts into the inline copy).
        """
        trace = self._ws.eclab.get_measurements(wait=wait, save_as=save_as)
        path = self._ws.eclab.last_measurement_path
        return {
            "n_samples": len(trace),
            "technique": trace.metadata.get("technique"),
            "file": path.name if path is not None else None,
        }

    def Get_Measurements_Inline(self, wait: bool = True) -> dict[str, Any]:
        """Measurement arrays inline over the control channel.

        Exists for the channel-separation benchmark (the anti-pattern the
        paper's design avoids) and for small quick-look reads.
        """
        trace = self._ws.eclab.get_measurements(wait=wait)
        return trace.to_dict()

    def Disconnect_SP200(self) -> str:
        """Teardown (workflow task E)."""
        return self._ws.eclab.disconnect()

    # ------------------------------------------------------------------
    # J-Kem setup (Fig 5a command set)
    # ------------------------------------------------------------------
    def Set_Rate_SyringePump(self, unit: int, rate_ml_min: float) -> str:
        return self._ws.jkem_api.set_rate_syringe_pump(unit, rate_ml_min)

    def Set_Port_SyringePump(self, unit: int, port: int) -> str:
        return self._ws.jkem_api.set_port_syringe_pump(unit, port)

    def Withdraw_SyringePump(self, unit: int, volume_ml: float) -> str:
        return self._ws.jkem_api.withdraw_syringe_pump(unit, volume_ml)

    def Dispense_SyringePump(self, unit: int, volume_ml: float) -> str:
        return self._ws.jkem_api.dispense_syringe_pump(unit, volume_ml)

    def Status_SyringePump(self, unit: int) -> str:
        return self._ws.jkem_api.status_syringe_pump(unit)

    def Set_Vial_FractionCollector(self, unit: int, position: str) -> str:
        return self._ws.jkem_api.set_vial_fraction_collector(unit, position)

    def Set_Rate_PeristalticPump(self, unit: int, rate_ml_min: float) -> str:
        return self._ws.jkem_api.set_rate_peristaltic_pump(unit, rate_ml_min)

    def Transfer_PeristalticPump(self, unit: int, volume_ml: float) -> str:
        return self._ws.jkem_api.transfer_peristaltic_pump(unit, volume_ml)

    def Set_Flow_MFC(self, unit: int, sccm: float) -> str:
        return self._ws.jkem_api.set_flow_mfc(unit, sccm)

    def Read_Flow_MFC(self, unit: int) -> float:
        return self._ws.jkem_api.read_flow_mfc(unit)

    def Set_Temperature(self, unit: int, celsius: float) -> str:
        return self._ws.jkem_api.set_temperature(unit, celsius)

    def Read_Temperature(self, unit: int) -> float:
        return self._ws.jkem_api.read_temperature(unit)

    def Start_Chiller(self, unit: int) -> str:
        return self._ws.jkem_api.start_chiller(unit)

    def Stop_Chiller(self, unit: int) -> str:
        return self._ws.jkem_api.stop_chiller(unit)

    def Read_PH(self, unit: int) -> float:
        return self._ws.jkem_api.read_ph(unit)

    def Halt_SyringePump(self, unit: int) -> str:
        """Emergency-stop the syringe pump via the serial link."""
        return self._ws.jkem_api.halt_syringe_pump(unit)

    def Halt_PeristalticPump(self, unit: int) -> str:
        """Emergency-stop the peristaltic pump via the serial link."""
        return self._ws.jkem_api.halt_peristaltic_pump(unit)

    def Status_JKem(self) -> str:
        return self._ws.jkem_api.status()

    def Connect_JKem_API(self) -> str:
        """(Re)open the J-Kem driver session (workflow task B)."""
        return self._ws.jkem_api.reopen()

    def Exit_JKem_API(self) -> str:
        """Fig 5a's final cell: ``call_Exit_JKem_API`` -> "J-Kem API exit OK"."""
        return self._ws.jkem_api.exit()

    # ------------------------------------------------------------------
    # Safe state (workflow teardown target)
    # ------------------------------------------------------------------
    def Safe_State(self) -> dict[str, Any]:
        """Drive the bench to a safe idle state; idempotent, best-effort.

        Halts both pumps, shuts off the purge gas and parks the
        potentiostat (disconnecting stops any running channel). Acts on
        the devices directly rather than through the J-Kem driver so it
        still works when the driver session is closed or a device has
        faulted — this is the call a workflow teardown makes when a run
        aborts mid-experiment. Each action's outcome is reported instead
        of raised: safing must attempt everything.
        """
        done: list[str] = []
        errors: dict[str, str] = {}

        def attempt(label: str, action) -> None:
            try:
                action()
            except Exception as exc:  # noqa: BLE001 - report, keep safing
                errors[label] = str(exc)
            else:
                done.append(label)

        attempt("syringe_pump", self._ws.syringe_pump.halt)
        attempt("peristaltic_pump", self._ws.peristaltic_pump.halt)
        attempt("mfc", self._ws.mfc.shutoff)
        attempt("potentiostat", self._ws.eclab.disconnect)
        return {"done": done, "errors": errors}

    # ------------------------------------------------------------------
    # Cell state (lab-side observability / fault injection for tests)
    # ------------------------------------------------------------------
    def Cell_Status(self) -> dict[str, Any]:
        """Volume, contents label, purge, circuit state."""
        cell = self._ws.cell
        contents = cell.contents
        gas, sccm = cell.purge
        return {
            "volume_ml": cell.volume_ml,
            "contents": contents.label if contents else None,
            "purge_gas": gas,
            "purge_sccm": sccm,
            "circuit_closed": cell.circuit_closed,
            "temperature_c": cell.temperature_c,
        }
