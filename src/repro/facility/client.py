"""The Pyro client wrapper used from the remote system (paper Fig 3).

The paper's notebook instantiates ``ACL_Pyro_Client(ip, port)`` and calls
``call_<Method>`` wrappers; :class:`ACLPyroClient` reproduces that shape:
every server method ``X`` is callable as ``client.call_X(...)`` (and, for
convenience, directly as ``client.X(...)``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.logging_utils import EventLog
from repro.resilience import CircuitBreaker, ResilientProxy, RetryPolicy
from repro.rpc.naming import PyroURI, make_uri
from repro.rpc.proxy import Proxy

DEFAULT_OBJECT_ID = "ACL_Workstation"


class ACLPyroClient:
    """Client handle to the ACL workstation server.

    Args:
        host: control agent address (or URI via :meth:`from_uri`).
        port: control-channel TCP port.
        object_id: registered Pyro object id.
        connection_factory: custom dialer (the simulated network's).
        timeout: per-call deadline in seconds.
        retry_policy: wrap the proxy in a
            :class:`~repro.resilience.ResilientProxy` under this policy
            (reconnect + retry with idempotent replay).
        breaker: optional circuit breaker for the resilient wrapper.
        event_log: structured log the resilient wrapper emits retry
            events to.
        tracer: optional :class:`repro.obs.Tracer`; every call gets a
            client-side span whose context rides the request frame.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            per-call counters/latencies.
        idem_prefix: idempotency-key prefix handed to the resilient
            wrapper. A resumed run passes the prefix journaled by its
            crashed predecessor so re-issued calls replay from the
            daemon's dedup journal instead of re-executing (durable
            at-most-once; requires ``retry_policy``/``breaker`` so a
            ResilientProxy exists to stamp keys).
        max_inflight: control-channel pipelining window (PROTOCOLS
            §1.4); 1 keeps the classic lockstep request/reply.
        binary: binary wire-format negotiation policy (PROTOCOLS §1.7):
            ``"auto"`` negotiates down against JSON-only daemons,
            ``False`` pins v1, ``True`` requires v2.
    """

    def __init__(
        self,
        host: str,
        port: int,
        object_id: str = DEFAULT_OBJECT_ID,
        connection_factory: Callable | None = None,
        timeout: float | None = 60.0,
        secret: bytes | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        event_log: EventLog | None = None,
        tracer: Any = None,
        metrics: Any = None,
        idem_prefix: str | None = None,
        max_inflight: int = 1,
        binary: bool | str = "auto",
    ):
        uri = make_uri(object_id, host, port)
        proxy = Proxy(
            uri,
            timeout=timeout,
            connection_factory=connection_factory,
            secret=secret,
            tracer=tracer,
            metrics=metrics,
            max_inflight=max_inflight,
            binary=binary,
        )
        if retry_policy is not None or breaker is not None:
            proxy = ResilientProxy(
                proxy,
                policy=retry_policy,
                breaker=breaker,
                event_log=event_log,
                tracer=tracer,
                metrics=metrics,
                key_prefix=idem_prefix,
            )
        self._proxy = proxy

    @classmethod
    def from_uri(
        cls,
        uri: str | PyroURI,
        connection_factory: Callable | None = None,
        timeout: float | None = 60.0,
        secret: bytes | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        event_log: EventLog | None = None,
        tracer: Any = None,
        metrics: Any = None,
        idem_prefix: str | None = None,
        max_inflight: int = 1,
        binary: bool | str = "auto",
    ) -> "ACLPyroClient":
        """Build from a full ``PYRO:`` URI."""
        from repro.rpc.naming import parse_uri

        parsed = parse_uri(uri)
        return cls(
            host=parsed.host,
            port=parsed.port,
            object_id=parsed.object_id,
            connection_factory=connection_factory,
            timeout=timeout,
            secret=secret,
            retry_policy=retry_policy,
            breaker=breaker,
            event_log=event_log,
            tracer=tracer,
            metrics=metrics,
            idem_prefix=idem_prefix,
            max_inflight=max_inflight,
            binary=binary,
        )

    @property
    def resilient(self) -> bool:
        """Whether calls retry/replay through a :class:`ResilientProxy`."""
        return isinstance(self._proxy, ResilientProxy)

    @property
    def idem_prefix(self) -> str | None:
        """The resilient wrapper's idempotency-key prefix (None when bare)."""
        return getattr(self._proxy, "key_prefix", None)

    def set_lease(self, resource: str, epoch: int) -> None:
        """Attach a fencing token to every subsequent request.

        The daemon rejects calls whose epoch is stale with
        ``LEASE_FENCED`` — see ``docs/PROTOCOLS.md`` §1.6.
        """
        self._proxy.lease = {"resource": resource, "epoch": epoch}

    def clear_lease(self) -> None:
        self._proxy.lease = None

    # -- connection management ---------------------------------------------
    def ping(self) -> None:
        """Liveness check of the control channel (workflow task A)."""
        self._proxy._pyro_ping()

    def available_commands(self) -> list[str]:
        """Exposed method names on the server."""
        return list(self._proxy._pyro_metadata().get("methods", []))

    def close(self) -> None:
        self._proxy.close()

    def __enter__(self) -> "ACLPyroClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- call forwarding ------------------------------------------------------
    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)
        # the notebook style: client.call_Initialize_SP200_API(...)
        target = name[len("call_"):] if name.startswith("call_") else name
        return getattr(self._proxy, target)
