"""The chemical-characterization station and its Pyro server.

Paper Fig 1 shows "Chemical Characterization" as its own station in the
ecosystem, and §5 plans "mobile robots to transfer materials between
different instruments". This module makes both real:

- :class:`CharacterizationStation` owns the HPLC-MS and the transfer
  robot (docking stations: the electrochemistry workstation's fraction
  hand-off point, the HPLC autosampler, and storage);
- :class:`CharacterizationServer` is the station's control agent object,
  exposed over the control channel like the workstation's (Fig 3 applies
  unchanged to additional instruments);
- the fraction hand-off: the workstation's collector fills a vial, the
  vial is unloaded onto the robot's electrochemistry dock, the robot
  drives it to the HPLC dock, and the autosampler injects from there.
"""

from __future__ import annotations

from typing import Any

from repro.clock import Clock, WALL
from repro.errors import InstrumentStateError
from repro.logging_utils import EventLog
from repro.chemistry.species import Solution, ACETONITRILE
from repro.rpc.expose import expose
from repro.instruments.characterization.hplc import HPLCMS
from repro.instruments.jkem.devices import FractionCollector
from repro.instruments.jkem.plumbing import Reservoir
from repro.instruments.robot import MobileRobot

STATION_ELECTROCHEM = "electrochemistry"
STATION_HPLC = "hplc"
STATION_STORAGE = "storage"


class CharacterizationStation:
    """HPLC-MS + transfer robot, wired to the workstation's collector."""

    def __init__(
        self,
        collector: FractionCollector,
        clock: Clock | None = None,
        event_log: EventLog | None = None,
        time_scale: float = 0.0,
    ):
        clock = clock or WALL
        self.collector = collector
        self.hplc = HPLCMS(
            clock=clock, event_log=event_log, time_scale=time_scale
        )
        self.robot = MobileRobot(
            stations=(STATION_ELECTROCHEM, STATION_HPLC, STATION_STORAGE),
            clock=clock,
            event_log=event_log,
            time_scale=time_scale,
        )
        self._fraction_counter = 0

    def new_fraction_vial(self) -> Reservoir:
        """A fresh empty vial for fraction collection."""
        self._fraction_counter += 1
        blank = Solution(solvent=ACETONITRILE, species={}, label="empty")
        return Reservoir(
            f"fraction-{self._fraction_counter:02d}", blank, 0.0
        )


@expose
class CharacterizationServer:
    """Remote face of the characterization station.

    Mirrors the workstation server's naming style so notebook code reads
    uniformly (``call_Robot_Transfer``, ``call_Inject_HPLC`` ...).
    """

    def __init__(self, station: CharacterizationStation):
        self._station = station

    # -- fraction hand-off ---------------------------------------------------
    def Load_Fraction_Vial(self, position: str) -> str:
        """Put a fresh empty vial into the collector rack at ``position``."""
        vial = self._station.new_fraction_vial()
        self._station.collector.load_vial(position, vial)
        return f"OK {vial.name}"

    def Handoff_Fraction_To_Robot(self, position: str) -> str:
        """Unload the vial at ``position`` onto the robot's dock."""
        vial = self._station.collector.unload_vial(position)
        self._station.robot.stage_vial(STATION_ELECTROCHEM, vial)
        return f"OK {vial.name}"

    # -- robot -----------------------------------------------------------
    def Robot_Move_To(self, station: str) -> str:
        return self._station.robot.move_to(station)

    def Robot_Pick(self) -> str:
        return self._station.robot.pick()

    def Robot_Place(self) -> str:
        return self._station.robot.place()

    def Robot_Transfer(self, source: str, destination: str) -> str:
        return self._station.robot.transfer(source, destination)

    def Robot_Status(self) -> dict[str, Any]:
        return self._station.robot.status_summary()

    # -- HPLC-MS ---------------------------------------------------------------
    def Inject_HPLC(self, volume_ml: float = 0.5) -> dict[str, Any]:
        """Inject from the vial docked at the HPLC station.

        Returns the chromatogram as plain data (time axis downsampled to
        keep the control-channel payload reasonable; the peak table is
        exact).
        """
        vial = self._station.robot.vial_at(STATION_HPLC)
        if vial is None:
            raise InstrumentStateError(
                "no vial at the HPLC autosampler; run Robot_Transfer first"
            )
        chromatogram = self._station.hplc.inject_vial(vial, volume_ml)
        payload = chromatogram.to_dict()
        stride = max(1, len(chromatogram) // 400)
        payload["time_min"] = payload["time_min"][::stride]
        payload["signal"] = payload["signal"][::stride]
        return payload

    def HPLC_Status(self) -> dict[str, Any]:
        return {
            "injections_run": self._station.hplc.injections_run,
            "status": self._station.hplc.status.value,
            "method_minutes": self._station.hplc.method_minutes,
        }
