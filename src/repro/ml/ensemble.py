"""Ensemble of trees (EOT): bagged CART with feature subsampling.

Ref [11] classifies GPR feature vectors with an "ensemble of trees"; this
is the classic bagging construction — bootstrap resampling per tree,
sqrt(n_features) candidate features per split, soft-vote aggregation —
plus an out-of-bag accuracy estimate so workflows can sanity-check a
trained model without a held-out set.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError, NotFittedError
from repro.ml.tree import DecisionTreeClassifier


class EnsembleOfTreesClassifier:
    """Bagged decision trees with soft voting.

    Args:
        n_trees: ensemble size.
        max_depth: per-tree depth limit.
        min_samples_leaf: per-tree leaf minimum.
        max_features: per-split feature budget; None = ceil(sqrt(d)).
        random_state: master seed (per-tree seeds derive from it).
    """

    def __init__(
        self,
        n_trees: int = 50,
        max_depth: int | None = 8,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        random_state: int = 0,
    ):
        if n_trees < 1:
            raise MLError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None
        self.oob_score_: float = np.nan

    def fit(self, x: np.ndarray, y: np.ndarray) -> "EnsembleOfTreesClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise MLError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise MLError("x and y lengths differ")
        n_samples, n_features = x.shape
        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        max_features = self.max_features or int(np.ceil(np.sqrt(n_features)))

        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        oob_votes = np.zeros((n_samples, n_classes))
        oob_counts = np.zeros(n_samples)

        for index in range(self.n_trees):
            sample_idx = rng.integers(0, n_samples, size=n_samples)
            oob_mask = np.ones(n_samples, dtype=bool)
            oob_mask[sample_idx] = False
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(x[sample_idx], y_encoded[sample_idx])
            self.trees_.append(tree)
            if oob_mask.any():
                proba = self._tree_proba(tree, x[oob_mask], n_classes)
                oob_votes[oob_mask] += proba
                oob_counts[oob_mask] += 1

        voted = oob_counts > 0
        if voted.any():
            predictions = np.argmax(oob_votes[voted], axis=1)
            self.oob_score_ = float(np.mean(predictions == y_encoded[voted]))
        return self

    def _tree_proba(
        self, tree: DecisionTreeClassifier, x: np.ndarray, n_classes: int
    ) -> np.ndarray:
        """Tree probabilities aligned to the ensemble's class order."""
        proba = tree.predict_proba(x)
        assert tree.classes_ is not None
        aligned = np.zeros((len(x), n_classes))
        aligned[:, tree.classes_.astype(int)] = proba
        return aligned

    def _require_fitted(self) -> None:
        if not self.trees_ or self.classes_ is None:
            raise NotFittedError("fit() the ensemble before predicting")

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Soft-vote class probabilities."""
        self._require_fitted()
        assert self.classes_ is not None
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        n_classes = len(self.classes_)
        total = np.zeros((len(x), n_classes))
        for tree in self.trees_:
            total += self._tree_proba(tree, x, n_classes)
        return total / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class labels."""
        proba = self.predict_proba(x)
        assert self.classes_ is not None
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Plain accuracy."""
        return float(np.mean(self.predict(x) == np.asarray(y)))
