"""The end-to-end normality method (ref [11] as used in paper §4.3.3).

Pipeline: I-V trace → GPR feature vector → ensemble-of-trees classifier →
class label + confidence. The paper's workflow calls this right after the
measurement file lands on the DGX: a "normal" verdict lets the campaign
continue; an abnormal one names the suspected condition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError
from repro.chemistry.faults import FaultKind
from repro.chemistry.voltammogram import Voltammogram
from repro.ml.datasets import DatasetSpec, generate_dataset
from repro.ml.ensemble import EnsembleOfTreesClassifier
from repro.ml.features import extract_features, extract_features_batch


@dataclass(frozen=True)
class NormalityReport:
    """Verdict for one trace.

    Attributes:
        label: predicted class (``"normal"``, ``"disconnected_electrode"``,
            ``"low_volume"``, ...).
        normal: convenience flag (label == "normal").
        confidence: ensemble probability of the predicted class.
        probabilities: class -> probability.
    """

    label: str
    normal: bool
    confidence: float
    probabilities: dict[str, float]

    def __str__(self) -> str:
        verdict = "normal" if self.normal else f"ABNORMAL ({self.label})"
        return f"I-V measurement classified {verdict} (p={self.confidence:.2f})"


class NormalityClassifier:
    """GPR features + EOT classifier with a simulator-trained default.

    Args:
        ensemble: pre-configured EOT (defaults chosen for the synthetic
            corpus size).
    """

    def __init__(self, ensemble: EnsembleOfTreesClassifier | None = None):
        self.ensemble = ensemble or EnsembleOfTreesClassifier(
            n_trees=60, max_depth=8, min_samples_leaf=2, random_state=11
        )
        self._fitted = False

    # -- training ----------------------------------------------------------
    def fit(self, traces: list[Voltammogram], labels: list[str]) -> "NormalityClassifier":
        """Fit on labelled traces (labels are FaultKind values)."""
        features = extract_features_batch(traces)
        self.ensemble.fit(features, np.asarray(labels))
        self._fitted = True
        return self

    def fit_features(
        self, features: np.ndarray, labels: np.ndarray | list[str]
    ) -> "NormalityClassifier":
        """Fit on pre-extracted feature rows (dataset reuse)."""
        self.ensemble.fit(features, np.asarray(labels))
        self._fitted = True
        return self

    @classmethod
    def train_default(
        cls, spec: DatasetSpec | None = None
    ) -> "NormalityClassifier":
        """Train on a freshly generated simulator corpus."""
        traces, labels = generate_dataset(spec)
        return cls().fit(traces, labels)

    # -- inference ------------------------------------------------------------
    def classify(self, trace: Voltammogram) -> NormalityReport:
        """Full verdict for one trace."""
        if not self._fitted:
            raise NotFittedError(
                "classifier not trained; call fit() or train_default()"
            )
        features = extract_features(trace)[None, :]
        proba = self.ensemble.predict_proba(features)[0]
        assert self.ensemble.classes_ is not None
        classes = [str(c) for c in self.ensemble.classes_]
        best = int(np.argmax(proba))
        label = classes[best]
        return NormalityReport(
            label=label,
            normal=(label == FaultKind.NONE.value),
            confidence=float(proba[best]),
            probabilities={c: float(p) for c, p in zip(classes, proba)},
        )

    def is_normal(self, trace: Voltammogram) -> bool:
        """Binary convenience wrapper."""
        return self.classify(trace).normal

    @property
    def oob_score(self) -> float:
        """Out-of-bag accuracy of the underlying ensemble."""
        return self.ensemble.oob_score_
