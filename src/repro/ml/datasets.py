"""Labelled synthetic corpus for the normality classifier.

The simulator plays the role of the lab: healthy runs across a spread of
scan rates, concentrations and noise seeds, plus each fault class at a
range of severities. Labels are the :class:`~repro.chemistry.faults.FaultKind`
values. Generation is deterministic given the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.cv_engine import CVEngine, CVParameters
from repro.chemistry.faults import FaultKind, apply_fault
from repro.chemistry.noise import NoiseModel
from repro.chemistry.species import FERROCENE, RedoxSpecies
from repro.chemistry.voltammogram import Voltammogram
from repro.units import mm_to_mol_per_cm3


@dataclass(frozen=True)
class DatasetSpec:
    """What to generate.

    Attributes:
        n_per_class: traces per class.
        classes: fault kinds to include (NONE = the normal class).
        scan_rates: sampled uniformly per trace.
        concentrations_mm: analyte concentration range (mM).
        severity_range: fault severity range for abnormal classes.
        species: redox couple used throughout.
        e_step_v: sweep sampling (coarser than the paper's default keeps
            generation fast; features are resolution tolerant).
        seed: master RNG seed.
    """

    n_per_class: int = 30
    classes: tuple[FaultKind, ...] = (
        FaultKind.NONE,
        FaultKind.DISCONNECTED_ELECTRODE,
        FaultKind.LOW_VOLUME,
    )
    scan_rates: tuple[float, float] = (0.05, 0.4)
    concentrations_mm: tuple[float, float] = (0.5, 5.0)
    severity_range: tuple[float, float] = (0.4, 0.95)
    species: RedoxSpecies = FERROCENE
    e_step_v: float = 0.002
    seed: int = 2023


def generate_dataset(
    spec: DatasetSpec | None = None,
) -> tuple[list[Voltammogram], list[str]]:
    """Build (traces, labels); labels are ``FaultKind.value`` strings."""
    spec = spec or DatasetSpec()
    rng = np.random.default_rng(spec.seed)
    traces: list[Voltammogram] = []
    labels: list[str] = []
    for fault in spec.classes:
        for index in range(spec.n_per_class):
            scan_rate = float(rng.uniform(*spec.scan_rates))
            concentration = float(rng.uniform(*spec.concentrations_mm))
            params = CVParameters(
                e_begin_v=spec.species.formal_potential_v - 0.2,
                e_vertex_v=spec.species.formal_potential_v + 0.4,
                scan_rate_v_s=scan_rate,
                n_cycles=2,
                e_step_v=spec.e_step_v,
            )
            seed = int(rng.integers(0, 2**31 - 1))
            severity = (
                float(rng.uniform(*spec.severity_range))
                if fault is not FaultKind.NONE
                else 0.0
            )
            area = 0.0707
            resistance = float(rng.uniform(50.0, 200.0))
            if fault is FaultKind.LOW_VOLUME:
                # the physical route: the under-filled cell wets less
                # electrode and has poorer ionic contact (higher Ru);
                # apply_fault then only adds the meniscus flutter
                area *= 1.0 - severity
                resistance *= 1.0 + 15.0 * severity
            engine = CVEngine(
                species=spec.species,
                bulk_concentration=mm_to_mol_per_cm3(concentration),
                area_cm2=area,
                resistance_ohm=resistance,
                substeps=1,
            )
            trace = engine.run(params)
            if fault is FaultKind.LOW_VOLUME:
                trace = apply_fault(
                    trace, fault, severity=severity, seed=seed, scale_current=False
                )
            elif fault is not FaultKind.NONE:
                trace = apply_fault(trace, fault, severity=severity, seed=seed)
            noise = NoiseModel(
                white_sigma_a=float(rng.uniform(2e-8, 2e-7)), seed=seed
            )
            trace = noise.apply(trace)
            traces.append(trace)
            labels.append(fault.value)
    return traces, labels


def train_test_split(
    features: np.ndarray,
    labels: list[str] | np.ndarray,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split; returns (x_train, y_train, x_test, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    labels = np.asarray(labels)
    n = len(labels)
    order = np.random.default_rng(seed).permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return (
        features[train_idx],
        labels[train_idx],
        features[test_idx],
        labels[test_idx],
    )
