"""Gaussian-process regression, from scratch on numpy/scipy.

Used as a *feature extractor*: fitting a GPR to an I-V curve and keeping
the optimised hyperparameters (length scale, signal variance, noise
variance) plus residual statistics summarises the curve's smoothness and
noise floor in a handful of numbers — the signature ref [11] classifies.

Implementation notes (numerics follow Rasmussen & Williams ch. 2/5):

- RBF kernel k(x,x') = s^2 exp(-(x-x')^2 / (2 l^2)) + sigma_n^2 I;
- fit = Cholesky of K + jitter; predictions and the log marginal
  likelihood reuse the factor;
- hyperparameters are optimised in log space with L-BFGS-B and analytic
  gradients, restarted from a small set of initial points for robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg, optimize

from repro.errors import MLError, NotFittedError


@dataclass
class RBFKernel:
    """Squared-exponential kernel with white noise.

    Attributes:
        length_scale: correlation length in x units.
        signal_std: prior standard deviation of the latent function.
        noise_std: white observation noise standard deviation.
    """

    length_scale: float = 1.0
    signal_std: float = 1.0
    noise_std: float = 0.1

    def __post_init__(self) -> None:
        for name in ("length_scale", "signal_std", "noise_std"):
            if getattr(self, name) <= 0:
                raise MLError(f"{name} must be > 0")

    def __call__(self, xa: np.ndarray, xb: np.ndarray) -> np.ndarray:
        """Kernel matrix K(xa, xb) without the noise term."""
        sq = (xa[:, None] - xb[None, :]) ** 2
        return self.signal_std**2 * np.exp(-0.5 * sq / self.length_scale**2)

    def theta(self) -> np.ndarray:
        """Log-hyperparameter vector."""
        return np.log([self.length_scale, self.signal_std, self.noise_std])

    @classmethod
    def from_theta(cls, theta: np.ndarray) -> "RBFKernel":
        length, signal, noise = np.exp(theta)
        return cls(length_scale=length, signal_std=signal, noise_std=noise)


class GaussianProcessRegressor:
    """GP regression with marginal-likelihood hyperparameter fitting.

    Args:
        kernel: initial kernel (also the fixed kernel when
            ``optimize=False`` at fit time).
        normalize_y: standardise targets before fitting (recommended —
            current magnitudes span decades across scan rates).
        jitter: diagonal stabiliser added to the Cholesky.
    """

    def __init__(
        self,
        kernel: RBFKernel | None = None,
        normalize_y: bool = True,
        jitter: float = 1e-10,
    ):
        self.kernel = kernel or RBFKernel()
        self.normalize_y = normalize_y
        self.jitter = jitter
        self._x: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self.log_marginal_likelihood_: float = np.nan

    # -- internals -----------------------------------------------------------
    def _neg_log_marginal(self, theta: np.ndarray, x: np.ndarray, y: np.ndarray):
        """Negative log marginal likelihood and its gradient in theta."""
        kernel = RBFKernel.from_theta(theta)
        n = len(x)
        k_matrix = kernel(x, x)
        k_noisy = k_matrix + (kernel.noise_std**2 + self.jitter) * np.eye(n)
        try:
            chol = linalg.cholesky(k_noisy, lower=True)
        except linalg.LinAlgError:
            return 1e25, np.zeros(3)
        alpha = linalg.cho_solve((chol, True), y)
        log_det = 2.0 * np.log(np.diag(chol)).sum()
        nll = 0.5 * (y @ alpha) + 0.5 * log_det + 0.5 * n * np.log(2 * np.pi)

        # gradient: dL/dtheta_i = -0.5 tr((aa^T - K^-1) dK/dtheta_i)
        k_inv = linalg.cho_solve((chol, True), np.eye(n))
        outer = np.outer(alpha, alpha) - k_inv
        sq = (x[:, None] - x[None, :]) ** 2
        base = kernel.signal_std**2 * np.exp(-0.5 * sq / kernel.length_scale**2)
        # d/d log(l): base * sq / l^2
        grad_l = -0.5 * np.sum(outer * (base * sq / kernel.length_scale**2))
        # d/d log(s): 2 * base
        grad_s = -0.5 * np.sum(outer * (2.0 * base))
        # d/d log(noise): 2 * noise^2 I
        grad_n = -0.5 * np.trace(outer) * 2.0 * kernel.noise_std**2
        return float(nll), np.array([grad_l, grad_s, grad_n])

    # -- API -----------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimize_hyperparameters: bool = True,
        n_restarts: int = 2,
    ) -> "GaussianProcessRegressor":
        """Fit to 1-D inputs ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(x) != len(y):
            raise MLError(f"x and y lengths differ: {len(x)} vs {len(y)}")
        if len(x) < 3:
            raise MLError("need at least 3 points to fit a GP")

        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        y_scaled = (y - self._y_mean) / self._y_std

        if optimize_hyperparameters:
            span = float(x.max() - x.min()) or 1.0
            starts = [
                np.log([span / 10.0, 1.0, 0.1]),
                np.log([span / 3.0, 1.0, 0.3]),
                np.log([span / 30.0, 1.0, 0.03]),
            ][: max(1, n_restarts + 1)]
            best: tuple[float, np.ndarray] | None = None
            bounds = [
                (np.log(span * 1e-4), np.log(span * 10.0)),
                (np.log(1e-3), np.log(1e3)),
                (np.log(1e-6), np.log(1e1)),
            ]
            for theta0 in starts:
                result = optimize.minimize(
                    self._neg_log_marginal,
                    theta0,
                    args=(x, y_scaled),
                    jac=True,
                    method="L-BFGS-B",
                    bounds=bounds,
                )
                if best is None or result.fun < best[0]:
                    best = (float(result.fun), result.x)
            assert best is not None
            self.kernel = RBFKernel.from_theta(best[1])

        n = len(x)
        k_noisy = self.kernel(x, x) + (
            self.kernel.noise_std**2 + self.jitter
        ) * np.eye(n)
        chol = linalg.cholesky(k_noisy, lower=True)
        self._chol = chol
        self._alpha = linalg.cho_solve((chol, True), y_scaled)
        self._x = x
        log_det = 2.0 * np.log(np.diag(chol)).sum()
        self.log_marginal_likelihood_ = float(
            -0.5 * (y_scaled @ self._alpha) - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi)
        )
        return self

    def predict(
        self, x_new: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally standard deviation) at ``x_new``."""
        if self._x is None or self._alpha is None or self._chol is None:
            raise NotFittedError("fit() the GP before predicting")
        x_new = np.asarray(x_new, dtype=np.float64).ravel()
        k_star = self.kernel(x_new, self._x)
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, k_star.T, lower=True)
        var = self.kernel.signal_std**2 - np.einsum("ij,ij->j", v, v)
        var = np.maximum(var, 0.0) * self._y_std**2
        return mean, np.sqrt(var)

    def residual_std(self) -> float:
        """Std of training residuals (in original y units)."""
        if self._x is None or self._alpha is None:
            raise NotFittedError("fit() the GP first")
        # mean at training inputs, reusing the kernel matrix structure
        mean = self.predict(self._x)
        # reconstruct original-scale targets from alpha via the fit:
        # residual = y - mean; y is not stored, but K alpha = y_scaled.
        k_noisy = self.kernel(self._x, self._x) + (
            self.kernel.noise_std**2 + self.jitter
        ) * np.eye(len(self._x))
        y = (k_noisy @ self._alpha) * self._y_std + self._y_mean
        return float(np.std(y - mean))
