"""CART decision tree for classification, from scratch on numpy.

Axis-aligned binary splits chosen by Gini impurity reduction, with the
usual regularisers (max depth, minimum leaf size, minimum impurity
decrease). Split search is vectorised per feature: candidate thresholds
are midpoints between consecutive sorted unique values, and class counts
are accumulated with cumulative sums rather than per-threshold rescans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MLError, NotFittedError


@dataclass
class _Node:
    """Internal tree node (leaf when ``feature`` is None)."""

    prediction: np.ndarray  # class probability vector
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> np.ndarray:
    """Gini impurity for one or many count vectors (last axis = classes)."""
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        proportions = np.where(totals > 0, counts / totals, 0.0)
    return 1.0 - (proportions**2).sum(axis=-1)


class DecisionTreeClassifier:
    """A single CART tree.

    Args:
        max_depth: depth limit (None = unbounded).
        min_samples_leaf: smallest admissible leaf.
        min_impurity_decrease: prune-in-advance threshold.
        max_features: features examined per split (None = all; used by
            the bagged ensemble for decorrelation).
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features: int | None = None,
        random_state: int | None = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise MLError("max_depth must be >= 1 or None")
        if min_samples_leaf < 1:
            raise MLError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.random_state = random_state
        self._root: _Node | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int = 0
        self.node_count_: int = 0

    # -- fitting ---------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise MLError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise MLError("x and y lengths differ")
        if len(x) == 0:
            raise MLError("cannot fit on an empty dataset")
        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        self.n_features_ = x.shape[1]
        self.node_count_ = 0
        rng = np.random.default_rng(self.random_state)
        self._root = self._build(x, y_encoded, depth=0, rng=rng)
        return self

    def _leaf(self, y: np.ndarray) -> _Node:
        assert self.classes_ is not None
        counts = np.bincount(y, minlength=len(self.classes_)).astype(np.float64)
        self.node_count_ += 1
        return _Node(prediction=counts / counts.sum())

    def _build(
        self, x: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        n_samples = len(y)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or n_samples < 2 * self.min_samples_leaf
            or len(np.unique(y)) == 1
        ):
            return self._leaf(y)

        split = self._best_split(x, y, rng)
        if split is None:
            return self._leaf(y)
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node = self._leaf(y)  # prediction doubles as the fallback distribution
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1, rng)
        node.right = self._build(x[~mask], y[~mask], depth + 1, rng)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        assert self.classes_ is not None
        n_samples, n_features = x.shape
        n_classes = len(self.classes_)
        parent_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        parent_impurity = float(_gini(parent_counts))

        if self.max_features is not None and self.max_features < n_features:
            features = rng.choice(n_features, size=self.max_features, replace=False)
        else:
            features = np.arange(n_features)

        best: tuple[float, int, float] | None = None
        one_hot = np.zeros((n_samples, n_classes))
        one_hot[np.arange(n_samples), y] = 1.0

        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            values = x[order, feature]
            if values[0] == values[-1]:
                continue
            # cumulative class counts after each sorted sample
            cum = np.cumsum(one_hot[order], axis=0)
            # candidate boundaries: between distinct consecutive values,
            # respecting the leaf-size minimum
            boundary = np.nonzero(values[1:] > values[:-1])[0]
            boundary = boundary[
                (boundary + 1 >= self.min_samples_leaf)
                & (n_samples - boundary - 1 >= self.min_samples_leaf)
            ]
            if len(boundary) == 0:
                continue
            left_counts = cum[boundary]
            right_counts = parent_counts[None, :] - left_counts
            n_left = boundary + 1
            n_right = n_samples - n_left
            weighted = (
                n_left * _gini(left_counts) + n_right * _gini(right_counts)
            ) / n_samples
            index = int(np.argmin(weighted))
            decrease = parent_impurity - float(weighted[index])
            if decrease <= self.min_impurity_decrease:
                continue
            threshold = 0.5 * (
                values[boundary[index]] + values[boundary[index] + 1]
            )
            if best is None or decrease > best[0]:
                best = (decrease, int(feature), float(threshold))

        if best is None:
            return None
        return best[1], best[2]

    # -- inference ------------------------------------------------------------
    def _require_fitted(self) -> _Node:
        if self._root is None or self.classes_ is None:
            raise NotFittedError("fit() the tree before predicting")
        return self._root

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probability matrix (n_samples, n_classes)."""
        root = self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n_features_:
            raise MLError(
                f"expected {self.n_features_} features, got {x.shape[1]}"
            )
        out = np.empty((len(x), len(self.classes_)))
        for i, row in enumerate(x):
            node = root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class labels."""
        proba = self.predict_proba(x)
        assert self.classes_ is not None
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        root = self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(root)
