"""Feature extraction from I-V traces (the GPR half of ref [11]).

A voltammogram is reduced to a fixed-length vector combining:

- **GPR descriptors** — a GP is fit to the (E, I) curve of the first
  cycle; the optimised RBF hyperparameters summarise the curve's shape
  (length scale: how sharp the wave is), amplitude structure (signal
  variance) and noise floor (noise variance), plus the per-point log
  marginal likelihood as a goodness-of-smooth-fit score;
- **electrochemical descriptors** — peak currents and potentials, peak
  separation, anodic/cathodic peak ratio, hysteresis (enclosed loop
  area), current magnitudes on log scales, and derivative statistics.

Disconnected electrodes collapse the magnitude features by orders of
magnitude; under-filled cells shrink them proportionally and perturb the
loop shape — which is what makes the classes separable downstream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureExtractionError
from repro.chemistry.voltammogram import Voltammogram
from repro.ml.gpr import GaussianProcessRegressor

FEATURE_NAMES: tuple[str, ...] = (
    "gpr_log_length_scale",
    "gpr_log_signal_std",
    "gpr_log_noise_std",
    "gpr_noise_to_signal",
    "gpr_lml_per_point",
    "log10_peak_anodic_a",
    "log10_peak_cathodic_a",
    "log10_current_range_a",
    "log10_current_rms_a",
    "peak_separation_v",
    "peak_ratio",
    "e_half_v",
    "hysteresis_area",
    "derivative_rms_ratio",
    "sign_changes_frac",
    "cycle_consistency",
)

_EPS = 1e-12
#: GP fit size: enough to resolve the wave, small enough to keep the
#: O(n^3) Cholesky negligible.
_GP_POINTS = 96


def _downsample(x: np.ndarray, y: np.ndarray, count: int) -> tuple[np.ndarray, np.ndarray]:
    if len(x) <= count:
        return x, y
    idx = np.linspace(0, len(x) - 1, count).astype(np.intp)
    return x[idx], y[idx]


def extract_features(voltammogram: Voltammogram) -> np.ndarray:
    """Feature vector aligned with :data:`FEATURE_NAMES`.

    Raises:
        FeatureExtractionError: trace too short or degenerate.
    """
    if len(voltammogram) < 16:
        raise FeatureExtractionError(
            f"trace of {len(voltammogram)} samples is too short"
        )
    first = voltammogram.cycle(0) if voltammogram.n_cycles > 1 else voltammogram
    potential = first.potential_v
    current = first.current_a
    if float(np.ptp(potential)) <= 0:
        raise FeatureExtractionError("potential sweep is degenerate (flat)")

    # -- GPR block ---------------------------------------------------------
    # Fit against time order (E is multivalued over a cycle); normalise x
    # to [0, 1] so length scales are comparable across techniques.
    x_norm = np.linspace(0.0, 1.0, len(current))
    x_fit, y_fit = _downsample(x_norm, current, _GP_POINTS)
    gp = GaussianProcessRegressor()
    gp.fit(x_fit, y_fit, optimize_hyperparameters=True, n_restarts=1)
    kernel = gp.kernel
    gpr_features = [
        float(np.log(kernel.length_scale)),
        float(np.log(kernel.signal_std)),
        float(np.log(kernel.noise_std)),
        float(kernel.noise_std / (kernel.signal_std + _EPS)),
        float(gp.log_marginal_likelihood_ / len(x_fit)),
    ]

    # -- electrochemical block ------------------------------------------------
    idx_max = int(np.argmax(current))
    idx_min = int(np.argmin(current))
    peak_anodic = float(current[idx_max])
    peak_cathodic = float(current[idx_min])
    e_anodic = float(potential[idx_max])
    e_cathodic = float(potential[idx_min])
    current_range = float(np.ptp(current))
    current_rms = float(np.sqrt(np.mean(current**2)))

    # hysteresis: shoelace area of the (E, I) loop, normalised by the
    # bounding box so it is scale free
    area = 0.5 * abs(
        float(
            np.sum(
                potential * np.roll(current, -1) - np.roll(potential, -1) * current
            )
        )
    )
    box = float(np.ptp(potential)) * (current_range + _EPS)
    hysteresis = area / box

    derivative = np.diff(current)
    second = np.diff(current, n=2)
    # roughness: high-frequency energy relative to overall variation —
    # pure noise (disconnected) maximises it, a smooth wave minimises it
    derivative_rms_ratio = float(
        np.sqrt(np.mean(second**2)) / (np.sqrt(np.mean(derivative**2)) + _EPS)
    )
    signs = np.sign(current[np.abs(current) > _EPS])
    sign_changes = int(np.count_nonzero(np.diff(signs))) if len(signs) > 1 else 0

    # cycle-to-cycle repeatability: meniscus flutter in an under-filled
    # cell makes successive cycles disagree far more than the normal
    # first-cycle depletion transient does
    if voltammogram.n_cycles >= 2:
        cycle_a = voltammogram.cycle(0).current_a
        cycle_b = voltammogram.cycle(1).current_a
        length = min(len(cycle_a), len(cycle_b))
        diff_rms = float(
            np.sqrt(np.mean((cycle_a[:length] - cycle_b[:length]) ** 2))
        )
        cycle_consistency = diff_rms / (current_range + _EPS)
    else:
        cycle_consistency = 0.0

    features = np.array(
        gpr_features
        + [
            np.log10(abs(peak_anodic) + _EPS),
            np.log10(abs(peak_cathodic) + _EPS),
            np.log10(current_range + _EPS),
            np.log10(current_rms + _EPS),
            e_anodic - e_cathodic,
            abs(peak_anodic) / (abs(peak_cathodic) + _EPS),
            0.5 * (e_anodic + e_cathodic),
            hysteresis,
            derivative_rms_ratio,
            sign_changes / max(len(current) - 1, 1),
            cycle_consistency,
        ],
        dtype=np.float64,
    )
    if not np.all(np.isfinite(features)):
        raise FeatureExtractionError("non-finite feature encountered")
    return features


def extract_features_batch(traces: list[Voltammogram]) -> np.ndarray:
    """Feature matrix for a list of traces (rows align with inputs)."""
    return np.vstack([extract_features(trace) for trace in traces])
