"""ML normality check for I-V measurements (paper §4.3.3, ref [11]).

Ref [11]'s architecture: extract a feature vector from the I-V trace with
Gaussian-process regression, classify with an ensemble-of-trees (EOT)
classifier. Classes: *normal*, *disconnected electrode*, *low analyte
volume* (we add *bubble* as an extension). Everything is implemented from
scratch on numpy/scipy:

- :class:`GaussianProcessRegressor` — RBF + white kernel, Cholesky fit,
  marginal-likelihood hyperparameter optimisation (L-BFGS);
- :class:`DecisionTreeClassifier` / :class:`EnsembleOfTreesClassifier` —
  CART with Gini impurity, bagged with feature subsampling;
- :func:`extract_features` — GPR hyperparameters + residual statistics +
  electrochemical descriptors of the trace;
- :class:`NormalityClassifier` — the end-to-end method with
  ``fit``/``classify``/``is_normal``;
- :func:`generate_dataset` — labelled synthetic corpus from the
  chemistry simulator.
"""

from repro.ml.gpr import GaussianProcessRegressor, RBFKernel
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.ensemble import EnsembleOfTreesClassifier
from repro.ml.features import extract_features, extract_features_batch, FEATURE_NAMES
from repro.ml.normality import NormalityClassifier, NormalityReport
from repro.ml.datasets import generate_dataset, DatasetSpec

__all__ = [
    "GaussianProcessRegressor",
    "RBFKernel",
    "DecisionTreeClassifier",
    "EnsembleOfTreesClassifier",
    "extract_features",
    "extract_features_batch",
    "FEATURE_NAMES",
    "NormalityClassifier",
    "NormalityReport",
    "generate_dataset",
    "DatasetSpec",
]
