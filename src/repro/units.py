"""Unit conversion helpers used across instrument and chemistry layers.

The instruments speak in the units their real counterparts use (mV, mL/min,
sccm, °C); the physics engine works in SI. Keeping the conversions in one
module avoids scattered magic constants.
"""

from __future__ import annotations

# Physical constants (CODATA 2018)
FARADAY = 96485.33212  # C/mol
GAS_CONSTANT = 8.314462618  # J/(mol K)
KELVIN_OFFSET = 273.15

# Nernstian slope at 25 °C for n = 1, in volts: RT/F
NERNST_RT_F_25C = GAS_CONSTANT * (25.0 + KELVIN_OFFSET) / FARADAY  # ~0.02569 V


def mv_to_v(millivolts: float) -> float:
    """Convert millivolts to volts."""
    return millivolts * 1e-3


def v_to_mv(volts: float) -> float:
    """Convert volts to millivolts."""
    return volts * 1e3


def ua_to_a(microamps: float) -> float:
    """Convert microamps to amps."""
    return microamps * 1e-6


def a_to_ua(amps: float) -> float:
    """Convert amps to microamps."""
    return amps * 1e6


def ml_to_l(milliliters: float) -> float:
    """Convert millilitres to litres."""
    return milliliters * 1e-3


def l_to_ml(liters: float) -> float:
    """Convert litres to millilitres."""
    return liters * 1e3


def ml_min_to_ml_s(ml_per_min: float) -> float:
    """Convert a flow rate in mL/min to mL/s."""
    return ml_per_min / 60.0


def mm_to_mol_per_cm3(millimolar: float) -> float:
    """Convert a concentration in mM (mmol/L) to mol/cm^3.

    Electrochemistry texts (Bard & Faulkner) work in mol/cm^3 so that the
    Randles-Sevcik constant keeps its familiar 2.69e5 value.
    """
    return millimolar * 1e-6


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to kelvin."""
    return celsius + KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert kelvin to degrees Celsius."""
    return kelvin - KELVIN_OFFSET


def nernst_slope(temperature_c: float = 25.0, n_electrons: int = 1) -> float:
    """RT/nF in volts at the given temperature.

    This sets the width of a reversible voltammetric wave; the classic
    ~59 mV peak separation is ``2.218 * RT/nF`` at 25 °C.
    """
    if n_electrons < 1:
        raise ValueError(f"n_electrons must be >= 1, got {n_electrons}")
    return GAS_CONSTANT * celsius_to_kelvin(temperature_c) / (n_electrons * FARADAY)


def sccm_to_mol_s(sccm: float, temperature_c: float = 0.0) -> float:
    """Convert a gas flow in standard cm^3/min to mol/s (ideal gas, 1 atm)."""
    molar_volume_cm3 = 22414.0 * celsius_to_kelvin(temperature_c) / KELVIN_OFFSET
    return sccm / molar_volume_cm3 / 60.0
