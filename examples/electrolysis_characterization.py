#!/usr/bin/env python3
"""The paper's future-work workflow, running today: electrolysis, robotic
sample transfer, and HPLC-MS characterization of the product.

Paper §5 plans "mobile robots to transfer materials between different
instruments" and "more comprehensive electrochemical workflows ...
involving most of ACL instruments". This example runs exactly that
pipeline across three remote agents:

1. J-Kem fills the cell with ferrocene solution (workstation agent);
2. the SP200 holds +0.8 V (chronoamperometry) to oxidise part of the
   ferrocene to ferrocenium (workstation agent);
3. a fraction is collected into a fresh vial, the robot drives it from
   the electrochemistry dock to the HPLC autosampler, and the HPLC-MS
   injects it (characterization agent);
4. the chromatogram is verified on the analysis host: both the analyte
   and its oxidation product must be present.

Run:  python examples/electrolysis_characterization.py
"""

from repro import ElectrochemistryICE
from repro.core.characterization_workflow import (
    CharacterizationSettings,
    run_characterization_workflow,
)


def main() -> None:
    settings = CharacterizationSettings(
        electrolysis_potential_v=0.8,
        electrolysis_duration_s=120.0,
        fraction_volume_ml=1.0,
    )
    with ElectrochemistryICE.build() as ice:
        print("Running the multi-instrument workflow ...\n")
        result = run_characterization_workflow(ice, settings=settings)

        print("Per-task outcome:")
        for name, task in result.workflow.tasks.items():
            print(f"  {name:<28} {task.state.value}")
        assert result.succeeded, result.summary()

        chromatogram = result.chromatogram
        assert chromatogram is not None
        print("\nChromatogram peak table:")
        print(f"  {'compound':<22} {'rt (min)':>9} {'m/z':>8} {'area':>12}")
        for peak in chromatogram.peaks:
            print(
                f"  {peak.compound or '(unknown)':<22} "
                f"{peak.retention_min:>9.2f} {peak.mz:>8.2f} "
                f"{peak.area:>12.3e}"
            )
        print(
            f"\nconversion after electrolysis: ferrocenium/ferrocene = "
            f"{result.conversion_ratio:.2e}"
        )
        print("robot:", ice.characterization.robot.status_summary())
        print("\n" + result.summary())


if __name__ == "__main__":
    main()
