#!/usr/bin/env python3
"""Multi-round adaptive campaign: a Randles-Sevcik scan-rate study.

This is the kind of closed-loop experiment the ICE exists to enable
(paper §1: workflows that "adapt system and instrument settings in
real-time during multiple rounds of experiments"): fill the cell once,
then sweep the CV scan rate over several remote rounds, extract the
anodic peak currents on the analysis host, fit ip vs sqrt(v), and
recover the ferrocene diffusion coefficient.

Run:  python examples/scan_rate_study.py
"""

import numpy as np

from repro import Campaign, CVWorkflowSettings, ElectrochemistryICE, scan_rate_strategy
from repro.analysis import estimate_diffusion_coefficient, randles_sevcik_current
from repro.chemistry.species import FERROCENE

SCAN_RATES = (0.05, 0.1, 0.2, 0.4)
AREA_CM2 = 0.0707
CONC_MOL_CM3 = 2e-6  # 2 mM


def main() -> None:
    with ElectrochemistryICE.build() as ice:
        campaign = Campaign(
            ice,
            scan_rate_strategy(
                SCAN_RATES, base=CVWorkflowSettings(e_step_v=0.001)
            ),
        )
        print(f"Sweeping scan rates {SCAN_RATES} V/s over "
              f"{len(SCAN_RATES)} workflow rounds ...\n")
        rounds = campaign.run()

        print(f"{'v (V/s)':>8} {'ip_meas (A)':>13} {'ip_RS (A)':>13} "
              f"{'dEp (mV)':>9} {'E1/2 (V)':>9}")
        peaks = []
        for record in rounds:
            metrics = record.result.metrics
            assert metrics is not None
            predicted = randles_sevcik_current(
                1, AREA_CM2, CONC_MOL_CM3,
                FERROCENE.diffusion_cm2_s, record.settings.scan_rate_v_s,
            )
            peaks.append(metrics.anodic_peak_a)
            print(
                f"{record.settings.scan_rate_v_s:>8.2f} "
                f"{metrics.anodic_peak_a:>13.3e} {predicted:>13.3e} "
                f"{metrics.peak_separation_v*1e3:>9.1f} "
                f"{metrics.e_half_v:>9.3f}"
            )

        diffusion, r_squared = estimate_diffusion_coefficient(
            np.asarray(SCAN_RATES), np.asarray(peaks),
            n_electrons=1, area_cm2=AREA_CM2,
            concentration_mol_cm3=CONC_MOL_CM3,
        )
        print(f"\nRandles-Sevcik fit: ip vs sqrt(v), R^2 = {r_squared:.4f}")
        print(f"estimated D = {diffusion:.2e} cm^2/s "
              f"(literature {FERROCENE.diffusion_cm2_s:.2e})")

        # the data-services layer: index the share and record provenance
        from repro.core.provenance import capture_provenance, write_provenance
        from repro.datachannel.catalog import MeasurementCatalog

        catalog = MeasurementCatalog(ice.measurement_dir)
        print(f"\ncatalog: indexed {catalog.rebuild()} measurement files")
        rates_idx, _peaks_idx = catalog.scan_rate_series()
        print(f"catalog scan-rate series: {list(rates_idx)}")
        record = capture_provenance(
            rounds[-1].result.workflow,
            workflow_name="scan-rate-campaign (final round)",
            settings=rounds[-1].settings,
            artifacts=[
                ice.measurement_dir / r.result.measurement_file
                for r in rounds
                if r.result.measurement_file
            ],
        )
        path = write_provenance(record, ice.measurement_dir)
        print(f"provenance written: {path.name} "
              f"({len(record['artifacts'])} artifacts, sha256-verified)")


if __name__ == "__main__":
    main()
