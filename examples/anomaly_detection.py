#!/usr/bin/env python3
"""The ML normality method in action (paper §4.3.3, ref [11]).

Trains the GPR+ensemble-of-trees classifier on simulator data, then runs
three remote experiments on the ICE:

1. a healthy run                    -> expected "normal";
2. a disconnected working electrode -> expected "disconnected_electrode";
3. an under-filled cell (1 mL)      -> expected abnormal (low volume).

Run:  python examples/anomaly_detection.py
"""

import repro
from repro import CVWorkflowSettings, NormalityClassifier


def run_case(session, label, settings=None, sabotage=None):
    ice = session.ice
    if sabotage:
        sabotage(ice)
    result = session.run_workflow(settings=settings)
    verdict = result.normality
    assert verdict is not None
    print(f"{label:<32} -> {verdict.label:<24} (p={verdict.confidence:.2f})")
    # restore the bench for the next case
    ice.workstation.cell.set_electrode_connected("working", True)
    ice.workstation.cell.drain()
    return verdict


def main() -> None:
    print("Training the normality classifier ...")
    classifier = NormalityClassifier.train_default()
    print(f"  out-of-bag accuracy: {classifier.oob_score:.2f}\n")

    fast = CVWorkflowSettings(e_step_v=0.002)
    with repro.connect(classifier=classifier) as session:
        healthy = run_case(session, "healthy run", settings=fast)
        broken = run_case(
            session,
            "disconnected working electrode",
            settings=fast,
            sabotage=lambda e: e.workstation.cell.set_electrode_connected(
                "working", False
            ),
        )
        low = run_case(
            session,
            "under-filled cell (1 mL)",
            settings=CVWorkflowSettings(fill_volume_ml=1.0, e_step_v=0.002),
        )

    print()
    print("expected: normal / disconnected_electrode / abnormal")
    assert healthy.normal, "healthy run misclassified"
    assert broken.label == "disconnected_electrode", "break not detected"
    assert not low.normal, "under-filled cell not flagged"
    print("all three verdicts match the paper's reported behaviour.")


if __name__ == "__main__":
    main()
