#!/usr/bin/env python3
"""Quickstart: the paper's demonstration in ~20 lines.

``repro.connect()`` builds the cross-facility ecosystem (ACL workstation
+ K200 analysis host over a simulated network) with tracing and metrics
wired end to end, runs the five-task CV workflow on 2 mM ferrocene, and
prints the analysis — the same story as paper Figs 5-7.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    print("Training the I-V normality classifier on simulated data ...")
    classifier = repro.NormalityClassifier.train_default()
    print(f"  out-of-bag accuracy: {classifier.oob_score:.2f}\n")

    print("Standing up the electrochemistry ICE (ACL + K200) ...")
    with repro.connect(classifier=classifier) as session:
        print(f"  control channel: {session.ice.control_uri}")
        print(f"  data channel:    {session.ice.share_uri}\n")

        print("Running the paper's workflow (tasks A-E) ...")
        result = session.run_workflow()

        print("\nPer-task outcome:")
        for name, task in result.workflow.tasks.items():
            print(f"  {name:<28} {task.state.value:<10} {task.duration_s*1e3:7.1f} ms")

        print(f"\n{result.summary()}")

        trace = result.voltammogram
        assert trace is not None and result.metrics is not None
        print("\nI-V profile (Fig 7 equivalent):")
        print(f"  samples:        {len(trace)}")
        print(f"  window:         {trace.potential_v.min():.2f} .. "
              f"{trace.potential_v.max():.2f} V")
        print(f"  anodic peak:    {result.metrics.anodic_peak_a:.3e} A "
              f"at {result.metrics.anodic_peak_v:.3f} V")
        print(f"  cathodic peak:  {result.metrics.cathodic_peak_a:.3e} A "
              f"at {result.metrics.cathodic_peak_v:.3f} V")
        print(f"  E1/2:           {result.metrics.e_half_v:.3f} V")
        print(f"  dEp:            {result.metrics.peak_separation_v*1e3:.1f} mV")
        print(f"  ML verdict:     {result.normality}")

        print("\nOne connected trace of the run (workflow -> RPC -> instrument):")
        summary = session.tracer.summarize()
        for name in sorted(summary):
            row = summary[name]
            print(f"  {name:<40} x{row['count']:<3} mean {row['mean_s']*1e3:7.2f} ms")


if __name__ == "__main__":
    main()
