#!/usr/bin/env python3
"""The Jupyter-notebook experience of paper Figs 5a/6a, as a script.

Each block mirrors a notebook cell: J-Kem liquid handling answered with
"OK", then the eight-step SP200 pipeline with its confirmations, then
analysis of the fetched I-V profile — including the device-side console
transcript that Figs 5b/6b show.

Run:  python examples/remote_notebook_session.py
"""

import repro


def main() -> None:
    with repro.connect() as session:
        ice = session.ice
        client = session.client
        mount = session.datachannel

        print("# -- Fill syringe with liquid from fraction collector (Fig 5a)")
        print("Set_Rate_SyringePump      ->", client.call_Set_Rate_SyringePump(1, 5.0))
        print("Set_Port_SyringePump      ->", client.call_Set_Port_SyringePump(1, 1))
        print("Set_Vial_FractionCollector->",
              client.call_Set_Vial_FractionCollector(1, "BOTTOM"))
        print("Withdraw_SyringePump      ->", client.call_Withdraw_SyringePump(1, 5.0))

        print("\n# -- Send liquid to electrochemical cell")
        print("Set_Port_SyringePump      ->", client.call_Set_Port_SyringePump(1, 8))
        print("Dispense_SyringePump      ->", client.call_Dispense_SyringePump(1, 5.0))
        print("Cell status               ->", client.call_Cell_Status())

        print("\n# -- SP200 working pipeline (Fig 6a)")
        print("(1)", client.call_Initialize_SP200_API({"channel": 1}))
        print("(2)", client.call_Connect_SP200())
        print("(3)", client.call_Load_Firmware_SP200())
        print("(4)", client.call_Initialize_CV_Tech_SP200(
            {"e_begin_v": 0.2, "e_vertex_v": 0.8, "scan_rate_v_s": 0.1}))
        print("(5)", client.call_Load_Technique_SP200())
        print("(6)", client.call_Start_Channel_SP200())
        result = client.call_Get_Tech_Path_Rslt(save_as="notebook_cv")
        print("(7) Measurements are collected ->", result)

        print("\n# -- Fetch the I-V profile over the data channel (Fig 7)")
        trace = mount.read_voltammogram(result["file"])
        peak_e, peak_i = trace.peak_anodic()
        print(f"{len(trace)} samples; anodic peak {peak_i:.3e} A at {peak_e:.3f} V")

        print("\n# -- Teardown (task E)")
        print(client.call_Exit_JKem_API())
        print(client.call_Disconnect_SP200())
        mount.unmount()
        client.close()

        print("\n# -- Control-agent / SBC console transcript (Figs 5b, 6b)")
        log = ice.workstation.event_log
        for line in log.messages(source="jkem.sbc", kind="command"):
            print("  [sbc]  ", line)
        for line in log.messages(source="sp200.api"):
            print("  [sp200]", line)


if __name__ == "__main__":
    main()
