#!/usr/bin/env python3
"""Real-time steering: watch an acquisition live and abort on a guard.

The paper's motivation is workflows with "remote experiment steering and
real-time analytics" — not just collecting a file at the end. This
example slows the instruments down (time_scale) so the acquisition takes
visible wall time, then:

1. watches a healthy CV run to completion, printing progress as samples
   stream in (the Fig 6a step-7 "probing measurements" loop);
2. re-runs with a compliance guard that aborts the moment the measured
   current exceeds a limit — the remote computer steering the experiment
   mid-acquisition.

Run:  python examples/live_steering.py
"""

from repro.core.streaming import LiveMonitor, compliance_guard
from repro.facility.ice import ElectrochemistryICE, ICEConfig
from repro.facility.workstation import WorkstationConfig


def start_cv(client) -> None:
    client.call_Initialize_SP200_API({"channel": 1})
    client.call_Connect_SP200()
    client.call_Load_Firmware_SP200()
    client.call_Initialize_CV_Tech_SP200({"e_step_v": 0.002})
    client.call_Load_Technique_SP200()
    client.call_Start_Channel_SP200()


def main() -> None:
    config = ICEConfig(workstation=WorkstationConfig(time_scale=0.08))
    with ElectrochemistryICE.build(config) as ice:
        client = ice.client()
        client.call_Set_Rate_SyringePump(1, 10.0)
        client.call_Set_Vial_FractionCollector(1, "BOTTOM")
        client.call_Set_Port_SyringePump(1, 1)
        client.call_Withdraw_SyringePump(1, 5.0)
        client.call_Set_Port_SyringePump(1, 8)
        client.call_Dispense_SyringePump(1, 5.0)

        print("run 1: watching a healthy acquisition to completion")
        start_cv(client)
        monitor = LiveMonitor(
            client,
            poll_interval_s=0.1,
            on_progress=lambda s: print(
                f"  t={s.elapsed_s:5.2f}s  {s.samples_acquired:4d}/600 samples "
                f"({s.state})"
            ),
        )
        outcome = monitor.watch(timeout_s=60.0)
        print(f"  -> finished={outcome.finished} after {outcome.polls} polls\n")
        client.call_Disconnect_SP200()  # close run 1's instrument session

        print("run 2: compliance guard at 30 uA (the wave peaks near 58 uA)")
        start_cv(client)
        guarded = LiveMonitor(
            client,
            poll_interval_s=0.1,
            fetch_partial_data=True,
            guard=compliance_guard(30e-6),
            on_progress=lambda s: print(
                f"  t={s.elapsed_s:5.2f}s  |I|max="
                f"{(s.partial_max_abs_current or 0.0)*1e6:6.2f} uA"
            ),
        )
        outcome = guarded.watch(timeout_s=60.0)
        print(f"  -> aborted={outcome.aborted} (guard tripped mid-sweep)")
        # let the instrument finish cleanly before teardown
        ice.workstation.potentiostat.channel(1).wait(timeout=60.0)
        client.call_Disconnect_SP200()
        client.close()


if __name__ == "__main__":
    main()
