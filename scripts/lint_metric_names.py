#!/usr/bin/env python3
"""Fail CI when a metric is born undocumented.

Every literal metric name passed to ``counter(`` / ``gauge(`` /
``histogram(`` anywhere under ``src/`` must appear in
``docs/OBSERVABILITY.md`` — the metrics table is the operator's
contract, and a name that only exists in code is a dashboard nobody
will ever build. Dynamic names (f-strings, variables) are out of scope
by construction: only string literals are matched.

Usage: ``python scripts/lint_metric_names.py`` (exit 1 on violations).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOC = REPO / "docs" / "OBSERVABILITY.md"

#: ``.counter("name"`` / ``.gauge('name'`` / ``.histogram(\n    "name"`` —
#: literal first arguments only, newline-tolerant.
PATTERN = re.compile(
    r"\.(counter|gauge|histogram)\(\s*\n?\s*[\"']([A-Za-z0-9_.]+)[\"']"
)


def collect_metric_names(root: Path) -> dict[str, set[str]]:
    """name -> set of ``path:line`` sites that create it."""
    sites: dict[str, set[str]] = {}
    for path in sorted(root.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in PATTERN.finditer(text):
            name = match.group(2)
            line = text.count("\n", 0, match.start()) + 1
            sites.setdefault(name, set()).add(
                f"{path.relative_to(REPO)}:{line}"
            )
    return sites


def main() -> int:
    if not DOC.exists():
        print(f"missing {DOC.relative_to(REPO)}", file=sys.stderr)
        return 1
    doc_text = DOC.read_text(encoding="utf-8")
    sites = collect_metric_names(SRC)
    missing = {
        name: where
        for name, where in sites.items()
        if name not in doc_text
    }
    if missing:
        print(
            f"{len(missing)} metric name(s) created in src/ but absent "
            f"from {DOC.relative_to(REPO)}:",
            file=sys.stderr,
        )
        for name in sorted(missing):
            for site in sorted(missing[name]):
                print(f"  {name}  ({site})", file=sys.stderr)
        return 1
    print(
        f"ok: all {len(sites)} literal metric names documented in "
        f"{DOC.relative_to(REPO)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
